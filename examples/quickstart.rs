//! Quickstart: train a 2-layer GCN with the full GraphTensor stack
//! (Prepro-GT: NAPA kernels + dynamic kernel placement + service-wide
//! tensor scheduling) on a synthetic node-classification workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphtensor::prelude::*;

fn main() {
    // A learnable synthetic graph: 2 000 vertices, 2 classes whose labels
    // leak into the features.
    let data = GraphData::synthetic_learnable(2_000, 24_000, 32, 2, 7);
    println!(
        "dataset: {} vertices, {} edges, {} features, {} classes",
        data.num_vertices(),
        data.graph.num_edges(),
        data.feature_dim(),
        data.num_classes
    );

    // Prepro-GT = the complete system of the paper.
    let mut trainer = GraphTensor::new(
        GtVariant::Prepro,
        gcn(2, data.num_classes),
        SystemSpec::paper_testbed(),
    );
    trainer.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 1,
        ..Default::default()
    };
    trainer.lr = 0.3;

    let losses = train_epochs(&mut trainer, &data, 8, 100, 3);
    for (e, l) in losses.iter().enumerate() {
        println!("epoch {:>2}: mean loss {l:.4}", e + 1);
    }

    let eval: Vec<u32> = (0..500).collect();
    let acc = evaluate(&mut trainer, &data, &eval);
    println!("accuracy on 500 held-in nodes: {:.1}%", acc * 100.0);

    let (af, cf) = trainer.dkp_decisions();
    println!("DKP decisions: {af} aggregation-first, {cf} combination-first");
    if let Some(err) = trainer.cost_model().fit_error() {
        println!(
            "DKP cost-model fit error: {:.1}% (paper: 12.5%)",
            err * 100.0
        );
    }
}
