//! End-to-end telemetry demo: train batches under injected faults with a
//! recording collector, then export everything the stack observed —
//!
//! * `trace.json` — Chrome trace-event JSON with two processes: the
//!   wall-clock spans/events of the serving loop, and the discrete-event
//!   preprocessing schedule of the last trained batch (one track per host
//!   core / PCIe / GPU). Load it at <https://ui.perfetto.dev>.
//! * `flight.json` — the request tracer's flight-recorder ring: one span
//!   tree per served request (queue wait, S/R/K/T segments, kernel,
//!   stall/backoff), parent→child causality as Perfetto flow events.
//! * `metrics.prom` — every counter and histogram in Prometheus text
//!   exposition format.
//! * stdout — human-readable metric, span, and span-tree summaries.
//!
//! ```sh
//! cargo run --release --example tracing_demo
//! ```

use graphtensor::prelude::*;
use graphtensor::sim::schedule_to_trace;
use graphtensor::telemetry::{prometheus, summary, write_chrome_json};

fn main() {
    let data = GraphData::synthetic_learnable(2_000, 24_000, 32, 2, 7);
    let mut trainer = GraphTensor::new(
        GtVariant::Prepro,
        gcn(2, data.num_classes),
        SystemSpec::paper_testbed(),
    );
    trainer.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 1,
        ..Default::default()
    };
    trainer.lr = 0.3;
    // Swap the default null handle for a recording one: every span, event,
    // and metric below lands in this collector.
    let telemetry = Telemetry::recording();
    trainer.telemetry = telemetry.clone();

    let plan = FaultPlan::new(2026)
        .with_transfer_failure(0.3)
        .with_straggler(0, 4.0)
        .with_transient_memory_pressure(1e-6, 0.2);
    let mut server = Supervisor::new(trainer, plan);
    // Request-scoped causal tracing: every served batch gets a span tree
    // with deterministic ids; the ring keeps the most recent ones.
    server.enable_tracing(TracerConfig::default(), None);

    println!("serving 12 batches under injected faults...");
    let mut last_schedule = None;
    for batch in BatchIter::new(2_000, 100, 3).take(12) {
        let report = server.serve_batch(&data, &batch);
        if let Some(s) = report.prepro {
            last_schedule = Some(s);
        }
    }

    // Process 1: wall-clock spans and events from the serving loop.
    let wall = telemetry.trace("wall clock");
    // Process 2: the DES virtual-time schedule of the last trained batch,
    // one track per resource unit.
    let schedule = last_schedule.expect("at least one batch trained");
    let des = schedule_to_trace(&schedule, "preprocessing (virtual time)");
    let trace_json = write_chrome_json(&[&wall, &des]);
    std::fs::write("trace.json", &trace_json).expect("write trace.json");
    println!(
        "\nwrote trace.json ({} wall-clock + {} virtual-time slices); \
         open it at https://ui.perfetto.dev",
        wall.events.len(),
        des.events.len()
    );

    // The flight recorder's view of the same run: per-request span trees,
    // dumped in the exact format an SLO breach or crash would freeze.
    let tracer = server.tracer.as_ref().expect("tracing enabled");
    let flight = tracer.recorder().dump("demo");
    std::fs::write("flight.json", &flight).expect("write flight.json");
    let traces = tracer.recorder().traces();
    println!(
        "wrote flight.json ({} request span trees); open it at https://ui.perfetto.dev",
        traces.len()
    );
    if let Some(t) = traces.last() {
        println!(
            "\nlast request's span tree (request {}, outcome {}):",
            t.request_index, t.outcome
        );
        for s in &t.spans {
            let branch = if s.parent.is_some() { "└─ " } else { "" };
            println!(
                "  {branch}{:<10} {:>9.1} µs @ {:>10.1} µs",
                s.name, s.dur_us, s.start_us
            );
        }
    }

    let snapshot = telemetry.snapshot();
    std::fs::write("metrics.prom", prometheus::render(&snapshot)).expect("write metrics.prom");
    println!("wrote metrics.prom (Prometheus text exposition)\n");

    print!("{}", summary::render(&snapshot));
    println!();
    print!("{}", summary::render_spans(&telemetry.spans()));
    println!(
        "\n{} batches quarantined, {:.0} µs paid in backoff",
        server.quarantine.len(),
        server.backoff_paid_us
    );
}
