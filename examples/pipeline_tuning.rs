//! Service-wide tensor scheduling up close: take one batch's measured
//! preprocessing work and replay it under all four schedules (§V-B),
//! printing makespans, lock-contention time, and the Fig 20-style stage
//! completion timeline.
//!
//! ```sh
//! cargo run --release --example pipeline_tuning
//! ```

use graphtensor::core::prepro::run_prepro;
use graphtensor::core::scheduler::schedule_prepro;
use graphtensor::prelude::*;
use graphtensor::sim::{Phase, Timeline};

fn main() {
    // A heavy-feature workload: preprocessing is lookup/transfer-bound.
    let spec = gt_datasets::by_name("wiki-talk").unwrap();
    let data = spec.build(Scale::Test, 3);
    let batch: Vec<u32> = (0..200.min(data.num_vertices() as u32)).collect();
    let sampler = SamplerConfig {
        fanout: 10,
        layers: 2,
        seed: 4,
        ..Default::default()
    };
    let pr = run_prepro(&data, &batch, &sampler);
    println!(
        "batch preprocessing work: {} nodes, {:.1} MB of embeddings to move",
        pr.work.total_nodes,
        pr.work.total_feature_bytes as f64 / 1e6
    );

    let sys = SystemSpec::paper_testbed();
    println!(
        "\n{:<18} {:>12} {:>14}",
        "strategy", "makespan us", "lock wait us"
    );
    for strategy in [
        PreproStrategy::Serial,
        PreproStrategy::SerialPinned,
        PreproStrategy::Pipelined,
        PreproStrategy::PipelinedRelaxed,
    ] {
        let s = schedule_prepro(&pr.work, &sys, strategy);
        println!(
            "{:<18} {:>12.0} {:>14.0}",
            format!("{strategy:?}"),
            s.makespan_us,
            s.total_lock_wait_us()
        );
    }

    // Fig 20-style timeline: stage completion under serial vs pipelined.
    let stages = [
        Phase::Sampling,
        Phase::Reindex,
        Phase::Lookup,
        Phase::Transfer,
    ];
    let serial = schedule_prepro(&pr.work, &sys, PreproStrategy::Serial);
    let pipelined = schedule_prepro(&pr.work, &sys, PreproStrategy::PipelinedRelaxed);
    let ts = Timeline::from_schedule(&serial, &stages);
    let tp = Timeline::from_schedule(&pipelined, &stages);
    println!("\nstage completion times (us):");
    println!("{:<12} {:>10} {:>10}", "stage", "serial", "pipelined");
    for p in stages {
        println!(
            "{:<12} {:>10.0} {:>10.0}",
            p.label(),
            ts.finish_us(p).unwrap_or(0.0),
            tp.finish_us(p).unwrap_or(0.0)
        );
    }
    println!(
        "\npipelining finishes the transfer {:.1}% earlier (paper: 48.5%)",
        (1.0 - tp.finish_us(Phase::Transfer).unwrap() / ts.finish_us(Phase::Transfer).unwrap())
            * 100.0
    );
}
