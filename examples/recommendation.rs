//! Recommendation scenario: NGCF (neural graph collaborative filtering,
//! the paper's second evaluation model) on an amazon-like user–item
//! bipartite graph, with the edge-weighting path exercised end to end.
//!
//! ```sh
//! cargo run --release --example recommendation
//! ```

use graphtensor::prelude::*;
use graphtensor::sim::Phase;

fn main() {
    // Bipartite user–item interactions with Zipf item popularity, like the
    // paper's amazon/gowalla recommendation workloads.
    let spec = DatasetSpec {
        name: "amazon-demo",
        family: graphtensor::datasets::Family::Bipartite,
        vertices: 3_000,
        edges: 40_000,
        feature_dim: 64,
        out_dim: 2,
    };
    let data = spec.build(Scale::Custom(1), 11);
    println!(
        "user-item graph: {} vertices, {} interactions",
        data.num_vertices(),
        data.graph.num_edges()
    );

    let mut trainer = GraphTensor::new(
        GtVariant::Dynamic,
        ngcf(2, data.num_classes),
        SystemSpec::paper_testbed(),
    );
    trainer.sampler = SamplerConfig {
        fanout: 8,
        layers: 2,
        seed: 2,
        ..Default::default()
    };
    trainer.lr = 0.1;

    let losses = train_epochs(&mut trainer, &data, 4, 128, 5);
    for (e, l) in losses.iter().enumerate() {
        println!("epoch {:>2}: mean loss {l:.4}", e + 1);
    }

    // NGCF's similarity weighting runs in the NeighborApply kernel — show
    // the per-phase latency split of one batch.
    let batch: Vec<u32> = (0..128).collect();
    let report = trainer.train_batch(&data, &batch);
    println!("\nper-phase modeled GPU latency of one NGCF batch:");
    for phase in [Phase::EdgeWeighting, Phase::Aggregation, Phase::Combination] {
        println!("  {:<16} {:>9.1} us", phase.label(), report.phase_us(phase));
    }
    println!("  {:<16} {:>9.1} us total", "gpu", report.gpu_us());
    println!(
        "preprocessing: {:.1} us ({} sampled nodes, {} edges)",
        report.prepro_us(),
        report.num_nodes,
        report.num_edges
    );

    // The real recommendation objective: BPR ranking over (user, item+,
    // item−) triples, trained through the same NGCF pipeline.
    use graphtensor::models::recsys::{ranking_accuracy, sample_bpr_batch, train_bpr_batch};
    let num_users = 1_500; // the bipartite generator's user partition
    let mut ranker = GraphTensor::new(
        GtVariant::Dynamic,
        ngcf(2, 32), // output = 32-dim embeddings scored by inner product
        SystemSpec::paper_testbed(),
    );
    ranker.sampler = SamplerConfig {
        fanout: 8,
        layers: 2,
        seed: 12,
        ..Default::default()
    };
    ranker.lr = 0.3;
    let eval = sample_bpr_batch(&data, num_users, 128, 4242);
    let before = ranking_accuracy(&mut ranker, &data, &eval);
    for step in 0..40 {
        let b = sample_bpr_batch(&data, num_users, 64, step);
        train_bpr_batch(&mut ranker, &data, &b);
    }
    let after = ranking_accuracy(&mut ranker, &data, &eval);
    println!(
        "\nBPR ranking accuracy on held-out triples: {:.1}% → {:.1}% after 40 steps",
        before * 100.0,
        after * 100.0
    );
}
