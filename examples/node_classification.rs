//! Node classification on a citation-style graph (the GCN workload the
//! paper's intro motivates): train/test split, per-epoch accuracy, and a
//! comparison of sampled-minibatch training against pure inference cost.
//!
//! ```sh
//! cargo run --release --example node_classification
//! ```

use graphtensor::graph::generators;
use graphtensor::graph::EmbeddingTable;
use graphtensor::prelude::*;

fn main() {
    // Citation-like power-law graph with community-correlated labels:
    // label = community id, features carry a noisy community signature.
    let n = 3_000;
    let classes = 4;
    let coo = generators::rmat(n, 36_000, 17);
    let (graph, _) = graphtensor::graph::convert::coo_to_csr(&coo);
    let mut features = EmbeddingTable::random(n, 32, 23);
    let labels: Vec<usize> = (0..n).map(|v| v % classes).collect();
    for (v, &label) in labels.iter().enumerate() {
        features.row_mut(v as u32)[label] += 5.0;
    }
    let data = GraphData::new(graph, features, labels, classes);

    // 80/20 train/test split over vertex ids.
    let split = (n * 4) / 5;
    let train_seeds: Vec<u32> = (0..split as u32).collect();
    let test_seeds: Vec<u32> = (split as u32..n as u32).collect();

    let mut trainer = GraphTensor::new(
        GtVariant::Dynamic,
        gcn(2, classes),
        SystemSpec::paper_testbed(),
    );
    trainer.sampler = SamplerConfig {
        fanout: 3,
        layers: 2,
        seed: 31,
        ..Default::default()
    };
    trainer.lr = 0.3;

    println!("{:<8} {:>10} {:>12}", "epoch", "loss", "test acc");
    for epoch in 1..=6 {
        let mut sum = 0.0;
        let mut batches = 0;
        for b in BatchIter::from_seeds(train_seeds.clone(), 150, epoch as u64) {
            sum += trainer.train_batch(&data, &b).loss;
            batches += 1;
        }
        let acc = evaluate(&mut trainer, &data, &test_seeds);
        println!(
            "{:<8} {:>10.4} {:>11.1}%",
            epoch,
            sum / batches as f32,
            acc * 100.0
        );
    }

    let final_acc = evaluate(&mut trainer, &data, &test_seeds);
    println!(
        "\nfinal test accuracy: {:.1}% over {} held-out vertices (chance {:.0}%)",
        final_acc * 100.0,
        test_seeds.len(),
        100.0 / classes as f64
    );

    // Checkpoint the trained parameters and restore them into a fresh
    // trainer — accuracy must be identical.
    let path = std::env::temp_dir().join("gcn_citation.gt");
    graphtensor::tensor::checkpoint::save_file(trainer.params(), &path).unwrap();
    let restored = graphtensor::tensor::checkpoint::load_file(&path).unwrap();
    let mut served = GraphTensor::new(
        GtVariant::Dynamic,
        gcn(2, classes),
        SystemSpec::paper_testbed(),
    );
    served.sampler = trainer.sampler.clone();
    served.set_params(restored);
    let served_acc = evaluate(&mut served, &data, &test_seeds);
    println!(
        "restored-from-checkpoint accuracy: {:.1}% ({})",
        served_acc * 100.0,
        path.display()
    );
    std::fs::remove_file(&path).ok();
}
