//! Fault-tolerant serving: a multi-batch training loop that survives
//! injected transfer failures, a straggler host core, and bursts of device
//! memory pressure — zero panics, every batch resolving to a structured
//! outcome (succeeded / recovered / degraded / quarantined).
//!
//! ```sh
//! cargo run --release --example fault_tolerant_serving
//! ```
//!
//! The fault plan is seeded, so this run is exactly reproducible: same
//! seed, same retries, same outcomes. With an empty plan the supervisor is
//! a pass-through and numerics are bit-identical to the plain trainer.

use graphtensor::prelude::*;

fn main() {
    let data = GraphData::synthetic_learnable(2_000, 24_000, 32, 2, 7);
    let mut trainer = GraphTensor::new(
        GtVariant::Prepro,
        gcn(2, data.num_classes),
        SystemSpec::paper_testbed(),
    );
    trainer.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 1,
        ..Default::default()
    };
    trainer.lr = 0.3;

    // An unkind environment: 30% of DMAs fail per attempt, host core 0
    // runs 4x slow, and a co-tenant occasionally grabs nearly all device
    // memory (transient — a retry usually clears it).
    let plan = FaultPlan::new(2026)
        .with_transfer_failure(0.3)
        .with_straggler(0, 4.0)
        .with_transient_memory_pressure(1e-6, 0.2);
    let mut server = Supervisor::new(trainer, plan);

    println!("serving 20 batches under injected faults...\n");
    let mut trained = 0usize;
    for (i, batch) in BatchIter::new(2_000, 100, 3).take(20).enumerate() {
        let report = server.serve_batch(&data, &batch);
        let desc = match report.outcome {
            BatchOutcome::Succeeded => "ok".to_string(),
            BatchOutcome::Recovered { retries } => {
                format!(
                    "recovered after {retries} retr{}",
                    if retries == 1 { "y" } else { "ies" }
                )
            }
            BatchOutcome::Degraded { action, retries } => match action {
                DegradeAction::HalvedBatch { from, to } => {
                    format!("degraded: batch {from}->{to} nodes ({retries} retries)")
                }
                DegradeAction::SerializedPrepro => {
                    format!("degraded: serialized preprocessing ({retries} retries)")
                }
            },
            BatchOutcome::Failed { reason } => format!("failed: {reason:?}"),
            BatchOutcome::Quarantined { reason, attempts } => {
                format!("QUARANTINED after {attempts} attempts ({reason:?})")
            }
        };
        if report.outcome.trained() {
            trained += 1;
            println!("batch {i:>2}: loss {:>7.4}  {desc}", report.loss);
        } else {
            println!("batch {i:>2}: loss     ---  {desc}");
        }
    }

    println!(
        "\n{trained}/20 batches trained; {} quarantined; {:.0} µs spent in retry backoff",
        server.quarantine.len(),
        server.backoff_paid_us,
    );
    for q in &server.quarantine {
        println!(
            "  quarantined batch {} ({} nodes): {:?} after {} attempts",
            q.batch_index,
            q.batch.len(),
            q.reason,
            q.attempts
        );
    }
    if server.is_prepro_degraded() {
        println!("  preprocessing degraded to the serialized strategy");
    }
}
