//! Fault-tolerant serving: a multi-batch training loop that survives
//! injected transfer failures, a straggler host core, and bursts of device
//! memory pressure — zero panics, every batch resolving to a structured
//! outcome (succeeded / recovered / degraded / quarantined).
//!
//! ```sh
//! cargo run --release --example fault_tolerant_serving
//! ```
//!
//! With `--checkpoint-dir DIR` the run is **durable**: every outcome is
//! journaled (write-ahead) and the parameters are checkpointed
//! crash-consistently. Killing the process at an injected crash point and
//! re-running with the same flags recovers from the journal and finishes
//! with bit-identical parameters:
//!
//! ```sh
//! # Crashes mid-journal-append while serving batch 7 (exit code 3)...
//! cargo run --release --example fault_tolerant_serving -- \
//!     --checkpoint-dir /tmp/gt-serve --crash-at 7 --crash-site mid-journal
//! # ...and the same command recovers, resumes at batch 7, and completes.
//! cargo run --release --example fault_tolerant_serving -- \
//!     --checkpoint-dir /tmp/gt-serve --crash-at 7 --crash-site mid-journal
//! ```
//!
//! Crash sites: `mid-journal`, `mid-checkpoint`, `after-commit`
//! (docs/fault_model.md §Durability & recovery).
//!
//! With `--serve-metrics PORT` the run exposes a zero-dependency scrape
//! endpoint (`/metrics` in Prometheus exposition format, `/healthz`) for
//! the duration of the loop, then self-scrapes it once and prints the
//! result — a built-in smoke test. Port `0` picks an ephemeral port.
//!
//! The fault plan is seeded, so this run is exactly reproducible: same
//! seed, same retries, same outcomes. With an empty plan the supervisor is
//! a pass-through and numerics are bit-identical to the plain trainer.

use graphtensor::prelude::*;
use graphtensor::tensor::checkpoint;
use std::path::PathBuf;

const BATCHES: usize = 20;

fn usage() -> ! {
    eprintln!(
        "usage: fault_tolerant_serving [--checkpoint-dir DIR] [--crash-at N] \
         [--crash-site SITE] [--serve-metrics PORT]"
    );
    std::process::exit(2);
}

/// One `GET` against our own metrics endpoint, over plain std TCP.
fn scrape(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics endpoint");
    let request = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send scrape");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape");
    let (head, body) = response.split_once("\r\n\r\n").expect("http response");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape failed: {head}");
    body.to_string()
}

fn main() {
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut crash_at: Option<usize> = None;
    let mut crash_site = CrashSite::MidJournal;
    let mut metrics_port: Option<u16> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--checkpoint-dir" => checkpoint_dir = Some(PathBuf::from(value())),
            "--crash-at" => crash_at = Some(value().parse().unwrap_or_else(|_| usage())),
            "--crash-site" => {
                crash_site = CrashSite::parse(&value()).unwrap_or_else(|| usage());
            }
            "--serve-metrics" => {
                metrics_port = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    if crash_at.is_some() && checkpoint_dir.is_none() {
        eprintln!("--crash-at needs --checkpoint-dir (a crash without a journal loses work)");
        std::process::exit(2);
    }

    let data = GraphData::synthetic_learnable(2_000, 24_000, 32, 2, 7);
    let mut trainer = GraphTensor::new(
        GtVariant::Prepro,
        gcn(2, data.num_classes),
        SystemSpec::paper_testbed(),
    );
    trainer.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 1,
        ..Default::default()
    };
    trainer.lr = 0.3;

    // Scrape endpoint: give the trainer a recording telemetry handle and
    // expose its registry over plain-std HTTP for the life of the run.
    let metrics_server = metrics_port.map(|port| {
        let telemetry = Telemetry::recording();
        trainer.telemetry = telemetry.clone();
        let server = MetricsServer::start(port, telemetry).expect("bind metrics endpoint");
        println!("metrics: http://{}/metrics (and /healthz)\n", server.addr());
        server
    });

    // An unkind environment: 30% of DMAs fail per attempt, host core 0
    // runs 4x slow, and a co-tenant occasionally grabs nearly all device
    // memory (transient — a retry usually clears it). The crash rule is
    // appended LAST: fault rolls hash per rule index, so the other rules
    // fire identically with and without it — which is what makes the
    // crashed-and-recovered run comparable to an uncrashed one.
    let mut plan = FaultPlan::new(2026)
        .with_transfer_failure(0.3)
        .with_straggler(0, 4.0)
        .with_transient_memory_pressure(1e-6, 0.2);
    if let Some(batch) = crash_at {
        plan = plan.with_crash_at(batch, crash_site);
    }
    let mut server = Supervisor::new(trainer, plan);

    // Durable mode: recover over an existing journal, or start a fresh one.
    let mut start = 0usize;
    if let Some(dir) = &checkpoint_dir {
        let cfg = DurabilityConfig::new(dir);
        if cfg.journal_path().exists() {
            let report = server
                .recover(&data, cfg)
                .unwrap_or_else(|e| panic!("recovery failed: {e}"));
            start = report.batches_replayed;
            println!(
                "recovered: {} batches replayed, {} quarantine records, \
                 {} checkpoints verified{}\n",
                report.batches_replayed,
                report.quarantine_restored,
                report.checkpoints_verified,
                if report.torn_tail_dropped {
                    " (torn journal tail dropped)"
                } else {
                    ""
                },
            );
        } else {
            server.make_durable(cfg).expect("create durable state");
        }
    }

    println!("serving batches {start}..{BATCHES} under injected faults...\n");
    let mut trained = 0usize;
    for (i, batch) in BatchIter::new(2_000, 100, 3)
        .take(BATCHES)
        .enumerate()
        .skip(start)
    {
        let report = if server.is_durable() {
            match server.serve_durable(&data, &batch) {
                Ok(report) => report,
                Err(GtError::InjectedCrash { site }) => {
                    println!("batch {i:>2}: KILLED ({} crash injected)", site.label());
                    println!("\nre-run with the same flags to recover");
                    std::process::exit(3);
                }
                Err(e) => panic!("durable serving failed: {e}"),
            }
        } else {
            server.serve_batch(&data, &batch)
        };
        let desc = match report.outcome {
            BatchOutcome::Succeeded => "ok".to_string(),
            BatchOutcome::Recovered { retries } => {
                format!(
                    "recovered after {retries} retr{}",
                    if retries == 1 { "y" } else { "ies" }
                )
            }
            BatchOutcome::Degraded { action, retries } => match action {
                DegradeAction::HalvedBatch { from, to } => {
                    format!("degraded: batch {from}->{to} nodes ({retries} retries)")
                }
                DegradeAction::SerializedPrepro => {
                    format!("degraded: serialized preprocessing ({retries} retries)")
                }
                DegradeAction::ReducedFanout { from, to } => {
                    format!("degraded: fanout {from}->{to} ({retries} retries)")
                }
                DegradeAction::HalvedBatchReducedFanout {
                    from,
                    to,
                    fanout_from,
                    fanout_to,
                } => {
                    format!(
                        "degraded: batch {from}->{to} nodes, fanout \
                         {fanout_from}->{fanout_to} ({retries} retries)"
                    )
                }
            },
            BatchOutcome::Failed { reason } => format!("failed: {reason:?}"),
            BatchOutcome::Quarantined { reason, attempts } => {
                format!("QUARANTINED after {attempts} attempts ({reason:?})")
            }
            BatchOutcome::Shed { cause } => format!("SHED ({})", cause.label()),
        };
        if report.outcome.trained() {
            trained += 1;
            println!("batch {i:>2}: loss {:>7.4}  {desc}", report.loss);
        } else {
            println!("batch {i:>2}: loss     ---  {desc}");
        }
    }

    println!(
        "\n{trained}/{} batches trained this process; {} quarantined; \
         {:.0} µs spent in retry backoff",
        BATCHES - start,
        server.quarantine.len(),
        server.backoff_paid_us,
    );
    for q in &server.quarantine {
        println!(
            "  quarantined batch {} ({} nodes): {:?} after {} attempts",
            q.batch_index,
            q.batch.len(),
            q.reason,
            q.attempts
        );
    }
    if server.is_prepro_degraded() {
        println!("  preprocessing degraded to the serialized strategy");
    }
    if let Some(endpoint) = metrics_server {
        // Built-in smoke test: scrape our own endpoint once before
        // shutting it down, and fail loudly if the exposition is empty.
        let health = scrape(endpoint.addr(), "/healthz");
        assert!(health.starts_with("ok\n"), "healthz answered {health:?}");
        assert!(health.contains("uptime_s "), "healthz answered {health:?}");
        assert!(health.contains("slo "), "healthz answered {health:?}");
        let metrics = scrape(endpoint.addr(), "/metrics");
        assert!(metrics.contains("gt_"), "no gt_ series in the exposition");
        let series = metrics
            .lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .count();
        println!("\nmetrics self-scrape ok: healthz ok, {series} series exposed");
        endpoint.shutdown();
    }
    if server.is_durable() {
        server.checkpoint_now().expect("final checkpoint");
        let cfg = DurabilityConfig::new(checkpoint_dir.expect("durable implies dir"));
        let image = std::fs::read(cfg.checkpoint_path()).expect("read final checkpoint");
        println!(
            "  final checkpoint {} ({} bytes, fingerprint {:#010x})",
            cfg.checkpoint_path().display(),
            image.len(),
            checkpoint::image_crc(&image),
        );
    }
}
