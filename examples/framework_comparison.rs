//! Framework shoot-out: train the same GCN batch under every framework
//! strategy (PyG, DGL, GNNAdvisor, SALIENT, Base/Dynamic/Prepro-GT) and
//! compare modeled GPU latency, end-to-end latency, memory footprint, and
//! cache traffic — a miniature of the paper's whole evaluation.
//!
//! ```sh
//! cargo run --release --example framework_comparison
//! ```

use graphtensor::prelude::*;

fn main() {
    let spec = gt_datasets::by_name("reddit2").unwrap();
    let data = spec.build(Scale::Test, 42);
    let batch: Vec<u32> = (0..100).collect();
    let sampler = SamplerConfig {
        fanout: 8,
        layers: 2,
        seed: 9,
        ..Default::default()
    };
    let model = gcn(2, data.num_classes);

    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}  table-III",
        "framework", "gpu us", "e2e us", "peak MB", "cache MB"
    );

    let show = |name: String, report: BatchReport, overlap: bool, traits_row: String| {
        println!(
            "{:<12} {:>10.0} {:>10.0} {:>12.2} {:>12.2}  {}",
            name,
            report.gpu_us(),
            report.e2e_us(overlap),
            report.sim.memory.peak() as f64 / 1e6,
            report.sim.total_stats().cache_loaded_bytes as f64 / 1e6,
            traits_row,
        );
    };

    for kind in [
        BaselineKind::Pyg,
        BaselineKind::PygMt,
        BaselineKind::Dgl,
        BaselineKind::GnnAdvisor,
        BaselineKind::Salient,
    ] {
        let mut b = Baseline::new(kind, model.clone(), SystemSpec::paper_testbed());
        b.sampler = sampler.clone();
        let overlap = b.overlaps_batches();
        let t = b.traits();
        let r = b.train_batch(&data, &batch);
        show(
            b.name(),
            r,
            overlap,
            format!(
                "fmt={} bloat={} trans={} cache={}",
                t.initial_format, t.memory_bloat, t.format_translation, t.cache_bloat
            ),
        );
    }

    for variant in [GtVariant::Base, GtVariant::Dynamic, GtVariant::Prepro] {
        let mut t = GraphTensor::new(variant, model.clone(), SystemSpec::paper_testbed());
        t.sampler = sampler.clone();
        let overlap = t.overlaps_batches();
        // Let Dynamic/Prepro calibrate their cost model first.
        for _ in 0..3 {
            t.train_batch(&data, &batch);
        }
        let tr = t.traits();
        let r = t.train_batch(&data, &batch);
        show(
            t.name(),
            r,
            overlap,
            format!(
                "fmt={} bloat={} trans={} cache={}",
                tr.initial_format, tr.memory_bloat, tr.format_translation, tr.cache_bloat
            ),
        );
    }

    println!("\nAll frameworks compute identical numerics; only their execution");
    println!("strategies differ — that is the paper's comparison methodology.");
}
