//! # GraphTensor-RS
//!
//! A Rust reproduction of **GraphTensor** (Jang et al., IPDPS 2023): a
//! comprehensive GNN-acceleration framework with pure vertex-centric
//! kernels (the NAPA programming model), dynamic kernel placement, and
//! service-wide tensor scheduling for preprocessing.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`graph`] — storage formats (COO/CSR/CSC), embeddings, generators;
//! * [`tensor`] — dense/sparse kernels and the autodiff dataflow graph;
//! * [`sim`] — device models, work counters, discrete-event simulation;
//! * [`sample`] — neighbor sampling, VID hash table, reindexing, lookup;
//! * [`telemetry`] — spans, metrics, Chrome-trace / Prometheus exporters;
//! * [`core`] — NAPA, the DKP orchestrator, the tensor scheduler, and the
//!   [`core::trainer::GraphTensor`] framework;
//! * [`models`] — GCN / NGCF / GIN / GAT-lite presets + train/eval loops;
//! * [`baselines`] — PyG / DGL / GNNAdvisor / SALIENT strategy replicas;
//! * [`datasets`] — the ten Table-II workloads as synthetic recipes.
//!
//! ## Quickstart
//!
//! ```
//! use graphtensor::prelude::*;
//!
//! // A small synthetic node-classification workload.
//! let data = GraphData::synthetic_learnable(300, 2400, 16, 2, 7);
//! // Dynamic-GT: NAPA kernels + dynamic kernel placement.
//! let mut trainer = GraphTensor::new(
//!     GtVariant::Dynamic,
//!     gcn(2, data.num_classes),
//!     SystemSpec::paper_testbed(),
//! );
//! trainer.sampler.fanout = 4;
//! let losses = train_epochs(&mut trainer, &data, 3, 50, 1);
//! assert_eq!(losses.len(), 3);
//! ```

pub use gt_baselines as baselines;
pub use gt_core as core;
pub use gt_datasets as datasets;
pub use gt_graph as graph;
pub use gt_models as models;
pub use gt_sample as sample;
pub use gt_sim as sim;
pub use gt_telemetry as telemetry;
pub use gt_tensor as tensor;

/// Everything needed for typical use.
pub mod prelude {
    pub use gt_baselines::{Baseline, BaselineKind};
    pub use gt_core::config::ModelConfig;
    pub use gt_core::data::GraphData;
    pub use gt_core::error::GtError;
    pub use gt_core::framework::{
        BatchOutcome, BatchReport, DegradeAction, FailReason, Framework, ShedCause,
    };
    pub use gt_core::overload::{Completion, Gateway, OverloadConfig};
    pub use gt_core::scheduler::PreproStrategy;
    pub use gt_core::serve::{
        DurabilityConfig, QuarantineRecord, RecoveryReport, ServeConfig, Supervisor,
    };
    pub use gt_core::tracing::{RequestTracer, TracerConfig};
    pub use gt_core::trainer::{GraphTensor, GtVariant};
    pub use gt_datasets::{DatasetSpec, Scale};
    pub use gt_models::{evaluate, gat_lite, gcn, gin, ngcf, train_epochs};
    pub use gt_sample::{BatchIter, SamplerConfig};
    pub use gt_sim::{CrashSite, FaultPlan, SystemSpec};
    pub use gt_telemetry::{http::MetricsServer, SloSpec, Telemetry};
}
