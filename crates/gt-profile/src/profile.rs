//! The bundled per-schedule profile: breakdown + bubbles + critical path +
//! what-if, computed in one call.

use gt_sim::{Schedule, Simulator};

use crate::breakdown::StageBreakdown;
use crate::bubble::BubbleReport;
use crate::critical::{critical_path, CriticalPath};
use crate::whatif::{what_if_headroom, WhatIf};

/// Everything the profiler knows about one schedule.
#[derive(Debug, Clone)]
pub struct ScheduleProfile {
    pub makespan_us: f64,
    /// Summed busy time across all events.
    pub total_busy_us: f64,
    /// Busy time attributed by stage.
    pub breakdown: StageBreakdown,
    /// Per-unit idle accounting.
    pub bubbles: BubbleReport,
    /// Binding-constraint chain + DAG critical path.
    pub critical: CriticalPath,
    /// Per-stage headroom from zeroed-stage re-runs.
    pub what_if: Vec<WhatIf>,
}

/// Profile `schedule`, which must have been produced by `sim` (the task
/// specs drive dependency reconstruction and the what-if re-runs).
pub fn profile_schedule(sim: &Simulator, schedule: &Schedule) -> ScheduleProfile {
    let breakdown = StageBreakdown::from_schedule(schedule);
    ScheduleProfile {
        makespan_us: schedule.makespan_us,
        total_busy_us: breakdown.total(),
        breakdown,
        bubbles: BubbleReport::from_schedule(schedule, sim.host_cores()),
        critical: critical_path(sim.tasks(), schedule),
        what_if: what_if_headroom(sim),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::{Phase, Resource, TaskSpec};

    #[test]
    fn profile_parts_agree_on_totals() {
        let mut sim = Simulator::new(2);
        let s = sim.add(TaskSpec::new(
            "S1A c0",
            Resource::HostCore,
            40.0,
            Phase::Sampling,
        ));
        let h = sim.add(
            TaskSpec::new("S1H c0", Resource::HostCore, 10.0, Phase::Sampling)
                .after(&[s])
                .locked(1),
        );
        let r =
            sim.add(TaskSpec::new("R1 c0", Resource::HostCore, 30.0, Phase::Reindex).after(&[h]));
        sim.add(TaskSpec::new("T(R)", Resource::Pcie, 20.0, Phase::Transfer).after(&[r]));
        let schedule = sim.run();
        let p = profile_schedule(&sim, &schedule);
        assert_eq!(p.makespan_us.to_bits(), schedule.makespan_us.to_bits());
        assert!((p.total_busy_us - p.bubbles.busy_us()).abs() < 1e-9);
        let chain: f64 = p.critical.chain.iter().map(|l| l.end_us - l.start_us).sum();
        assert!((chain - p.makespan_us).abs() < 1e-9);
        assert!(p.critical.dag_path_us <= p.makespan_us + 1e-9);
        assert!(!p.what_if.is_empty());
    }
}
