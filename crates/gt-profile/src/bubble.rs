//! Per-resource idle ("bubble") accounting — Fig 13's whitespace, measured.

use gt_sim::{resource_track, Resource, Schedule};

/// Utilization of one resource unit over the schedule's makespan.
#[derive(Debug, Clone)]
pub struct UnitUtilization {
    /// Display track name (`host core N` / `PCIe` / `GPU`), matching the
    /// Chrome-trace export.
    pub track: String,
    pub resource: Resource,
    pub unit: usize,
    /// Summed busy time of events on this unit, µs.
    pub busy_us: f64,
    /// `makespan - busy`, µs.
    pub idle_us: f64,
    /// Idle gaps `(start, end)` within `[0, makespan)`, in time order.
    pub gaps: Vec<(f64, f64)>,
}

impl UnitUtilization {
    /// Idle share of the makespan, in percent.
    pub fn idle_pct(&self, makespan_us: f64) -> f64 {
        if makespan_us <= 0.0 {
            0.0
        } else {
            100.0 * self.idle_us / makespan_us
        }
    }
}

/// Bubble report over every resource unit a schedule could have used.
#[derive(Debug, Clone)]
pub struct BubbleReport {
    pub makespan_us: f64,
    /// Host cores first (all of them, including ones the schedule left
    /// fully idle — an idle core *is* a bubble), then PCIe, then GPU when
    /// the task set uses them.
    pub units: Vec<UnitUtilization>,
}

impl BubbleReport {
    /// Build from a schedule. `host_cores` is the simulator's pool size
    /// (`Simulator::host_cores()`); cores the schedule never touched count
    /// as fully idle. PCIe/GPU rows appear when any event ran there.
    pub fn from_schedule(schedule: &Schedule, host_cores: usize) -> Self {
        let makespan = schedule.makespan_us;
        let mut units: Vec<UnitUtilization> = Vec::new();
        for core in 0..host_cores {
            units.push(unit_utilization(
                schedule,
                Resource::HostCore,
                core,
                makespan,
            ));
        }
        for resource in [Resource::Pcie, Resource::Gpu] {
            if schedule.events.iter().any(|e| e.resource == resource) {
                units.push(unit_utilization(schedule, resource, 0, makespan));
            }
        }
        BubbleReport {
            makespan_us: makespan,
            units,
        }
    }

    /// Aggregate idle share across all units, in percent: total idle time
    /// over `units × makespan`. This is the number the paper's Fig 13
    /// argument is about — the pipelined schedule turns this whitespace
    /// into overlap.
    pub fn idle_pct(&self) -> f64 {
        let denom = self.units.len() as f64 * self.makespan_us;
        if denom <= 0.0 {
            return 0.0;
        }
        100.0 * self.units.iter().map(|u| u.idle_us).sum::<f64>() / denom
    }

    /// Summed busy time across all units.
    pub fn busy_us(&self) -> f64 {
        self.units.iter().map(|u| u.busy_us).sum()
    }
}

fn unit_utilization(
    schedule: &Schedule,
    resource: Resource,
    unit: usize,
    makespan_us: f64,
) -> UnitUtilization {
    let mut spans: Vec<(f64, f64)> = schedule
        .events
        .iter()
        .filter(|e| e.resource == resource && e.unit == unit)
        .map(|e| (e.start_us, e.end_us))
        .collect();
    spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    let busy: f64 = spans.iter().map(|(s, e)| e - s).sum();
    let mut gaps: Vec<(f64, f64)> = Vec::new();
    let mut cursor = 0.0f64;
    for &(s, e) in &spans {
        if s > cursor {
            gaps.push((cursor, s));
        }
        cursor = cursor.max(e);
    }
    if makespan_us > cursor {
        gaps.push((cursor, makespan_us));
    }
    UnitUtilization {
        track: resource_track(resource, unit),
        resource,
        unit,
        busy_us: busy,
        idle_us: (makespan_us - busy).max(0.0),
        gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::{Phase, Simulator, TaskSpec};

    #[test]
    fn idle_cores_count_as_bubbles() {
        // 2 cores, all work on one of them: the second core is 100% bubble.
        let mut sim = Simulator::new(2);
        sim.add(TaskSpec::new(
            "a",
            Resource::HostCore,
            50.0,
            Phase::Sampling,
        ));
        let s = sim.run();
        let b = BubbleReport::from_schedule(&s, 2);
        assert_eq!(b.units.len(), 2); // no PCIe/GPU tasks
        let core0 = &b.units[0];
        let core1 = &b.units[1];
        assert!((core0.busy_us - 50.0).abs() < 1e-9);
        assert!((core1.busy_us - 0.0).abs() < 1e-9);
        assert!((core1.idle_pct(s.makespan_us) - 100.0).abs() < 1e-9);
        assert!((b.idle_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn gaps_cover_exactly_the_idle_time() {
        let mut sim = Simulator::new(1);
        let a = sim.add(TaskSpec::new(
            "a",
            Resource::HostCore,
            30.0,
            Phase::Sampling,
        ));
        let t = sim.add(TaskSpec::new("t", Resource::Pcie, 40.0, Phase::Transfer).after(&[a]));
        sim.add(TaskSpec::new("b", Resource::HostCore, 10.0, Phase::Lookup).after(&[t]));
        let s = sim.run();
        let b = BubbleReport::from_schedule(&s, 1);
        for u in &b.units {
            let gap_sum: f64 = u.gaps.iter().map(|(g0, g1)| g1 - g0).sum();
            assert!(
                (gap_sum - u.idle_us).abs() < 1e-9,
                "{}: gaps {gap_sum} vs idle {}",
                u.track,
                u.idle_us
            );
            for w in u.gaps.windows(2) {
                assert!(w[0].1 <= w[1].0);
            }
        }
        // Core idles exactly while the transfer runs: one 40 µs gap.
        let core = b.units.iter().find(|u| u.track == "host core 0").unwrap();
        assert_eq!(core.gaps.len(), 1);
        assert!((core.gaps[0].1 - core.gaps[0].0 - 40.0).abs() < 1e-9);
    }
}
