//! Critical-path extraction from a DES schedule.
//!
//! Two complementary views:
//!
//! * The **binding-constraint chain**: walked backwards from the event that
//!   sets the makespan. The list scheduler starts every task at
//!   `max(data_ready, unit_ready, lock_ready)` with exact f64 `max`, so for
//!   each event exactly which constraint *bound* its start is recoverable
//!   bit-exactly from the event stream — a dependency that finished at that
//!   instant (data-bound), the previous task on the same resource unit
//!   (resource-bound), or the previous holder of its lock group
//!   (lock-bound). The chain is contiguous in time and its durations sum to
//!   the makespan exactly: it *is* the reason the schedule is as long as it
//!   is, stage by stage.
//! * The **DAG critical path**: the longest duration-sum path through data
//!   dependencies alone, ignoring resource and lock contention. This is the
//!   makespan an infinitely-parallel machine would achieve, so
//!   `dag_path ≤ makespan ≤ total busy time` always holds (property-tested
//!   in `tests/proptests.rs`).

use std::collections::HashMap;

use gt_sim::{Resource, Schedule, TaskId, TaskSpec};

use crate::breakdown::StageBreakdown;
use crate::stage::{classify_task, Stage};

/// Which constraint bound a chain link's start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binding {
    /// Started at t=0 with nothing before it (chain head).
    Start,
    /// Waited for a data dependency to finish.
    Data,
    /// Waited for its resource unit to free up.
    Resource,
    /// Waited for its lock group (hash-table contention, Fig 14).
    Lock,
}

impl Binding {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Binding::Start => "start",
            Binding::Data => "data",
            Binding::Resource => "resource",
            Binding::Lock => "lock",
        }
    }
}

/// One link of the binding-constraint chain.
#[derive(Debug, Clone)]
pub struct ChainLink {
    pub task: TaskId,
    pub label: String,
    pub stage: Stage,
    pub resource: Resource,
    pub unit: usize,
    pub start_us: f64,
    pub end_us: f64,
    /// What this link was waiting on before it started (the constraint that
    /// connects it to the previous link).
    pub binding: Binding,
}

/// Critical-path analysis of one schedule.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Binding-constraint chain in time order; contiguous, and its
    /// durations sum exactly to the makespan.
    pub chain: Vec<ChainLink>,
    /// Longest data-dependency-only path (infinite-parallelism bound), µs.
    pub dag_path_us: f64,
    /// Chain time attributed by stage.
    pub by_stage: StageBreakdown,
    /// Chain time attributed by binding kind: how much of the makespan sits
    /// behind data dependencies vs. resource contention vs. lock waits.
    pub by_binding: Vec<(Binding, f64)>,
}

impl CriticalPath {
    /// Chain time waiting on `binding` (the summed durations of links whose
    /// start was bound by it).
    pub fn binding_us(&self, binding: Binding) -> f64 {
        self.by_binding
            .iter()
            .find(|(b, _)| *b == binding)
            .map_or(0.0, |(_, us)| *us)
    }
}

/// Extract the critical path of `schedule`, using the task specs the
/// schedule was produced from (`Simulator::tasks()`); `tasks[i]` must be the
/// spec of `TaskId` `i`.
pub fn critical_path(tasks: &[TaskSpec], schedule: &Schedule) -> CriticalPath {
    assert!(
        schedule.events.iter().all(|e| e.task < tasks.len()),
        "schedule references tasks missing from the spec slice"
    );
    let chain = binding_chain(tasks, schedule);
    let mut by_stage = StageBreakdown::new();
    let mut by_binding: Vec<(Binding, f64)> = Vec::new();
    for link in &chain {
        by_stage.add(link.stage, link.end_us - link.start_us);
        match by_binding.iter_mut().find(|(b, _)| *b == link.binding) {
            Some((_, us)) => *us += link.end_us - link.start_us,
            None => by_binding.push((link.binding, link.end_us - link.start_us)),
        }
    }
    CriticalPath {
        chain,
        dag_path_us: dag_path_us(tasks, schedule),
        by_stage,
        by_binding,
    }
}

/// Longest data-dependency path using *observed* event durations (so
/// fault-stretched tasks count at their stretched length).
fn dag_path_us(tasks: &[TaskSpec], schedule: &Schedule) -> f64 {
    let mut dur = vec![0.0f64; tasks.len()];
    for e in &schedule.events {
        dur[e.task] = e.end_us - e.start_us;
    }
    // Task ids are topologically ordered (deps must precede dependents at
    // submission), so one forward pass suffices.
    let mut longest = vec![0.0f64; tasks.len()];
    let mut best = 0.0f64;
    for (i, t) in tasks.iter().enumerate() {
        let pred = t.deps.iter().map(|&d| longest[d]).fold(0.0f64, f64::max);
        longest[i] = pred + dur[i];
        best = best.max(longest[i]);
    }
    best
}

fn binding_chain(tasks: &[TaskSpec], schedule: &Schedule) -> Vec<ChainLink> {
    if schedule.events.is_empty() {
        return Vec::new();
    }
    // Replay the event stream in scheduling order to recover, for each
    // event, the three ready times its start was the max of — and which
    // predecessor event produced each.
    #[derive(Clone, Copy)]
    struct ReadyInfo {
        data: (f64, Option<usize>),     // (ready time, predecessor event idx)
        resource: (f64, Option<usize>), // previous event on this unit
        lock: (f64, Option<usize>),     // previous event in this lock group
    }
    let mut finish_event: HashMap<TaskId, usize> = HashMap::new();
    let mut unit_prev: HashMap<(u8, usize), usize> = HashMap::new();
    let mut lock_prev: HashMap<u32, usize> = HashMap::new();
    let mut info: Vec<ReadyInfo> = Vec::with_capacity(schedule.events.len());
    let rank = |r: Resource| match r {
        Resource::HostCore => 0u8,
        Resource::Pcie => 1,
        Resource::Gpu => 2,
    };
    for (idx, e) in schedule.events.iter().enumerate() {
        let spec = &tasks[e.task];
        let mut data: (f64, Option<usize>) = (0.0, None);
        for &d in &spec.deps {
            let pe = finish_event[&d];
            let end = schedule.events[pe].end_us;
            if end >= data.0 {
                data = (end, Some(pe));
            }
        }
        let unit_key = (rank(e.resource), e.unit);
        let resource = match unit_prev.get(&unit_key) {
            Some(&pe) => (schedule.events[pe].end_us, Some(pe)),
            None => (0.0, None),
        };
        let lock = match spec.lock.and_then(|g| lock_prev.get(&g).copied()) {
            Some(pe) => (schedule.events[pe].end_us, Some(pe)),
            None => (0.0, None),
        };
        info.push(ReadyInfo {
            data,
            resource,
            lock,
        });
        finish_event.insert(e.task, idx);
        unit_prev.insert(unit_key, idx);
        if let Some(g) = spec.lock {
            lock_prev.insert(g, idx);
        }
    }

    // Walk backwards from the event that sets the makespan. Preference
    // order on ties: data > lock > resource (data edges are the most
    // informative attribution; the sum is identical either way).
    let mut cur = schedule
        .events
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.end_us.total_cmp(&b.1.end_us).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap();
    let mut chain_rev: Vec<ChainLink> = Vec::new();
    loop {
        let e = &schedule.events[cur];
        let ri = &info[cur];
        let (binding, pred) = if e.start_us == 0.0 {
            (Binding::Start, None)
        } else if ri.data.0 == e.start_us {
            (Binding::Data, ri.data.1)
        } else if ri.lock.0 == e.start_us {
            (Binding::Lock, ri.lock.1)
        } else if ri.resource.0 == e.start_us {
            (Binding::Resource, ri.resource.1)
        } else {
            // Unreachable for schedules produced by the DES (start is the
            // exact max of the three); break defensively rather than loop.
            (Binding::Start, None)
        };
        chain_rev.push(ChainLink {
            task: e.task,
            label: e.label.clone(),
            stage: classify_task(e.phase, &e.label),
            resource: e.resource,
            unit: e.unit,
            start_us: e.start_us,
            end_us: e.end_us,
            binding,
        });
        match pred {
            Some(p) => cur = p,
            None => break,
        }
    }
    chain_rev.reverse();
    chain_rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::{Phase, Simulator, TaskSpec};

    fn chain_sum(cp: &CriticalPath) -> f64 {
        cp.chain.iter().map(|l| l.end_us - l.start_us).sum()
    }

    #[test]
    fn serial_chain_is_every_task_and_data_bound() {
        let mut sim = Simulator::new(4);
        let a = sim.add(TaskSpec::new(
            "S1",
            Resource::HostCore,
            40.0,
            Phase::Sampling,
        ));
        let b = sim.add(TaskSpec::new("R1", Resource::HostCore, 30.0, Phase::Reindex).after(&[a]));
        let c = sim.add(TaskSpec::new("K1", Resource::HostCore, 20.0, Phase::Lookup).after(&[b]));
        sim.add(TaskSpec::new("T", Resource::Pcie, 10.0, Phase::Transfer).after(&[c]));
        let s = sim.run();
        let cp = critical_path(sim.tasks(), &s);
        assert_eq!(cp.chain.len(), 4);
        assert_eq!(cp.chain[0].binding, Binding::Start);
        assert!(cp.chain[1..].iter().all(|l| l.binding == Binding::Data));
        assert!((chain_sum(&cp) - s.makespan_us).abs() < 1e-9);
        assert!((cp.dag_path_us - s.makespan_us).abs() < 1e-9);
    }

    #[test]
    fn resource_contention_shows_up_as_resource_binding() {
        // One core, two independent tasks: the second waits on the unit.
        let mut sim = Simulator::new(1);
        sim.add(TaskSpec::new(
            "a",
            Resource::HostCore,
            50.0,
            Phase::Sampling,
        ));
        sim.add(TaskSpec::new("b", Resource::HostCore, 30.0, Phase::Reindex));
        let s = sim.run();
        let cp = critical_path(sim.tasks(), &s);
        assert_eq!(cp.chain.len(), 2);
        assert_eq!(cp.chain[1].binding, Binding::Resource);
        assert!((cp.binding_us(Binding::Resource) - 30.0).abs() < 1e-9);
        // Infinite parallelism would run them side by side.
        assert!((cp.dag_path_us - 50.0).abs() < 1e-9);
        assert!((chain_sum(&cp) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn lock_contention_shows_up_as_lock_binding() {
        let mut sim = Simulator::new(8);
        sim.add(TaskSpec::new("h0", Resource::HostCore, 60.0, Phase::Sampling).locked(1));
        sim.add(TaskSpec::new("h1", Resource::HostCore, 40.0, Phase::Sampling).locked(1));
        let s = sim.run();
        let cp = critical_path(sim.tasks(), &s);
        assert_eq!(cp.chain.len(), 2);
        assert_eq!(cp.chain[1].binding, Binding::Lock);
        assert!((chain_sum(&cp) - s.makespan_us).abs() < 1e-9);
    }

    #[test]
    fn chain_is_contiguous_in_time() {
        // A small mixed DAG across all three resources.
        let mut sim = Simulator::new(2);
        let mut prev = None;
        for i in 0..6 {
            let mut t = TaskSpec::new(
                format!("t{i}"),
                if i % 3 == 2 {
                    Resource::Pcie
                } else {
                    Resource::HostCore
                },
                10.0 + i as f64,
                Phase::Sampling,
            );
            if let Some(p) = prev {
                if i % 2 == 0 {
                    t = t.after(&[p]);
                }
            }
            prev = Some(sim.add(t));
        }
        let s = sim.run();
        let cp = critical_path(sim.tasks(), &s);
        for w in cp.chain.windows(2) {
            assert_eq!(w[0].end_us.to_bits(), w[1].start_us.to_bits());
        }
        assert_eq!(cp.chain[0].start_us, 0.0);
        assert!((chain_sum(&cp) - s.makespan_us).abs() < 1e-9);
    }

    #[test]
    fn by_stage_and_by_binding_partition_the_chain() {
        let mut sim = Simulator::new(1);
        sim.add(TaskSpec::new(
            "S1A c0",
            Resource::HostCore,
            25.0,
            Phase::Sampling,
        ));
        sim.add(TaskSpec::new(
            "R1 c0",
            Resource::HostCore,
            35.0,
            Phase::Reindex,
        ));
        let s = sim.run();
        let cp = critical_path(sim.tasks(), &s);
        assert!((cp.by_stage.total() - chain_sum(&cp)).abs() < 1e-9);
        let binding_total: f64 = cp.by_binding.iter().map(|(_, us)| us).sum();
        assert!((binding_total - chain_sum(&cp)).abs() < 1e-9);
        assert!((cp.by_stage.get(Stage::SampleAlg) - 25.0).abs() < 1e-9);
        assert!((cp.by_stage.get(Stage::Reindex) - 35.0).abs() < 1e-9);
    }
}
