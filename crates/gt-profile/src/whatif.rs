//! What-if headroom: how much shorter would the schedule be if one stage
//! were free?
//!
//! For every stage present in the task set, rebuild the simulator with that
//! stage's durations zeroed (dependencies, locks and resource assignments
//! intact) and re-run the same deterministic list scheduler. The makespan
//! delta is the stage's *headroom* — the paper's Fig 13 argument ("T is
//! hidden by the pipeline") quantified: a stage that is fully overlapped
//! has (near-)zero headroom even when its busy time is large.

use gt_sim::{Schedule, Simulator, TaskSpec};

use crate::stage::{classify_spec, Stage};

/// Headroom of one stage.
#[derive(Debug, Clone)]
pub struct WhatIf {
    pub stage: Stage,
    /// Summed busy time of the stage's tasks in the baseline run, µs.
    pub busy_us: f64,
    /// Makespan with the stage's durations zeroed, µs.
    pub makespan_zeroed_us: f64,
    /// `baseline makespan - makespan_zeroed_us`, µs. Can exceed `busy_us`
    /// on pathological DAGs (list-scheduling anomalies) but for pipeline
    /// schedules it is the exposed, unoverlapped share of the stage.
    pub headroom_us: f64,
}

/// Compute what-if headroom for every stage in `sim`'s task set.
///
/// The baseline is `sim.run()` (fault-free): what-if answers questions
/// about the *schedule structure*, so injected-fault stretches are not
/// replayed into the hypotheticals.
pub fn what_if_headroom(sim: &Simulator) -> Vec<WhatIf> {
    let baseline = sim.run().makespan_us;
    let mut stages: Vec<Stage> = Vec::new();
    for t in sim.tasks() {
        let s = classify_spec(t);
        if !stages.contains(&s) {
            stages.push(s);
        }
    }
    stages.sort_by_key(|s| Stage::ALL.iter().position(|a| a == s));
    stages
        .into_iter()
        .map(|stage| {
            let busy: f64 = sim
                .tasks()
                .iter()
                .filter(|t| classify_spec(t) == stage)
                .map(|t| t.duration_us)
                .sum();
            let zeroed = run_with_stage_zeroed(sim, stage);
            WhatIf {
                stage,
                busy_us: busy,
                makespan_zeroed_us: zeroed.makespan_us,
                headroom_us: baseline - zeroed.makespan_us,
            }
        })
        .collect()
}

/// Re-run `sim` with every task of `stage` taking zero time.
pub fn run_with_stage_zeroed(sim: &Simulator, stage: Stage) -> Schedule {
    let mut alt = Simulator::new(sim.host_cores());
    for t in sim.tasks() {
        let mut spec = TaskSpec {
            label: t.label.clone(),
            resource: t.resource,
            duration_us: t.duration_us,
            deps: t.deps.clone(),
            lock: t.lock,
            phase: t.phase,
            items: t.items,
        };
        if classify_spec(t) == stage {
            spec.duration_us = 0.0;
        }
        alt.add(spec);
    }
    alt.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::{Phase, Resource};

    #[test]
    fn serialized_tail_stage_has_full_headroom() {
        // S -> R -> T, fully serialized: zeroing T removes exactly T's time.
        let mut sim = Simulator::new(2);
        let s = sim.add(TaskSpec::new(
            "S1",
            Resource::HostCore,
            40.0,
            Phase::Sampling,
        ));
        let r = sim.add(TaskSpec::new("R1", Resource::HostCore, 30.0, Phase::Reindex).after(&[s]));
        sim.add(TaskSpec::new("T", Resource::Pcie, 50.0, Phase::Transfer).after(&[r]));
        let wi = what_if_headroom(&sim);
        let t = wi.iter().find(|w| w.stage == Stage::Transfer).unwrap();
        assert!((t.headroom_us - 50.0).abs() < 1e-9);
        assert!((t.busy_us - 50.0).abs() < 1e-9);
        assert!((t.makespan_zeroed_us - 70.0).abs() < 1e-9);
    }

    #[test]
    fn fully_overlapped_stage_has_zero_headroom() {
        // Transfer runs concurrently with a longer host task: zeroing it
        // changes nothing.
        let mut sim = Simulator::new(1);
        sim.add(TaskSpec::new(
            "S1",
            Resource::HostCore,
            100.0,
            Phase::Sampling,
        ));
        sim.add(TaskSpec::new("T", Resource::Pcie, 60.0, Phase::Transfer));
        let wi = what_if_headroom(&sim);
        let t = wi.iter().find(|w| w.stage == Stage::Transfer).unwrap();
        assert!((t.headroom_us - 0.0).abs() < 1e-9);
        assert!((t.busy_us - 60.0).abs() < 1e-9);
        let s = wi.iter().find(|w| w.stage == Stage::Sample).unwrap();
        // Zeroing S leaves only the 60 µs transfer.
        assert!((s.headroom_us - 40.0).abs() < 1e-9);
    }
}
