//! Fleet health analysis: distill a distributed run's per-worker stage
//! breakdowns and collective timings into one deterministic report.
//!
//! The cluster layer prices every batch as one DES schedule per worker
//! plus a ring collective that waits for the slowest stage; this module
//! answers the operator questions that layer raises:
//!
//! - **Who is busy?** Per-worker busy/idle/link time and utilization.
//! - **Where is the skew?** Per-stage imbalance ratio (max/mean busy time
//!   across workers) — a ratio of 1 is a perfectly balanced stage, large
//!   ratios say which pipeline stage concentrates on few workers.
//! - **Who bound the collectives?** Per-batch straggler attribution: the
//!   worker whose stage time the collective waited on, and the stage that
//!   dominated that worker's schedule.
//! - **Did hedging help?** Launch/win counts and the win rate.
//!
//! Feed batches through a [`FleetObserver`] (one `observe_batch` per
//! priced batch, with the per-worker schedules), then build a
//! [`FleetReport`] with the run's scalar totals ([`FleetTotals`]). Every
//! number is virtual-time-derived, so reports are bit-identical across
//! thread counts; [`render`] is the text form the cluster bench mounts at
//! `/fleetz`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use gt_sim::Schedule;

use crate::breakdown::StageBreakdown;
use crate::stage::Stage;

/// One batch's straggler attribution: which worker (and which of its
/// stages) the collective barrier waited on.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerSample {
    /// Batch index the sample belongs to.
    pub batch: usize,
    /// The worker whose stage time bound the collective (ties broken
    /// toward the lowest worker index).
    pub worker: usize,
    /// The stage dominating that worker's schedule (ties broken by display
    /// order).
    pub stage: Stage,
    /// The straggler's stage makespan, virtual µs.
    pub makespan_us: f64,
}

/// Accumulates per-worker observations batch by batch.
#[derive(Debug, Clone, Default)]
pub struct FleetObserver {
    per_worker: BTreeMap<usize, StageBreakdown>,
    stragglers: Vec<StragglerSample>,
    batches: usize,
}

impl FleetObserver {
    /// An empty observer.
    pub fn new() -> Self {
        FleetObserver::default()
    }

    /// Batches observed so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Fold one priced batch in: `schedules` is the batch's per-worker DES
    /// schedule list (e.g. `ClusterSupervisor::last_schedules`). No-op on
    /// an empty list (untrained batches price no schedules).
    pub fn observe_batch(&mut self, batch: usize, schedules: &[(usize, Schedule)]) {
        if schedules.is_empty() {
            return;
        }
        let mut straggler: Option<(usize, f64, StageBreakdown)> = None;
        for (w, schedule) in schedules {
            let b = StageBreakdown::from_schedule(schedule);
            self.per_worker.entry(*w).or_default().merge(&b);
            let slower = match &straggler {
                Some((_, t, _)) => schedule.makespan_us > *t,
                None => true,
            };
            if slower {
                straggler = Some((*w, schedule.makespan_us, b));
            }
        }
        let (worker, makespan_us, breakdown) = straggler.expect("non-empty schedules");
        self.stragglers.push(StragglerSample {
            batch,
            worker,
            stage: dominant_stage(&breakdown),
            makespan_us,
        });
        self.batches += 1;
    }

    /// Accumulated stage breakdown of `worker` (empty if never scheduled).
    pub fn breakdown(&self, worker: usize) -> StageBreakdown {
        self.per_worker.get(&worker).cloned().unwrap_or_default()
    }

    /// All straggler samples, in batch order.
    pub fn stragglers(&self) -> &[StragglerSample] {
        &self.stragglers
    }
}

/// The stage with the largest busy time (ties broken by display order;
/// [`Stage::Other`] for an empty breakdown).
fn dominant_stage(b: &StageBreakdown) -> Stage {
    let mut best = (Stage::Other, 0.0f64);
    for (stage, us) in b.iter() {
        if us > best.1 {
            best = (stage, us);
        }
    }
    best.0
}

/// Scalar totals of a cluster run, as accumulated by the supervisor's
/// summary. Vectors are indexed by worker (dead workers included).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTotals {
    /// Total virtual time on the cluster clock, µs.
    pub clock_us: f64,
    /// Virtual µs spent in all-gather/all-reduce collectives.
    pub collective_us: f64,
    /// Virtual µs spent detecting failures and replaying partitions.
    pub recovery_virtual_us: f64,
    /// Hedges launched.
    pub hedges_launched: u64,
    /// Hedges whose backup strictly beat the straggler.
    pub hedges_won: u64,
    /// Heartbeat silences that crossed the phi threshold on a live worker.
    pub false_suspicions: u64,
    /// Supervisor rebuild-and-replay recoveries.
    pub recoveries: u64,
    /// Per-worker busy time, µs.
    pub worker_busy_us: Vec<f64>,
    /// Per-worker idle time at the collective barrier, µs.
    pub worker_idle_us: Vec<f64>,
    /// Per-worker link occupancy in collectives, µs.
    pub worker_link_us: Vec<f64>,
}

/// Per-worker health in the distilled report.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerHealth {
    /// Worker index.
    pub worker: usize,
    /// Virtual µs executing subtasks.
    pub busy_us: f64,
    /// Virtual µs idling at the collective barrier.
    pub idle_us: f64,
    /// `busy / (busy + idle)`; 0 for a worker that never executed.
    pub busy_frac: f64,
    /// Fraction of the cluster clock this worker's link spent in
    /// collectives.
    pub link_util: f64,
    /// Accumulated stage breakdown.
    pub breakdown: StageBreakdown,
}

/// The distilled fleet health report. Build with [`FleetReport::build`],
/// render with [`render`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Per-worker health, ascending worker index (dead workers included,
    /// with whatever they accumulated before dying).
    pub workers: Vec<WorkerHealth>,
    /// Batches observed.
    pub batches: usize,
    /// Run totals the report was built from.
    pub totals: FleetTotals,
    /// `won / launched` (0 when nothing launched).
    pub hedge_win_rate: f64,
    /// Per-stage imbalance `max busy / mean busy` across workers that
    /// executed anything, for stages with nonzero mean, in display order.
    pub stage_imbalance: Vec<(Stage, f64)>,
    /// The worst entry of [`stage_imbalance`](FleetReport::stage_imbalance).
    pub worst_imbalance: Option<(Stage, f64)>,
    /// `max busy / mean busy` across executing workers (1.0 when balanced
    /// or fewer than two executed).
    pub busy_imbalance: f64,
    /// Straggler samples, in batch order.
    pub stragglers: Vec<StragglerSample>,
    /// `(worker, stage, batches bound)` sorted by count descending, then
    /// worker, then stage display order.
    pub attribution: Vec<(usize, Stage, usize)>,
}

impl FleetReport {
    /// Distill `observer` + `totals` into the report. The worker set is
    /// the union of scheduled workers and the totals' vectors.
    pub fn build(observer: &FleetObserver, totals: &FleetTotals) -> FleetReport {
        let n = totals
            .worker_busy_us
            .len()
            .max(observer.per_worker.keys().next_back().map_or(0, |w| w + 1));
        let at = |v: &[f64], w: usize| v.get(w).copied().unwrap_or(0.0);
        let workers: Vec<WorkerHealth> = (0..n)
            .map(|w| {
                let busy_us = at(&totals.worker_busy_us, w);
                let idle_us = at(&totals.worker_idle_us, w);
                let link_us = at(&totals.worker_link_us, w);
                WorkerHealth {
                    worker: w,
                    busy_us,
                    idle_us,
                    busy_frac: if busy_us + idle_us > 0.0 {
                        busy_us / (busy_us + idle_us)
                    } else {
                        0.0
                    },
                    link_util: if totals.clock_us > 0.0 {
                        link_us / totals.clock_us
                    } else {
                        0.0
                    },
                    breakdown: observer.breakdown(w),
                }
            })
            .collect();

        // Imbalance ratios over the workers that executed anything: a dead
        // (or never-scheduled) worker contributing zeros would make every
        // stage look skewed.
        let participants: Vec<&WorkerHealth> = workers.iter().filter(|h| h.busy_us > 0.0).collect();
        let mut stage_imbalance = Vec::new();
        if participants.len() >= 2 {
            for stage in Stage::ALL {
                let values: Vec<f64> = participants
                    .iter()
                    .map(|h| h.breakdown.get(stage))
                    .collect();
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                if mean > 0.0 {
                    let max = values.iter().copied().fold(0.0, f64::max);
                    stage_imbalance.push((stage, max / mean));
                }
            }
        }
        let worst_imbalance = stage_imbalance
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let busy_imbalance = if participants.len() >= 2 {
            let mean =
                participants.iter().map(|h| h.busy_us).sum::<f64>() / participants.len() as f64;
            participants.iter().map(|h| h.busy_us).fold(0.0, f64::max) / mean
        } else {
            1.0
        };

        let mut counts: BTreeMap<(usize, Stage), usize> = BTreeMap::new();
        for s in observer.stragglers() {
            *counts.entry((s.worker, s.stage)).or_default() += 1;
        }
        let mut attribution: Vec<(usize, Stage, usize)> = counts
            .into_iter()
            .map(|((w, stage), count)| (w, stage, count))
            .collect();
        attribution.sort_by(|a, b| {
            b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(
                Stage::ALL
                    .iter()
                    .position(|s| *s == a.1)
                    .cmp(&Stage::ALL.iter().position(|s| *s == b.1)),
            )
        });

        FleetReport {
            workers,
            batches: observer.batches(),
            totals: totals.clone(),
            hedge_win_rate: if totals.hedges_launched > 0 {
                totals.hedges_won as f64 / totals.hedges_launched as f64
            } else {
                0.0
            },
            stage_imbalance,
            worst_imbalance,
            busy_imbalance,
            stragglers: observer.stragglers().to_vec(),
            attribution,
        }
    }
}

/// Render the report as the plain-text page served at `/fleetz`. Purely a
/// function of the report: bit-identical across thread counts and worker
/// counts that don't change the modeled run.
pub fn render(r: &FleetReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet health: {} workers, {} batches, clock {:.1} µs",
        r.workers.len(),
        r.batches,
        r.totals.clock_us
    );
    let collective_pct = if r.totals.clock_us > 0.0 {
        100.0 * r.totals.collective_us / r.totals.clock_us
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  collective {:.1} µs ({collective_pct:.1}% of clock), recovery {:.1} µs ({} recoveries), false suspicions {}",
        r.totals.collective_us, r.totals.recovery_virtual_us, r.totals.recoveries, r.totals.false_suspicions
    );
    let _ = writeln!(
        out,
        "  hedges: {} launched, {} won ({:.0}% win rate)",
        r.totals.hedges_launched,
        r.totals.hedges_won,
        100.0 * r.hedge_win_rate
    );

    let _ = writeln!(out, "per-worker utilization:");
    for h in &r.workers {
        let top = if h.breakdown.is_empty() {
            "-".to_string()
        } else {
            let stage = dominant_stage(&h.breakdown);
            let total = h.breakdown.total();
            let pct = if total > 0.0 {
                100.0 * h.breakdown.get(stage) / total
            } else {
                0.0
            };
            format!("{} {pct:.1}%", stage.label())
        };
        let _ = writeln!(
            out,
            "  worker {:<3} busy {:>12.1} µs  idle {:>12.1} µs  busy {:>5.1}%  link {:>5.1}%  top stage {top}",
            h.worker,
            h.busy_us,
            h.idle_us,
            100.0 * h.busy_frac,
            100.0 * h.link_util
        );
    }

    let _ = writeln!(
        out,
        "stage imbalance (max/mean busy across {} executing workers):",
        r.workers.iter().filter(|h| h.busy_us > 0.0).count()
    );
    if r.stage_imbalance.is_empty() {
        let _ = writeln!(out, "  (single worker: imbalance undefined)");
    } else {
        for (stage, ratio) in &r.stage_imbalance {
            let _ = writeln!(out, "  {:<14} {ratio:>7.3}", stage.label());
        }
        if let Some((stage, ratio)) = r.worst_imbalance {
            let _ = writeln!(
                out,
                "  worst: {} at {ratio:.3}; overall busy imbalance {:.3}",
                stage.label(),
                r.busy_imbalance
            );
        }
    }

    let _ = writeln!(
        out,
        "straggler attribution (batches bound by worker+stage):"
    );
    if r.attribution.is_empty() {
        let _ = writeln!(out, "  (no priced batches)");
    } else {
        for (worker, stage, count) in &r.attribution {
            let _ = writeln!(
                out,
                "  worker {worker} / {:<14} {count:>4} batches",
                stage.label()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::{ActiveFaults, FaultKind, Phase, Resource, Simulator, TaskSpec};

    fn schedule(sample_us: f64, transfer_us: f64) -> Schedule {
        let mut sim = Simulator::new(1);
        let s = sim.add(TaskSpec::new(
            "S1 c0",
            Resource::HostCore,
            sample_us,
            Phase::Sampling,
        ));
        sim.add(TaskSpec::new("T(S)", Resource::Pcie, transfer_us, Phase::Transfer).after(&[s]));
        sim.run()
    }

    fn totals_for(busy: &[f64]) -> FleetTotals {
        FleetTotals {
            clock_us: 1000.0,
            collective_us: 100.0,
            worker_busy_us: busy.to_vec(),
            worker_idle_us: vec![0.0; busy.len()],
            worker_link_us: vec![100.0; busy.len()],
            ..FleetTotals::default()
        }
    }

    #[test]
    fn straggler_attribution_names_the_slowest_workers_dominant_stage() {
        let mut obs = FleetObserver::new();
        // Worker 1 is the straggler both batches, bound by its transfer.
        for batch in 0..2 {
            obs.observe_batch(
                batch,
                &[(0, schedule(10.0, 5.0)), (1, schedule(10.0, 200.0))],
            );
        }
        assert_eq!(obs.batches(), 2);
        let report = FleetReport::build(&obs, &totals_for(&[15.0, 210.0]));
        assert_eq!(report.attribution, vec![(1, Stage::Transfer, 2)]);
        assert_eq!(report.stragglers.len(), 2);
        assert_eq!(report.stragglers[0].worker, 1);
        assert_eq!(report.stragglers[0].stage, Stage::Transfer);
    }

    #[test]
    fn stage_imbalance_is_max_over_mean_per_stage() {
        let mut obs = FleetObserver::new();
        obs.observe_batch(0, &[(0, schedule(30.0, 10.0)), (1, schedule(10.0, 10.0))]);
        let report = FleetReport::build(&obs, &totals_for(&[40.0, 20.0]));
        // Sample: max 30 / mean 20 = 1.5; Transfer: max 10 / mean 10 = 1.
        let sample = report
            .stage_imbalance
            .iter()
            .find(|(s, _)| *s == Stage::Sample)
            .expect("sample stage present");
        assert!((sample.1 - 1.5).abs() < 1e-9, "{}", sample.1);
        let transfer = report
            .stage_imbalance
            .iter()
            .find(|(s, _)| *s == Stage::Transfer)
            .expect("transfer stage present");
        assert!((transfer.1 - 1.0).abs() < 1e-9, "{}", transfer.1);
        assert_eq!(report.worst_imbalance.expect("worst").0, Stage::Sample);
        // Busy imbalance: max 40 / mean 30.
        assert!((report.busy_imbalance - 40.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn single_worker_report_has_no_imbalance_and_renders() {
        let mut obs = FleetObserver::new();
        obs.observe_batch(0, &[(0, schedule(10.0, 5.0))]);
        let report = FleetReport::build(&obs, &totals_for(&[15.0]));
        assert!(report.stage_imbalance.is_empty());
        assert!((report.busy_imbalance - 1.0).abs() < 1e-12);
        let text = render(&report);
        assert!(
            text.contains("fleet health: 1 workers, 1 batches"),
            "{text}"
        );
        assert!(text.contains("single worker"), "{text}");
    }

    #[test]
    fn dead_workers_render_but_do_not_skew_imbalance() {
        let mut obs = FleetObserver::new();
        obs.observe_batch(0, &[(0, schedule(10.0, 5.0)), (1, schedule(10.0, 5.0))]);
        // Worker 2 never executed (killed before its first batch).
        let report = FleetReport::build(&obs, &totals_for(&[15.0, 15.0, 0.0]));
        assert_eq!(report.workers.len(), 3);
        assert_eq!(report.workers[2].busy_frac, 0.0);
        for (_, ratio) in &report.stage_imbalance {
            assert!((*ratio - 1.0).abs() < 1e-9, "balanced pair: {ratio}");
        }
        let text = render(&report);
        assert!(text.contains("worker 2"), "{text}");
        assert!(text.contains("across 2 executing workers"), "{text}");
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let mut obs = FleetObserver::new();
        let faults = ActiveFaults {
            faults: vec![FaultKind::StragglerCore {
                core: 0,
                factor: 8.0,
            }],
        };
        let mut sim = Simulator::new(1);
        sim.add(TaskSpec::new(
            "S1 c0",
            Resource::HostCore,
            10.0,
            Phase::Sampling,
        ));
        let slow = sim.run_with_faults(&faults);
        obs.observe_batch(0, &[(0, schedule(10.0, 5.0)), (1, slow)]);
        let mut totals = totals_for(&[15.0, 80.0]);
        totals.hedges_launched = 2;
        totals.hedges_won = 1;
        totals.false_suspicions = 3;
        let report = FleetReport::build(&obs, &totals);
        let a = render(&report);
        let b = render(&FleetReport::build(&obs, &totals));
        assert_eq!(a, b);
        assert!(
            a.contains("hedges: 2 launched, 1 won (50% win rate)"),
            "{a}"
        );
        assert!(a.contains("false suspicions 3"), "{a}");
        assert!(a.contains("straggler attribution"), "{a}");
    }
}
