//! Pipeline stage taxonomy and classification.
//!
//! The paper's performance story is told in stages: the four host-side
//! preprocessing steps S/R/K/T (§V-B), with S split into its algorithm and
//! hash-table halves when the relaxed scheduler runs them separately
//! (Fig 14), and the three NAPA GPU kernels Pull / NeighborApply / MatMul
//! (§IV). Everything the profiler reports is keyed by this enum, so
//! classification from the three data sources — DES task labels, kernel
//! records, live spans — lives here and nowhere else.

use gt_sim::{KernelRecord, Phase, TaskSpec};

/// A pipeline stage the profiler attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Sampling, algorithm half (`S{k}A` chunks under the relaxed scheduler).
    SampleAlg,
    /// Sampling, hash-table half (`S{k}H` chunks: VID dedup inserts).
    SampleHash,
    /// Unsplit sampling tasks (serial / naive-pipelined schedules).
    Sample,
    /// Subgraph reindexing (R).
    Reindex,
    /// Embedding lookup (K).
    Lookup,
    /// Host→device transfer (T).
    Transfer,
    /// Pull kernel (neighbor aggregation).
    Pull,
    /// NeighborApply kernel (edge weighting).
    NeighborApply,
    /// MatMul kernel (combination).
    MatMul,
    /// Everything else (loss, optimizer, format translation, ...).
    Other,
}

impl Stage {
    /// All stages, in display order.
    pub const ALL: [Stage; 10] = [
        Stage::SampleAlg,
        Stage::SampleHash,
        Stage::Sample,
        Stage::Reindex,
        Stage::Lookup,
        Stage::Transfer,
        Stage::Pull,
        Stage::NeighborApply,
        Stage::MatMul,
        Stage::Other,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::SampleAlg => "S-alg",
            Stage::SampleHash => "S-hash",
            Stage::Sample => "S",
            Stage::Reindex => "R",
            Stage::Lookup => "K",
            Stage::Transfer => "T",
            Stage::Pull => "Pull",
            Stage::NeighborApply => "NeighborApply",
            Stage::MatMul => "MatMul",
            Stage::Other => "other",
        }
    }

    /// Parse a display label back into a stage (inverse of [`label`](Self::label)).
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.label() == s)
    }

    /// True for host-side preprocessing stages (the S/R/K/T family).
    pub fn is_preprocessing(&self) -> bool {
        matches!(
            self,
            Stage::SampleAlg
                | Stage::SampleHash
                | Stage::Sample
                | Stage::Reindex
                | Stage::Lookup
                | Stage::Transfer
        )
    }
}

/// Classify a DES task by its phase and label.
///
/// Sampling tasks are split into their algorithm/hash halves when the
/// scheduler labeled them so (`"S2A c3"`, `"S2H c3"`); plain `"S2 c3"` /
/// `"S2"` tasks stay [`Stage::Sample`].
pub fn classify_task(phase: Phase, label: &str) -> Stage {
    match phase {
        Phase::Sampling => {
            let head = label.split_whitespace().next().unwrap_or("");
            if head.starts_with('S') && head.len() > 1 {
                match head.as_bytes()[head.len() - 1] {
                    b'A' => Stage::SampleAlg,
                    b'H' => Stage::SampleHash,
                    _ => Stage::Sample,
                }
            } else {
                Stage::Sample
            }
        }
        Phase::Reindex => Stage::Reindex,
        Phase::Lookup => Stage::Lookup,
        Phase::Transfer => Stage::Transfer,
        Phase::Aggregation => Stage::Pull,
        Phase::EdgeWeighting => Stage::NeighborApply,
        Phase::Combination => Stage::MatMul,
        _ => Stage::Other,
    }
}

/// Classify a scheduled task spec (convenience over [`classify_task`]).
pub fn classify_spec(spec: &TaskSpec) -> Stage {
    classify_task(spec.phase, &spec.label)
}

/// Classify a recorded kernel execution by phase only (kernel records carry
/// no scheduler labels, so sampling never splits here).
pub fn classify_kernel(rec: &KernelRecord) -> Stage {
    classify_task(rec.phase, "")
}

/// Classify a live telemetry span by name. Recognizes the spans
/// `gt_core::prepro` emits on its "prepro" track (`"S (sample)"`,
/// `"R (reindex)"`, `"K (lookup)"`) plus a `"T"`-prefixed transfer form.
pub fn classify_span(name: &str) -> Option<Stage> {
    let head = name.split_whitespace().next().unwrap_or("");
    match head {
        "S" => Some(Stage::Sample),
        "R" => Some(Stage::Reindex),
        "K" => Some(Stage::Lookup),
        "T" => Some(Stage::Transfer),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_sampling_labels_split_into_halves() {
        assert_eq!(classify_task(Phase::Sampling, "S1A c0"), Stage::SampleAlg);
        assert_eq!(classify_task(Phase::Sampling, "S2H c11"), Stage::SampleHash);
        assert_eq!(classify_task(Phase::Sampling, "S1 c0"), Stage::Sample);
        assert_eq!(classify_task(Phase::Sampling, "S2"), Stage::Sample);
        assert_eq!(classify_task(Phase::Sampling, "S"), Stage::Sample);
    }

    #[test]
    fn host_and_gpu_phases_map_to_their_stages() {
        assert_eq!(classify_task(Phase::Reindex, "R1 c0"), Stage::Reindex);
        assert_eq!(classify_task(Phase::Lookup, "K c3"), Stage::Lookup);
        assert_eq!(classify_task(Phase::Transfer, "T(K2)"), Stage::Transfer);
        assert_eq!(classify_task(Phase::Aggregation, "pull"), Stage::Pull);
        assert_eq!(
            classify_task(Phase::EdgeWeighting, "na"),
            Stage::NeighborApply
        );
        assert_eq!(classify_task(Phase::Combination, "mm"), Stage::MatMul);
        assert_eq!(classify_task(Phase::Loss, "loss"), Stage::Other);
    }

    #[test]
    fn span_names_classify() {
        assert_eq!(classify_span("S (sample)"), Some(Stage::Sample));
        assert_eq!(classify_span("R (reindex)"), Some(Stage::Reindex));
        assert_eq!(classify_span("K (lookup)"), Some(Stage::Lookup));
        assert_eq!(classify_span("T (transfer)"), Some(Stage::Transfer));
        assert_eq!(classify_span("train_batch"), None);
    }

    #[test]
    fn labels_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::parse(s.label()), Some(s));
        }
    }
}
