//! gt-profile: the analysis layer that turns recorded data into answers.
//!
//! gt-telemetry records *what happened* (spans, counters, DES schedules);
//! this crate computes *why it took that long* — the machine-checkable form
//! of the paper's Fig 13/14 analysis:
//!
//! - [`StageBreakdown`]: busy time per pipeline stage (S-alg/S-hash, R, K,
//!   T, Pull/NeighborApply/MatMul), built from a DES [`gt_sim::Schedule`],
//!   recorded kernels, or a live span tree.
//! - [`BubbleReport`]: per-resource idle ("bubble") percentages — the
//!   whitespace the service-wide tensor scheduler exists to eliminate.
//! - [`CriticalPath`]: the binding-constraint chain through the subtask DAG
//!   (which stage, on which resource, bound the makespan and why — data
//!   dependency, resource contention, or hash-table lock), plus the
//!   dependency-only lower bound. The chain's durations sum exactly to the
//!   makespan; `dag_path ≤ makespan ≤ total busy` is property-tested.
//! - [`WhatIf`]: headroom per stage — the makespan delta when a stage's
//!   durations are zeroed and the same deterministic list scheduler re-runs.
//! - [`FleetReport`]: fleet health for distributed runs — per-worker
//!   busy/idle/link utilization, stage-level imbalance ratios, per-batch
//!   straggler attribution, hedge effectiveness (the text page the cluster
//!   bench serves at `/fleetz`).
//! - [`report::render`]: a text report; [`trace::profile_to_trace`] /
//!   [`trace::append_profile_tracks`]: extra Perfetto tracks (critical
//!   path, bubbles, what-if markers) that compose with
//!   `gt_sim::schedule_to_trace` output.
//!
//! Everything is deterministic and zero-external-dependency, like the rest
//! of the workspace. See `docs/profiling.md`.

pub mod breakdown;
pub mod bubble;
pub mod critical;
pub mod fleet;
pub mod profile;
pub mod report;
pub mod stage;
pub mod trace;
pub mod whatif;

pub use breakdown::StageBreakdown;
pub use bubble::{BubbleReport, UnitUtilization};
pub use critical::{critical_path, Binding, ChainLink, CriticalPath};
pub use fleet::{FleetObserver, FleetReport, FleetTotals, StragglerSample, WorkerHealth};
pub use profile::{profile_schedule, ScheduleProfile};
pub use stage::{classify_kernel, classify_span, classify_spec, classify_task, Stage};
pub use trace::{append_profile_tracks, profile_to_trace};
pub use whatif::{run_with_stage_zeroed, what_if_headroom, WhatIf};
