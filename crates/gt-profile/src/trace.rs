//! Profiler results → extra Perfetto tracks.
//!
//! `gt_sim::schedule_to_trace` already draws one track per resource unit;
//! this module adds the *analysis* on top as additional tracks in the same
//! process: the binding-constraint critical path as a contiguous row of
//! slices, per-unit idle gaps as explicit "bubble" slices, and what-if
//! headroom as instant markers. Appending them to a schedule's trace makes
//! the Fig 13/14 story visible in one Perfetto view.

use gt_telemetry::{Json, Trace};

use crate::profile::ScheduleProfile;

/// Track name for the critical-path row.
pub const CRITICAL_TRACK: &str = "critical path";
/// Track-name prefix for per-unit bubble rows.
pub const BUBBLE_TRACK_PREFIX: &str = "bubbles: ";
/// Track name for what-if instant markers.
pub const WHAT_IF_TRACK: &str = "what-if";

/// Render `profile` as extra tracks on a fresh trace named `process`.
/// Timestamps are the schedule's virtual microseconds, so the trace lines
/// up with `schedule_to_trace(&schedule, process)` output; callers usually
/// append these events to that trace before export.
pub fn profile_to_trace(profile: &ScheduleProfile, process: &str) -> Trace {
    let mut trace = Trace::new(process);
    append_profile_tracks(profile, &mut trace);
    trace
}

/// Append the profiler tracks to an existing trace (e.g. one produced by
/// `gt_sim::schedule_to_trace`).
pub fn append_profile_tracks(profile: &ScheduleProfile, trace: &mut Trace) {
    for link in &profile.critical.chain {
        trace.duration(
            CRITICAL_TRACK,
            link.label.clone(),
            "profile",
            link.start_us,
            link.end_us - link.start_us,
            vec![
                ("task".to_string(), Json::from(link.task)),
                ("stage".to_string(), Json::from(link.stage.label())),
                ("binding".to_string(), Json::from(link.binding.label())),
            ],
        );
    }
    for unit in &profile.bubbles.units {
        for &(start, end) in &unit.gaps {
            trace.duration(
                format!("{BUBBLE_TRACK_PREFIX}{}", unit.track),
                "idle",
                "profile",
                start,
                end - start,
                vec![("unit".to_string(), Json::from(unit.track.as_str()))],
            );
        }
    }
    for w in &profile.what_if {
        trace.instant(
            WHAT_IF_TRACK,
            format!("{} free", w.stage.label()),
            "profile",
            0.0,
            vec![
                ("stage".to_string(), Json::from(w.stage.label())),
                ("headroom_us".to_string(), Json::from(w.headroom_us)),
                (
                    "makespan_zeroed_us".to_string(),
                    Json::from(w.makespan_zeroed_us),
                ),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_schedule;
    use gt_sim::{schedule_to_trace, Phase, Resource, Simulator, TaskSpec};
    use gt_telemetry::{from_chrome_json, write_chrome_json};

    fn profile() -> ScheduleProfile {
        let mut sim = Simulator::new(2);
        let s = sim.add(TaskSpec::new(
            "S1A c0",
            Resource::HostCore,
            40.0,
            Phase::Sampling,
        ));
        let r =
            sim.add(TaskSpec::new("R1 c0", Resource::HostCore, 30.0, Phase::Reindex).after(&[s]));
        sim.add(TaskSpec::new("T(R)", Resource::Pcie, 20.0, Phase::Transfer).after(&[r]));
        let schedule = sim.run();
        profile_schedule(&sim, &schedule)
    }

    #[test]
    fn critical_track_covers_the_whole_makespan() {
        let p = profile();
        let t = profile_to_trace(&p, "virtual time");
        let cp: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.track == CRITICAL_TRACK)
            .collect();
        assert_eq!(cp.len(), p.critical.chain.len());
        let sum: f64 = cp.iter().map(|e| e.dur_us.unwrap()).sum();
        assert!((sum - p.makespan_us).abs() < 1e-9);
    }

    #[test]
    fn bubble_slices_match_idle_time() {
        let p = profile();
        let t = profile_to_trace(&p, "virtual time");
        for unit in &p.bubbles.units {
            let track = format!("{BUBBLE_TRACK_PREFIX}{}", unit.track);
            let idle: f64 = t
                .events
                .iter()
                .filter(|e| e.track == track)
                .map(|e| e.dur_us.unwrap())
                .sum();
            assert!(
                (idle - unit.idle_us).abs() < 1e-9,
                "{track}: {idle} vs {}",
                unit.idle_us
            );
        }
    }

    #[test]
    fn profiler_tracks_round_trip_bit_exactly() {
        let mut sim = Simulator::new(2);
        let s = sim.add(TaskSpec::new(
            "S1A c0",
            Resource::HostCore,
            40.0,
            Phase::Sampling,
        ));
        sim.add(TaskSpec::new("T(R)", Resource::Pcie, 25.0, Phase::Transfer).after(&[s]));
        let schedule = sim.run();
        let p = profile_schedule(&sim, &schedule);
        // The combined view: schedule tracks + profiler tracks in one process.
        let mut combined = schedule_to_trace(&schedule, "virtual time");
        append_profile_tracks(&p, &mut combined);
        let text = write_chrome_json(&[&combined]);
        let back = from_chrome_json(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], combined);
        for track in [CRITICAL_TRACK, WHAT_IF_TRACK] {
            assert!(back[0].tracks().contains(&track), "missing {track}");
        }
    }
}
