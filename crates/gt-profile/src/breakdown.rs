//! Per-stage busy-time breakdown — the machine-checkable form of the
//! paper's Fig 13/16 bars.

use gt_sim::{KernelRecord, Schedule};
use gt_telemetry::SpanRecord;

use crate::stage::{classify_kernel, classify_span, classify_task, Stage};

/// Busy microseconds attributed to each [`Stage`], in display order.
///
/// A breakdown is a pure accumulator: it can be built from a DES
/// [`Schedule`] (virtual time), from recorded kernels (modeled GPU time),
/// or from a live span tree (wall time), and breakdowns from different
/// sources can be [`merge`](StageBreakdown::merge)d into one report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBreakdown {
    entries: Vec<(Stage, f64)>,
}

impl StageBreakdown {
    /// Empty breakdown.
    pub fn new() -> Self {
        StageBreakdown::default()
    }

    /// Attribute `us` microseconds to `stage`.
    pub fn add(&mut self, stage: Stage, us: f64) {
        match self.entries.iter_mut().find(|(s, _)| *s == stage) {
            Some((_, acc)) => *acc += us,
            None => {
                self.entries.push((stage, us));
                self.entries
                    .sort_by_key(|(s, _)| Stage::ALL.iter().position(|a| a == s));
            }
        }
    }

    /// Busy time attributed to `stage` (0 if absent).
    pub fn get(&self, stage: Stage) -> f64 {
        self.entries
            .iter()
            .find(|(s, _)| *s == stage)
            .map_or(0.0, |(_, us)| *us)
    }

    /// Total busy time across all stages.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, us)| us).sum()
    }

    /// `(stage, busy µs)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// True when nothing has been attributed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fold another breakdown into this one.
    pub fn merge(&mut self, other: &StageBreakdown) {
        for (stage, us) in other.iter() {
            self.add(stage, us);
        }
    }

    /// Attribute every scheduled event's busy time by task label/phase.
    /// The total equals the schedule's summed busy time exactly.
    pub fn from_schedule(schedule: &Schedule) -> Self {
        let mut b = StageBreakdown::new();
        for e in &schedule.events {
            b.add(classify_task(e.phase, &e.label), e.end_us - e.start_us);
        }
        b
    }

    /// Attribute recorded kernel executions by phase (modeled µs).
    pub fn from_kernels(records: &[KernelRecord]) -> Self {
        let mut b = StageBreakdown::new();
        for r in records {
            b.add(classify_kernel(r), r.modeled_us);
        }
        b
    }

    /// Attribute live spans whose names classify as a preprocessing stage
    /// (the `"prepro"`-track spans); unrecognized spans are skipped so
    /// wrapper spans like `train_batch` don't double-count their children.
    pub fn from_spans(spans: &[SpanRecord]) -> Self {
        let mut b = StageBreakdown::new();
        for s in spans {
            if let Some(stage) = classify_span(&s.name) {
                b.add(stage, s.dur_us);
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::{Phase, Resource, Simulator, TaskSpec};

    #[test]
    fn schedule_breakdown_sums_to_busy_time() {
        let mut sim = Simulator::new(2);
        let s = sim.add(TaskSpec::new(
            "S1A c0",
            Resource::HostCore,
            40.0,
            Phase::Sampling,
        ));
        let h = sim.add(
            TaskSpec::new("S1H c0", Resource::HostCore, 10.0, Phase::Sampling)
                .after(&[s])
                .locked(1),
        );
        let r =
            sim.add(TaskSpec::new("R1 c0", Resource::HostCore, 30.0, Phase::Reindex).after(&[h]));
        sim.add(TaskSpec::new("T(R)", Resource::Pcie, 25.0, Phase::Transfer).after(&[r]));
        let schedule = sim.run();
        let b = StageBreakdown::from_schedule(&schedule);
        assert!((b.get(Stage::SampleAlg) - 40.0).abs() < 1e-9);
        assert!((b.get(Stage::SampleHash) - 10.0).abs() < 1e-9);
        assert!((b.get(Stage::Reindex) - 30.0).abs() < 1e-9);
        assert!((b.get(Stage::Transfer) - 25.0).abs() < 1e-9);
        let busy: f64 = schedule.events.iter().map(|e| e.end_us - e.start_us).sum();
        assert!((b.total() - busy).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates_and_orders_by_display_order() {
        let mut a = StageBreakdown::new();
        a.add(Stage::Transfer, 5.0);
        let mut b = StageBreakdown::new();
        b.add(Stage::SampleAlg, 1.0);
        b.add(Stage::Transfer, 2.0);
        a.merge(&b);
        assert!((a.get(Stage::Transfer) - 7.0).abs() < 1e-12);
        let order: Vec<Stage> = a.iter().map(|(s, _)| s).collect();
        assert_eq!(order, vec![Stage::SampleAlg, Stage::Transfer]);
    }

    #[test]
    fn span_breakdown_skips_wrapper_spans() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "train_batch".into(),
                track: "train".into(),
                start_us: 0.0,
                dur_us: 100.0,
                args: vec![],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "S (sample)".into(),
                track: "prepro".into(),
                start_us: 0.0,
                dur_us: 40.0,
                args: vec![],
            },
            SpanRecord {
                id: 3,
                parent: Some(1),
                name: "K (lookup)".into(),
                track: "prepro".into(),
                start_us: 40.0,
                dur_us: 20.0,
                args: vec![],
            },
        ];
        let b = StageBreakdown::from_spans(&spans);
        assert!((b.total() - 60.0).abs() < 1e-12);
        assert!((b.get(Stage::Sample) - 40.0).abs() < 1e-12);
    }
}
