//! Text and JSON rendering of a [`ScheduleProfile`].

use std::fmt::Write as _;

use gt_telemetry::{json::obj, Json, ToJson};

use crate::profile::ScheduleProfile;

/// Render a human-readable profile report (the text form of Fig 13/14's
/// analysis).
pub fn render(p: &ScheduleProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule profile: makespan {:.1} µs, busy {:.1} µs over {} units, idle {:.1}%",
        p.makespan_us,
        p.total_busy_us,
        p.bubbles.units.len(),
        p.bubbles.idle_pct()
    );

    let _ = writeln!(out, "stage breakdown (busy µs):");
    for (stage, us) in p.breakdown.iter() {
        let pct = if p.total_busy_us > 0.0 {
            100.0 * us / p.total_busy_us
        } else {
            0.0
        };
        let _ = writeln!(out, "  {:<14} {:>12.1}  {:>5.1}%", stage.label(), us, pct);
    }

    let _ = writeln!(out, "per-unit utilization:");
    for u in &p.bubbles.units {
        let _ = writeln!(
            out,
            "  {:<12} busy {:>12.1} µs  idle {:>5.1}%  ({} gaps)",
            u.track,
            u.busy_us,
            u.idle_pct(p.makespan_us),
            u.gaps.len()
        );
    }

    let _ = writeln!(
        out,
        "critical path: {} links, dag path {:.1} µs ({:.1}% of makespan)",
        p.critical.chain.len(),
        p.critical.dag_path_us,
        if p.makespan_us > 0.0 {
            100.0 * p.critical.dag_path_us / p.makespan_us
        } else {
            0.0
        }
    );
    for (binding, us) in &p.critical.by_binding {
        let _ = writeln!(
            out,
            "  bound by {:<9} {:>12.1} µs  {:>5.1}%",
            binding.label(),
            us,
            if p.makespan_us > 0.0 {
                100.0 * us / p.makespan_us
            } else {
                0.0
            }
        );
    }
    let _ = writeln!(out, "  time on path by stage:");
    for (stage, us) in p.critical.by_stage.iter() {
        let _ = writeln!(out, "    {:<14} {:>12.1} µs", stage.label(), us);
    }

    let _ = writeln!(out, "what-if headroom (makespan delta if stage were free):");
    for w in &p.what_if {
        let _ = writeln!(
            out,
            "  {:<14} busy {:>12.1} µs  headroom {:>12.1} µs ({:>5.1}% of makespan)",
            w.stage.label(),
            w.busy_us,
            w.headroom_us,
            if p.makespan_us > 0.0 {
                100.0 * w.headroom_us / p.makespan_us
            } else {
                0.0
            }
        );
    }
    out
}

impl ToJson for ScheduleProfile {
    fn to_json(&self) -> Json {
        let stages = Json::Obj(
            self.breakdown
                .iter()
                .map(|(s, us)| (s.label().to_string(), Json::from(us)))
                .collect(),
        );
        let what_if = Json::Obj(
            self.what_if
                .iter()
                .map(|w| (w.stage.label().to_string(), Json::from(w.headroom_us)))
                .collect(),
        );
        let by_binding = Json::Obj(
            self.critical
                .by_binding
                .iter()
                .map(|(b, us)| (b.label().to_string(), Json::from(*us)))
                .collect(),
        );
        obj([
            ("makespan_us", Json::from(self.makespan_us)),
            ("total_busy_us", Json::from(self.total_busy_us)),
            ("idle_pct", Json::from(self.bubbles.idle_pct())),
            ("stage_breakdown_us", stages),
            ("critical_path_links", Json::from(self.critical.chain.len())),
            (
                "dag_critical_path_us",
                Json::from(self.critical.dag_path_us),
            ),
            ("critical_by_binding_us", by_binding),
            ("what_if_headroom_us", what_if),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_schedule;
    use gt_sim::{Phase, Resource, Simulator, TaskSpec};

    fn sample_profile() -> ScheduleProfile {
        let mut sim = Simulator::new(2);
        let s = sim.add(TaskSpec::new(
            "S1A c0",
            Resource::HostCore,
            40.0,
            Phase::Sampling,
        ));
        let r =
            sim.add(TaskSpec::new("R1 c0", Resource::HostCore, 30.0, Phase::Reindex).after(&[s]));
        sim.add(TaskSpec::new("T(R)", Resource::Pcie, 20.0, Phase::Transfer).after(&[r]));
        let schedule = sim.run();
        profile_schedule(&sim, &schedule)
    }

    #[test]
    fn report_mentions_every_section() {
        let text = render(&sample_profile());
        for needle in [
            "schedule profile:",
            "stage breakdown",
            "per-unit utilization",
            "critical path:",
            "what-if headroom",
            "S-alg",
            "host core 0",
            "PCIe",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn json_form_carries_the_headline_numbers() {
        let p = sample_profile();
        let j = p.to_json();
        assert_eq!(
            j.get("makespan_us").unwrap().as_f64().unwrap().to_bits(),
            p.makespan_us.to_bits()
        );
        assert!(j.get("stage_breakdown_us").unwrap().get("S-alg").is_some());
        assert!(j.get("what_if_headroom_us").unwrap().get("T").is_some());
        // Round-trips through the hand-rolled serializer.
        let text = j.to_json_string();
        let back = gt_telemetry::json::parse(&text).unwrap();
        assert_eq!(back, j);
    }
}
