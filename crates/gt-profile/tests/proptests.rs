//! Profiler invariants over randomized DES task DAGs.
//!
//! The load-bearing claims:
//! - the binding-constraint chain is contiguous and sums exactly to the
//!   makespan (it *is* the explanation of the schedule length);
//! - `dag critical path ≤ makespan ≤ sum of stage times` — the list
//!   scheduler is work-conserving, so the makespan is sandwiched between
//!   the infinite-parallelism bound and full serialization;
//! - the stage breakdown partitions total busy time;
//! - the profiler's Perfetto tracks survive a Chrome-trace round-trip
//!   bit-exactly.

use gt_profile::{profile_schedule, Stage};
use gt_sim::{Phase, Resource, Simulator, TaskSpec};
use proptest::prelude::*;

type RawTask = (f64, Vec<prop::sample::Index>, Option<u32>, u8, u8);
/// `(duration_us, deps, lock_group, resource, phase)` after index fixup.
type Task = (f64, Vec<usize>, Option<u32>, u8, u8);

/// A random mixed-resource DAG: each task may depend on earlier tasks, may
/// join one of two lock groups, and lands on a random resource/phase.
fn dag() -> impl Strategy<Value = Vec<Task>> {
    prop::collection::vec(
        (
            0.0f64..200.0,
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
            prop::option::of(0u32..2),
            0u8..3,  // resource
            0u8..12, // phase
        ),
        1..40,
    )
    .prop_map(|raw: Vec<RawTask>| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (dur, deps, lock, resource, phase))| {
                let deps: Vec<usize> = if i == 0 {
                    Vec::new()
                } else {
                    let mut d: Vec<usize> = deps.iter().map(|ix| ix.index(i)).collect();
                    d.sort_unstable();
                    d.dedup();
                    d
                };
                (dur, deps, lock, resource, phase)
            })
            .collect()
    })
}

fn build_sim(cores: usize, tasks: &[Task]) -> Simulator {
    let phases = [
        Phase::Sampling,
        Phase::Reindex,
        Phase::Lookup,
        Phase::Transfer,
        Phase::Aggregation,
        Phase::EdgeWeighting,
        Phase::Combination,
        Phase::Loss,
        Phase::Optimizer,
        Phase::Sparse2Dense,
        Phase::FormatTranslation,
        Phase::Other,
    ];
    let mut sim = Simulator::new(cores);
    let mut ids = Vec::new();
    for (i, (dur, deps, lock, resource, phase)) in tasks.iter().enumerate() {
        let resource = match resource {
            0 => Resource::HostCore,
            1 => Resource::Pcie,
            _ => Resource::Gpu,
        };
        let dep_ids: Vec<usize> = deps.iter().map(|&d| ids[d]).collect();
        let mut spec = TaskSpec::new(
            format!("t{i}"),
            resource,
            *dur,
            phases[(*phase as usize) % phases.len()],
        )
        .after(&dep_ids);
        if let Some(g) = lock {
            spec = spec.locked(*g);
        }
        ids.push(sim.add(spec));
    }
    sim
}

proptest! {
    #[test]
    fn critical_path_le_makespan_le_sum_of_stage_times(
        cores in 1usize..5,
        tasks in dag(),
    ) {
        let sim = build_sim(cores, &tasks);
        let schedule = sim.run();
        let p = profile_schedule(&sim, &schedule);

        // dag critical path ≤ makespan ≤ sum of stage (busy) times.
        prop_assert!(p.critical.dag_path_us <= p.makespan_us + 1e-6,
            "dag {} > makespan {}", p.critical.dag_path_us, p.makespan_us);
        prop_assert!(p.makespan_us <= p.breakdown.total() + 1e-6,
            "makespan {} > busy {}", p.makespan_us, p.breakdown.total());

        // The binding chain is contiguous and sums exactly to the makespan.
        let chain_sum: f64 = p.critical.chain.iter().map(|l| l.end_us - l.start_us).sum();
        prop_assert!((chain_sum - p.makespan_us).abs() < 1e-6,
            "chain {} vs makespan {}", chain_sum, p.makespan_us);
        for w in p.critical.chain.windows(2) {
            prop_assert_eq!(w[0].end_us.to_bits(), w[1].start_us.to_bits());
        }
        if let Some(first) = p.critical.chain.first() {
            prop_assert_eq!(first.start_us, 0.0);
        }

        // Stage breakdown partitions total busy time.
        let busy: f64 = schedule.events.iter().map(|e| e.end_us - e.start_us).sum();
        prop_assert!((p.breakdown.total() - busy).abs() < 1e-6);

        // Bubble accounting: busy + idle = makespan, per unit; gaps cover
        // exactly the idle time.
        for u in &p.bubbles.units {
            prop_assert!((u.busy_us + u.idle_us - p.makespan_us).abs() < 1e-6,
                "{}: busy {} + idle {} != makespan {}", u.track, u.busy_us, u.idle_us, p.makespan_us);
            let gap_sum: f64 = u.gaps.iter().map(|(a, b)| b - a).sum();
            prop_assert!((gap_sum - u.idle_us).abs() < 1e-6);
        }
    }

    #[test]
    fn what_if_headroom_is_sane(cores in 1usize..4, tasks in dag()) {
        let sim = build_sim(cores, &tasks);
        let p = profile_schedule(&sim, &sim.run());
        for w in &p.what_if {
            // The hypothetical schedule exists and stays within the
            // work-conserving bound of the original task set.
            prop_assert!(w.makespan_zeroed_us.is_finite());
            prop_assert!(w.makespan_zeroed_us >= 0.0);
            prop_assert!(w.makespan_zeroed_us <= p.breakdown.total() + 1e-6);
            // A stage with no busy time has no headroom.
            if w.busy_us == 0.0 {
                prop_assert!(w.headroom_us.abs() < 1e-6);
            }
        }
    }

    #[test]
    fn profiler_tracks_round_trip_bit_exactly(cores in 1usize..4, tasks in dag()) {
        let sim = build_sim(cores, &tasks);
        let schedule = sim.run();
        let p = profile_schedule(&sim, &schedule);
        let mut combined = gt_sim::schedule_to_trace(&schedule, "virtual time");
        gt_profile::append_profile_tracks(&p, &mut combined);
        let text = gt_telemetry::write_chrome_json(&[&combined]);
        let back = gt_telemetry::from_chrome_json(&text).unwrap();
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(&back[0], &combined);
    }
}

#[test]
fn sampling_split_attributes_to_both_halves() {
    let mut sim = Simulator::new(2);
    let a = sim.add(TaskSpec::new(
        "S1A c0",
        Resource::HostCore,
        30.0,
        Phase::Sampling,
    ));
    sim.add(
        TaskSpec::new("S1H c0", Resource::HostCore, 10.0, Phase::Sampling)
            .after(&[a])
            .locked(1),
    );
    let p = profile_schedule(&sim, &sim.run());
    assert!(p.breakdown.get(Stage::SampleAlg) > 0.0);
    assert!(p.breakdown.get(Stage::SampleHash) > 0.0);
    assert_eq!(p.breakdown.get(Stage::Sample), 0.0);
}
