//! GNN preprocessing substrate (§II-B): neighbor sampling, the sampled-VID
//! hash table, graph reindexing, embedding lookup, and minibatching.
//!
//! Preprocessing dominates end-to-end GNN latency (84.2% on average, §I), so
//! the paper splits it into per-layer, per-datatype subtasks — **S**ampling,
//! **R**eindexing, loo**K**up, **T**ransfer — that its service-wide tensor
//! scheduler overlaps. This crate implements the real work of S, R, and K
//! (T is a transfer priced by `gt_sim`), each reporting the work counts the
//! scheduler's cost model converts into virtual durations.
//!
//! S, R, and K execute on the deterministic `gt_par` thread pool — S split
//! into its algorithm and hash-update phases (A + H, Fig 14c) so the
//! parallel part never touches the hash table. Output is bit-identical at
//! any `GT_THREADS`; see docs/parallelism.md.

pub mod batch;
pub mod error;
pub mod hashtable;
pub mod idhash;
pub mod lookup;
pub mod reindex;
pub mod sampler;

pub use batch::BatchIter;
pub use error::SampleError;
pub use hashtable::VidMap;
pub use idhash::{BuildIdHasher, IdHashMap, IdHashSet};
pub use lookup::{lookup_all, lookup_all_with_pool, lookup_chunk, LookupPlan};
pub use reindex::{reindex_layer, try_reindex_layer, try_reindex_layer_with_pool, LayerGraph};
pub use sampler::{
    sample_batch, try_sample_batch, try_sample_batch_with_pool, validate_batch, Priority,
    SampleOutput, SamplerConfig,
};
