//! GNN preprocessing substrate (§II-B): neighbor sampling, the sampled-VID
//! hash table, graph reindexing, embedding lookup, and minibatching.
//!
//! Preprocessing dominates end-to-end GNN latency (84.2% on average, §I), so
//! the paper splits it into per-layer, per-datatype subtasks — **S**ampling,
//! **R**eindexing, loo**K**up, **T**ransfer — that its service-wide tensor
//! scheduler overlaps. This crate implements the real work of S, R, and K
//! (T is a transfer priced by `gt_sim`), each reporting the work counts the
//! scheduler's cost model converts into virtual durations.

pub mod batch;
pub mod error;
pub mod hashtable;
pub mod lookup;
pub mod reindex;
pub mod sampler;

pub use batch::BatchIter;
pub use error::SampleError;
pub use hashtable::VidMap;
pub use lookup::{lookup_all, lookup_chunk, LookupPlan};
pub use reindex::{reindex_layer, try_reindex_layer, LayerGraph};
pub use sampler::{
    sample_batch, try_sample_batch, validate_batch, Priority, SampleOutput, SamplerConfig,
};
