//! A multiplicative hasher for vertex-id keys.
//!
//! The hash table is on preprocessing's critical path — S's H phase inserts
//! and R looks up once per sampled edge endpoint — and std's default SipHash
//! costs more than the table probe it feeds. Vertex ids are small integers
//! with no adversarial source, so a Fibonacci multiply plus an xor-shift
//! (the same mixer the sampler's per-node RNG streams use) is collision-
//! adequate and several times cheaper. Hash-map *iteration order* is never
//! observed anywhere in the pipeline, so swapping hashers cannot affect
//! results — new-VID allocation order comes from the insertion log, not
//! from bucket order.

use std::hash::{BuildHasher, Hasher};

/// `BuildHasher` for [`IdHasher`]; stateless, so every map built from it
/// hashes identically across processes and runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct BuildIdHasher;

impl BuildHasher for BuildIdHasher {
    type Hasher = IdHasher;

    fn build_hasher(&self) -> IdHasher {
        IdHasher(0)
    }
}

/// Multiplicative mixer over the written words.
#[derive(Debug)]
pub struct IdHasher(u64);

impl IdHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        let mut z = self.0 ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 29;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 32;
        self.0 = z;
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `HashMap` keyed by vertex ids.
pub type IdHashMap<K, V> = std::collections::HashMap<K, V, BuildIdHasher>;
/// `HashSet` of vertex ids.
pub type IdHashSet<K> = std::collections::HashSet<K, BuildIdHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: IdHashMap<u32, u32> = IdHashMap::default();
        let mut s: IdHashSet<u32> = IdHashSet::default();
        for v in 0..10_000u32 {
            m.insert(v, v * 2);
            assert!(s.insert(v.wrapping_mul(2_654_435_761)));
        }
        for v in 0..10_000u32 {
            assert_eq!(m.get(&v), Some(&(v * 2)));
            assert!(s.contains(&v.wrapping_mul(2_654_435_761)));
        }
        assert_eq!(m.get(&10_001), None);
    }

    #[test]
    fn low_bits_are_well_mixed() {
        // Hash-map buckets come from the low bits; sequential keys must not
        // collapse onto a few residues.
        let b = BuildIdHasher;
        let mut buckets = [0u32; 64];
        for v in 0..6_400u32 {
            let mut h = b.build_hasher();
            h.write_u32(v);
            buckets[(h.finish() & 63) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        assert!(min > 50 && max < 150, "skewed buckets: min={min} max={max}");
    }
}
