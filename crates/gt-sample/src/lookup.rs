//! Embedding lookup (K) — §II-B, Fig 4b.
//!
//! Scans the global embedding table with the sampled nodes' original ids and
//! builds the compact per-batch table (row `new_vid` = global row
//! `new_to_orig[new_vid]`). [`LookupPlan`] splits the gather into chunks so
//! the optimized scheduler can pipeline each chunk's transfer as soon as it
//! is gathered (Fig 14b: "immediately transfers each sampled embedding
//! whenever it is ready on a buffer").

use gt_graph::{EmbeddingTable, VId};
use gt_par::ThreadPool;

/// Rows per chunk for the parallel gather. Fixed so chunk geometry is
/// independent of the worker count.
const K_CHUNK_ROWS: usize = 512;

/// Gather all sampled rows at once (the serialized baselines' K stage).
/// Runs on the process-wide pool (`GT_THREADS`).
pub fn lookup_all(global: &EmbeddingTable, new_to_orig: &[VId]) -> EmbeddingTable {
    lookup_all_with_pool(global, new_to_orig, ThreadPool::global())
}

/// [`lookup_all`] on an explicit pool. Each worker gathers disjoint row
/// ranges straight into the output buffer; every output row has exactly one
/// writer, so the result is bitwise-identical at any worker count.
pub fn lookup_all_with_pool(
    global: &EmbeddingTable,
    new_to_orig: &[VId],
    pool: &ThreadPool,
) -> EmbeddingTable {
    let dim = global.dim();
    let rows = new_to_orig.len();
    let mut data = vec![0.0f32; rows * dim];
    if dim > 0 {
        pool.for_each_chunk_mut(
            "lookup.gather",
            &mut data,
            K_CHUNK_ROWS * dim,
            |i, chunk| {
                let row_lo = i * K_CHUNK_ROWS;
                let ids = &new_to_orig[row_lo..row_lo + chunk.len() / dim];
                global.gather_into(ids, chunk);
            },
        );
    }
    EmbeddingTable::from_vec(rows, dim, data)
}

/// Chunking plan for the pipelined K→T path.
#[derive(Debug, Clone)]
pub struct LookupPlan {
    /// Total rows to gather.
    pub rows: usize,
    /// Rows per chunk.
    pub chunk_rows: usize,
}

impl LookupPlan {
    /// Plan for `rows` rows in `chunks` roughly equal pieces.
    pub fn new(rows: usize, chunks: usize) -> Self {
        let chunks = chunks.max(1);
        LookupPlan {
            rows,
            chunk_rows: rows.div_ceil(chunks).max(1),
        }
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        if self.rows == 0 {
            0
        } else {
            self.rows.div_ceil(self.chunk_rows)
        }
    }

    /// Row range of chunk `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        let lo = i * self.chunk_rows;
        let hi = ((i + 1) * self.chunk_rows).min(self.rows);
        lo..hi
    }
}

/// Gather chunk `i` of the plan into `out` (a pinned staging buffer in the
/// real system). Returns the number of rows gathered.
pub fn lookup_chunk(
    global: &EmbeddingTable,
    new_to_orig: &[VId],
    plan: &LookupPlan,
    i: usize,
    out: &mut Vec<f32>,
) -> usize {
    let range = plan.range(i);
    let ids = &new_to_orig[range.clone()];
    out.resize(ids.len() * global.dim(), 0.0);
    global.gather_into(ids, out);
    range.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EmbeddingTable {
        EmbeddingTable::from_vec(4, 2, vec![0., 0., 1., 1., 2., 2., 3., 3.])
    }

    #[test]
    fn lookup_all_reorders() {
        let t = lookup_all(&table(), &[3, 1, 0]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row(0), &[3., 3.]);
        assert_eq!(t.row(1), &[1., 1.]);
    }

    #[test]
    fn pooled_lookup_matches_serial() {
        // Enough rows for several gather chunks.
        let rows = 2000;
        let global = EmbeddingTable::random(100, 8, 3);
        let ids: Vec<VId> = (0..rows as u64).map(|i| ((i * 37) % 100) as VId).collect();
        let serial = lookup_all_with_pool(&global, &ids, &ThreadPool::new(1));
        for workers in [2, 8] {
            let par = lookup_all_with_pool(&global, &ids, &ThreadPool::new(workers));
            assert_eq!(serial.data(), par.data());
        }
        assert_eq!(serial.data(), global.gather(&ids).data());
    }

    #[test]
    fn chunked_equals_monolithic() {
        let ids: Vec<VId> = vec![2, 0, 3, 1, 2];
        let whole = lookup_all(&table(), &ids);
        let plan = LookupPlan::new(ids.len(), 3);
        let mut assembled: Vec<f32> = Vec::new();
        let mut buf = Vec::new();
        for c in 0..plan.num_chunks() {
            lookup_chunk(&table(), &ids, &plan, c, &mut buf);
            assembled.extend_from_slice(&buf);
        }
        assert_eq!(assembled, whole.data());
    }

    #[test]
    fn plan_covers_rows_exactly_once() {
        let plan = LookupPlan::new(10, 4);
        let mut covered = [false; 10];
        for c in 0..plan.num_chunks() {
            for r in plan.range(c) {
                assert!(!covered[r], "row {r} covered twice");
                covered[r] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn degenerate_plans() {
        assert_eq!(LookupPlan::new(0, 4).num_chunks(), 0);
        assert_eq!(LookupPlan::new(5, 100).num_chunks(), 5);
        assert_eq!(LookupPlan::new(5, 0).num_chunks(), 1);
    }
}
