//! Minibatch iteration over seed destination vertices.
//!
//! Training "simply iterates to process batches in a given dataset" (§VI);
//! a batch is 300 destination vertices drawn without replacement from a
//! seeded shuffle of the vertex set.

use gt_graph::VId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Iterator over shuffled fixed-size batches of vertex ids.
#[derive(Debug, Clone)]
pub struct BatchIter {
    order: Vec<VId>,
    batch_size: usize,
    cursor: usize,
}

impl BatchIter {
    /// Shuffle `0..num_vertices` with `seed` and yield batches of
    /// `batch_size` (the final partial batch is yielded too).
    pub fn new(num_vertices: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<VId> = (0..num_vertices as VId).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        BatchIter {
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Batches from an explicit seed set (e.g. labeled train vertices).
    pub fn from_seeds(seeds: Vec<VId>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order = seeds;
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        BatchIter {
            order,
            batch_size,
            cursor: 0,
        }
    }

    /// Number of batches this iterator will yield in total.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }
}

impl Iterator for BatchIter {
    type Item = Vec<VId>;

    fn next(&mut self) -> Option<Vec<VId>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let hi = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..hi].to_vec();
        self.cursor = hi;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_vertices_once() {
        let mut seen = [false; 10];
        for batch in BatchIter::new(10, 3, 1) {
            for v in batch {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn batch_sizes() {
        let batches: Vec<_> = BatchIter::new(10, 3, 1).collect();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].len(), 3);
        assert_eq!(batches[3].len(), 1);
        assert_eq!(BatchIter::new(10, 3, 1).num_batches(), 4);
    }

    #[test]
    fn deterministic_shuffle() {
        let a: Vec<_> = BatchIter::new(20, 5, 7).collect();
        let b: Vec<_> = BatchIter::new(20, 5, 7).collect();
        let c: Vec<_> = BatchIter::new(20, 5, 8).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn seeded_subset() {
        let batches: Vec<_> = BatchIter::from_seeds(vec![4, 9, 2], 2, 0).collect();
        let all: Vec<VId> = batches.into_iter().flatten().collect();
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(sorted, vec![2, 4, 9]);
    }
}
