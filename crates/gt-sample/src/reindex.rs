//! Graph reindexing (R) — §II-B, Fig 4b.
//!
//! Renumbers a sampled hop's edges from original ids into the dense new-id
//! space by reading the shared VID hash table, then builds the per-layer
//! graph structures: dst-indexed CSR for forward aggregation and
//! src-indexed CSC for backward propagation (§II-A, Fig 3). The hash reads
//! are charged to the [`VidMap`]'s counters — R's reads racing S's writes
//! is the second contention source of Fig 14a.

use crate::error::SampleError;
use crate::hashtable::VidMap;
use crate::sampler::HopEdges;
use gt_graph::{Coo, Csc, Csr};
use gt_par::ThreadPool;

/// Edges per chunk for the parallel endpoint-mapping pass. Fixed so chunk
/// geometry (and thus output) is independent of the worker count.
const R_CHUNK: usize = 2048;

/// Per-layer graph structures in new-id space.
#[derive(Debug, Clone)]
pub struct LayerGraph {
    /// Dst-indexed CSR over `num_dst` destinations; srcs are new ids
    /// `< num_src` (forward aggregation traverses this).
    pub csr: Csr,
    /// Src-indexed CSC over `num_src` sources (backward traverses this).
    pub csc: Csc,
    /// Destination id-space size (ids below the previous hop boundary).
    pub num_dst: usize,
    /// Source id-space size (ids below this hop's boundary).
    pub num_src: usize,
}

impl LayerGraph {
    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// Device bytes of both structures (what T(R) transfers).
    pub fn structure_bytes(&self) -> u64 {
        self.csr.storage_bytes() + self.csc.storage_bytes()
    }
}

/// Reindex one hop: map original ids through the hash table and build
/// CSR + CSC. `num_dst`/`num_src` are the boundaries recorded by the
/// sampler for this hop.
///
/// Panics if an edge references a node missing from the hash table (a
/// scheduler-ordering bug: R ran before its S finished); see
/// [`try_reindex_layer`] for the non-panicking variant.
pub fn reindex_layer(
    hop: &HopEdges,
    vidmap: &VidMap,
    num_dst: usize,
    num_src: usize,
) -> LayerGraph {
    try_reindex_layer(hop, vidmap, num_dst, num_src).unwrap_or_else(|e| panic!("{e}"))
}

/// [`reindex_layer`] returning a missing hash-table mapping as a
/// [`SampleError::MissingMapping`] instead of panicking. Runs on the
/// process-wide pool (`GT_THREADS`).
pub fn try_reindex_layer(
    hop: &HopEdges,
    vidmap: &VidMap,
    num_dst: usize,
    num_src: usize,
) -> Result<LayerGraph, SampleError> {
    try_reindex_layer_with_pool(hop, vidmap, num_dst, num_src, ThreadPool::global())
}

/// [`try_reindex_layer`] on an explicit pool. The endpoint mapping — the
/// hash-read-heavy part R spends its time in — is chunked across workers;
/// results are concatenated in chunk order, so the edge order (and the CSR
/// and CSC built from it) is identical at any worker count.
pub fn try_reindex_layer_with_pool(
    hop: &HopEdges,
    vidmap: &VidMap,
    num_dst: usize,
    num_src: usize,
    pool: &ThreadPool,
) -> Result<LayerGraph, SampleError> {
    let n = hop.len();
    // One all-shards read lock for the whole mapping phase: workers read
    // the hash table with no per-id locking or stats traffic (the reads
    // are accounted in bulk below).
    let view = vidmap.read();
    let map_ids = |ids: &[gt_graph::VId]| -> Result<Vec<gt_graph::VId>, SampleError> {
        let chunks = pool.map_chunks("reindex.map", n, R_CHUNK, |_, range| {
            ids[range]
                .iter()
                .map(|&v| view.get(v).ok_or(SampleError::MissingMapping { v }))
                .collect::<Result<Vec<_>, _>>()
        });
        let mut out = Vec::with_capacity(n);
        for c in chunks {
            out.extend(c?);
        }
        Ok(out)
    };
    let src_new = map_ids(&hop.src_orig)?;
    let dst_new = map_ids(&hop.dst_orig)?;
    drop(view);
    vidmap.record_lookups(2 * n as u64);
    debug_assert!(
        src_new.iter().all(|&s| (s as usize) < num_src),
        "src id beyond boundary"
    );
    debug_assert!(
        dst_new.iter().all(|&d| (d as usize) < num_dst),
        "dst id beyond boundary"
    );

    // Build dst-indexed CSR over the dst space and src-indexed CSC over the
    // src space. The two spaces differ (dsts are a prefix of srcs), so we
    // construct each from a COO sized to its own id space.
    let csr = {
        let coo = Coo::new(num_dst.max(num_src), src_new.clone(), dst_new.clone());
        let (full, _) = gt_graph::convert::coo_to_csr(&coo);
        // Truncate the pointer array to the dst space (no edges land above
        // num_dst by construction).
        Csr::new(full.indptr[..=num_dst].to_vec(), full.srcs.clone())
    };
    let csc = {
        let coo = Coo::new(num_src, src_new, dst_new);
        let (c, _) = gt_graph::convert::coo_to_csc(&coo);
        c
    };
    Ok(LayerGraph {
        csr,
        csc,
        num_dst,
        num_src,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{sample_batch, SamplerConfig};
    use gt_graph::convert::coo_to_csr;
    use gt_graph::generators::erdos_renyi;
    use gt_graph::VId;

    fn sampled() -> (crate::sampler::SampleOutput, Csr) {
        let coo = erdos_renyi(120, 1500, 21);
        let g = coo_to_csr(&coo).0;
        let out = sample_batch(
            &g,
            &[0, 1, 2, 3, 4],
            &SamplerConfig {
                fanout: 4,
                layers: 2,
                seed: 5,
                ..Default::default()
            },
        );
        (out, g)
    }

    #[test]
    fn csr_and_csc_agree_on_edges() {
        let (out, _) = sampled();
        for (k, hop) in out.hops.iter().enumerate() {
            let lg = reindex_layer(hop, &out.vidmap, out.boundaries[k], out.boundaries[k + 1]);
            assert_eq!(lg.csr.num_edges(), hop.len());
            assert_eq!(lg.csc.num_edges(), hop.len());
            // Every CSR edge appears in CSC.
            let mut csr_edges: Vec<(VId, VId)> = Vec::new();
            for (d, srcs) in lg.csr.iter() {
                for &s in srcs {
                    csr_edges.push((s, d));
                }
            }
            let mut csc_edges: Vec<(VId, VId)> = Vec::new();
            for (s, dsts) in lg.csc.iter() {
                for &d in dsts {
                    csc_edges.push((s, d));
                }
            }
            csr_edges.sort();
            csc_edges.sort();
            assert_eq!(csr_edges, csc_edges);
        }
    }

    #[test]
    fn dst_ids_stay_below_boundary() {
        let (out, _) = sampled();
        let hop0 = &out.hops[0];
        let lg = reindex_layer(hop0, &out.vidmap, out.boundaries[0], out.boundaries[1]);
        assert_eq!(lg.csr.num_vertices(), out.boundaries[0]);
        assert_eq!(lg.csc.num_vertices(), out.boundaries[1]);
        for (_, srcs) in lg.csr.iter() {
            for &s in srcs {
                assert!((s as usize) < out.boundaries[1]);
            }
        }
    }

    #[test]
    fn reindex_preserves_adjacency_through_id_map() {
        let (out, _) = sampled();
        let inv = out.new_to_orig();
        let hop0 = &out.hops[0];
        let lg = reindex_layer(hop0, &out.vidmap, out.boundaries[0], out.boundaries[1]);
        // Map reindexed edges back to original ids; must equal hop edges.
        let mut orig_pairs: Vec<(VId, VId)> = hop0
            .src_orig
            .iter()
            .zip(&hop0.dst_orig)
            .map(|(&s, &d)| (s, d))
            .collect();
        let mut mapped: Vec<(VId, VId)> = Vec::new();
        for (d, srcs) in lg.csr.iter() {
            for &s in srcs {
                mapped.push((inv[s as usize], inv[d as usize]));
            }
        }
        orig_pairs.sort();
        mapped.sort();
        assert_eq!(orig_pairs, mapped);
    }

    #[test]
    #[should_panic]
    fn missing_node_panics() {
        let hop = HopEdges {
            src_orig: vec![9],
            dst_orig: vec![10],
        };
        let vm = VidMap::new();
        reindex_layer(&hop, &vm, 1, 1);
    }

    #[test]
    fn try_reindex_reports_missing_node_as_value() {
        let hop = HopEdges {
            src_orig: vec![9],
            dst_orig: vec![10],
        };
        let vm = VidMap::new();
        assert_eq!(
            try_reindex_layer(&hop, &vm, 1, 1).err(),
            Some(SampleError::MissingMapping { v: 9 })
        );
        // With the mapping present, the same call succeeds.
        vm.insert_or_get(9);
        vm.insert_or_get(10);
        assert!(try_reindex_layer(&hop, &vm, 2, 2).is_ok());
    }
}
