//! Typed errors for the preprocessing stages (S/R and the hash table).
//!
//! The serving supervisor in `gt-core` needs to tell a *bad batch* (poison
//! input it should quarantine) from a *scheduler bug* (which should still
//! abort loudly). Every validation the samplers used to `assert!` is also
//! available as a `Result` through the `try_*` entry points; the panicking
//! wrappers delegate to them so the two paths can never disagree.

use gt_graph::VId;

/// A preprocessing-stage failure, as a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleError {
    /// The batch slice was empty — there is nothing to sample.
    EmptyBatch,
    /// `SamplerConfig::layers` was zero; a GNN needs at least one hop.
    ZeroLayers,
    /// A batch vertex id lies outside the graph's id space.
    VertexOutOfRange {
        /// The offending vertex id.
        v: VId,
        /// The graph's vertex count.
        n: usize,
    },
    /// Reindexing met an original id the hash table never saw (a
    /// scheduler-ordering bug: R ran before its S finished).
    MissingMapping {
        /// The unmapped original vertex id.
        v: VId,
    },
    /// The dense `new → orig` log has a hole at this new id (an insert's
    /// log write has not landed yet).
    IdLogGap {
        /// The new id whose log slot is unfilled.
        new: VId,
    },
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::EmptyBatch => write!(f, "empty batch"),
            SampleError::ZeroLayers => write!(f, "need at least one GNN layer"),
            SampleError::VertexOutOfRange { v, n } => {
                write!(f, "batch vertex {v} out of range (graph has {n} vertices)")
            }
            SampleError::MissingMapping { v } => {
                write!(f, "vertex {v} missing from hash table")
            }
            SampleError::IdLogGap { new } => {
                write!(f, "gap in new→orig id log at new id {new}")
            }
        }
    }
}

impl std::error::Error for SampleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(SampleError::EmptyBatch.to_string(), "empty batch");
        assert!(SampleError::VertexOutOfRange { v: 9, n: 4 }
            .to_string()
            .contains("9"));
        assert!(SampleError::MissingMapping { v: 3 }
            .to_string()
            .contains("hash table"));
    }
}
