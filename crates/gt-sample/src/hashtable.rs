//! The sampled-node VID hash table (§II-B, Fig 4a).
//!
//! Neighbor sampling "maintains a hash table for the sampled nodes"; each
//! unique node added to a subgraph gets a fresh dense new-VID starting from
//! zero. Sampling (S) inserts, reindexing (R) looks up — both hammer this
//! shared structure, which is exactly the lock-contention hot spot of
//! Fig 14a that the optimized scheduler relaxes by splitting S into an
//! algorithm part and a hash-update part (Fig 14c).
//!
//! The table is sharded: each shard is a `parking_lot::Mutex<HashMap>`, and
//! every acquisition that found its shard already locked is counted, so the
//! contention analysis has real operation counts to work from. Sequential
//! use is fully deterministic (new VIDs are allocated in insertion order).

use crate::error::SampleError;
use gt_graph::VId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Number of shards; power of two for cheap masking.
const SHARDS: usize = 16;

/// Operation counters exported for scheduler cost models and Fig 14.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VidMapStats {
    /// `insert_or_get` calls that allocated a new VID.
    pub inserts: u64,
    /// `insert_or_get` calls that found an existing mapping.
    pub hits: u64,
    /// Pure lookups (reindexing reads).
    pub lookups: u64,
    /// Lock acquisitions that found the shard already held.
    pub contended: u64,
}

impl VidMapStats {
    /// Total hash-table operations.
    pub fn total_ops(&self) -> u64 {
        self.inserts + self.hits + self.lookups
    }
}

/// Concurrent original-VID → new-VID map with dense id allocation.
#[derive(Debug)]
pub struct VidMap {
    shards: Vec<Mutex<HashMap<VId, VId>>>,
    next: AtomicU32,
    /// Insertion log: `new_to_orig[new]` = original id. Sharded appends
    /// would race, so each insert also records into a per-shard log merged
    /// on demand; for the sequential fast path we keep one mutex-protected
    /// vec (uncontended locks in parking_lot are a few ns).
    new_to_orig: Mutex<Vec<VId>>,
    inserts: AtomicU64,
    hits: AtomicU64,
    lookups: AtomicU64,
    contended: AtomicU64,
}

impl Default for VidMap {
    fn default() -> Self {
        Self::new()
    }
}

impl VidMap {
    /// Empty map.
    pub fn new() -> Self {
        VidMap {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            next: AtomicU32::new(0),
            new_to_orig: Mutex::new(Vec::new()),
            inserts: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    fn shard(&self, orig: VId) -> &Mutex<HashMap<VId, VId>> {
        // Multiplicative hash spreads sequential ids across shards.
        let h = (orig as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32;
        &self.shards[h as usize & (SHARDS - 1)]
    }

    fn lock_counting<'a>(
        &self,
        m: &'a Mutex<HashMap<VId, VId>>,
    ) -> parking_lot::MutexGuard<'a, HashMap<VId, VId>> {
        match m.try_lock() {
            Some(g) => g,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                m.lock()
            }
        }
    }

    /// Map `orig` to its new VID, allocating the next dense id if unseen.
    /// Returns `(new_vid, was_inserted)`.
    pub fn insert_or_get(&self, orig: VId) -> (VId, bool) {
        let mut shard = self.lock_counting(self.shard(orig));
        if let Some(&new) = shard.get(&orig) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (new, false);
        }
        let new = self.next.fetch_add(1, Ordering::Relaxed);
        shard.insert(orig, new);
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let mut log = self.new_to_orig.lock();
        if log.len() <= new as usize {
            log.resize(new as usize + 1, VId::MAX);
        }
        log[new as usize] = orig;
        (new, true)
    }

    /// Look up an existing mapping (reindexing read path).
    pub fn get(&self, orig: VId) -> Option<VId> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.lock_counting(self.shard(orig));
        shard.get(&orig).copied()
    }

    /// Number of unique nodes mapped so far.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize
    }

    /// True if no nodes have been mapped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of `new → orig`, densely indexed by new VID. A gap in the
    /// log (snapshot raced an in-flight insert) trips a debug assertion;
    /// use [`try_new_to_orig`](Self::try_new_to_orig) to get it as a value.
    pub fn new_to_orig(&self) -> Vec<VId> {
        let log = self.new_to_orig.lock();
        debug_assert!(log.iter().all(|&v| v != VId::MAX), "gap in id log");
        log.clone()
    }

    /// Snapshot of `new → orig`, reporting any gap in the log as a
    /// [`SampleError::IdLogGap`] in every build profile.
    pub fn try_new_to_orig(&self) -> Result<Vec<VId>, SampleError> {
        let log = self.new_to_orig.lock();
        if let Some(new) = log.iter().position(|&v| v == VId::MAX) {
            return Err(SampleError::IdLogGap { new: new as VId });
        }
        Ok(log.clone())
    }

    /// Operation counters.
    pub fn stats(&self) -> VidMapStats {
        VidMapStats {
            inserts: self.inserts.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_sequential_allocation() {
        let m = VidMap::new();
        assert_eq!(m.insert_or_get(100), (0, true));
        assert_eq!(m.insert_or_get(50), (1, true));
        assert_eq!(m.insert_or_get(100), (0, false));
        assert_eq!(m.len(), 2);
        assert_eq!(m.new_to_orig(), vec![100, 50]);
    }

    #[test]
    fn get_does_not_insert() {
        let m = VidMap::new();
        assert_eq!(m.get(7), None);
        m.insert_or_get(7);
        assert_eq!(m.get(7), Some(0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn stats_count_operations() {
        let m = VidMap::new();
        m.insert_or_get(1);
        m.insert_or_get(1);
        m.insert_or_get(2);
        m.get(1);
        m.get(99);
        let s = m.stats();
        assert_eq!(s.inserts, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.total_ops(), 5);
    }

    #[test]
    fn try_new_to_orig_matches_panicking_path_when_dense() {
        let m = VidMap::new();
        m.insert_or_get(100);
        m.insert_or_get(50);
        assert_eq!(m.try_new_to_orig().unwrap(), m.new_to_orig());
    }

    #[test]
    fn concurrent_inserts_stay_dense_and_consistent() {
        use std::sync::Arc;
        let m = Arc::new(VidMap::new());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    // Overlapping key ranges force shard contention.
                    m.insert_or_get((i + t * 250) % 800);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 800);
        let inv = m.new_to_orig();
        assert_eq!(inv.len(), 800);
        // Mapping is a bijection: every orig id maps back to its new id.
        for (new, &orig) in inv.iter().enumerate() {
            assert_eq!(m.get(orig), Some(new as VId));
        }
    }
}
