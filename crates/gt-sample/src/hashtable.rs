//! The sampled-node VID hash table (§II-B, Fig 4a).
//!
//! Neighbor sampling "maintains a hash table for the sampled nodes"; each
//! unique node added to a subgraph gets a fresh dense new-VID starting from
//! zero. Sampling (S) inserts, reindexing (R) looks up — both hammer this
//! shared structure, which is exactly the lock-contention hot spot of
//! Fig 14a that the optimized scheduler relaxes by splitting S into an
//! algorithm part and a hash-update part (Fig 14c).
//!
//! The table is sharded: each shard is a `parking_lot::Mutex<HashMap>`, and
//! every acquisition that found its shard already locked is counted, so the
//! contention analysis has real operation counts to work from. Sequential
//! use is fully deterministic (new VIDs are allocated in insertion order).

use crate::error::SampleError;
use crate::idhash::IdHashMap;
use gt_graph::VId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Number of shards; power of two for cheap masking.
const SHARDS: usize = 16;

/// Operation counters exported for scheduler cost models and Fig 14.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VidMapStats {
    /// `insert_or_get` calls that allocated a new VID.
    pub inserts: u64,
    /// `insert_or_get` calls that found an existing mapping.
    pub hits: u64,
    /// Pure lookups (reindexing reads).
    pub lookups: u64,
    /// Lock acquisitions that found the shard already held.
    pub contended: u64,
}

impl VidMapStats {
    /// Total hash-table operations.
    pub fn total_ops(&self) -> u64 {
        self.inserts + self.hits + self.lookups
    }
}

/// Concurrent original-VID → new-VID map with dense id allocation.
#[derive(Debug)]
pub struct VidMap {
    shards: Vec<Mutex<IdHashMap<VId, VId>>>,
    next: AtomicU32,
    /// Insertion log: `new_to_orig[new]` = original id. Sharded appends
    /// would race, so each insert also records into a per-shard log merged
    /// on demand; for the sequential fast path we keep one mutex-protected
    /// vec (uncontended locks in parking_lot are a few ns).
    new_to_orig: Mutex<Vec<VId>>,
    inserts: AtomicU64,
    hits: AtomicU64,
    lookups: AtomicU64,
    contended: AtomicU64,
}

impl Default for VidMap {
    fn default() -> Self {
        Self::new()
    }
}

impl VidMap {
    /// Empty map.
    pub fn new() -> Self {
        VidMap {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(IdHashMap::default()))
                .collect(),
            next: AtomicU32::new(0),
            new_to_orig: Mutex::new(Vec::new()),
            inserts: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    fn shard_index(orig: VId) -> usize {
        // Multiplicative hash spreads sequential ids across shards.
        let h = (orig as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32;
        h as usize & (SHARDS - 1)
    }

    fn shard(&self, orig: VId) -> &Mutex<IdHashMap<VId, VId>> {
        &self.shards[Self::shard_index(orig)]
    }

    fn lock_counting<'a>(
        &self,
        m: &'a Mutex<IdHashMap<VId, VId>>,
    ) -> parking_lot::MutexGuard<'a, IdHashMap<VId, VId>> {
        match m.try_lock() {
            Some(g) => g,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                m.lock()
            }
        }
    }

    /// Map `orig` to its new VID, allocating the next dense id if unseen.
    /// Returns `(new_vid, was_inserted)`.
    pub fn insert_or_get(&self, orig: VId) -> (VId, bool) {
        let mut shard = self.lock_counting(self.shard(orig));
        if let Some(&new) = shard.get(&orig) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (new, false);
        }
        let new = self.next.fetch_add(1, Ordering::Relaxed);
        shard.insert(orig, new);
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let mut log = self.new_to_orig.lock();
        if log.len() <= new as usize {
            log.resize(new as usize + 1, VId::MAX);
        }
        log[new as usize] = orig;
        (new, true)
    }

    /// H-phase batched update (Fig 14c): insert `origs` in slice order,
    /// allocating dense new-VIDs for first occurrences. Semantically equal
    /// to calling [`insert_or_get`](Self::insert_or_get) in a loop, but the
    /// `new_to_orig` log lock and the insert counter are amortized to one
    /// acquisition per batch instead of one per id — the sampler calls this
    /// once per A-phase chunk, keeping the whole hash-update cost inside
    /// the serial H region. Returns the number of fresh ids allocated.
    pub fn insert_batch(&self, origs: &[VId]) -> usize {
        let mut fresh: Vec<(VId, VId)> = Vec::new();
        for &orig in origs {
            let mut shard = self.lock_counting(self.shard(orig));
            if shard.contains_key(&orig) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let new = self.next.fetch_add(1, Ordering::Relaxed);
            shard.insert(orig, new);
            drop(shard);
            fresh.push((new, orig));
        }
        if fresh.is_empty() {
            return 0;
        }
        self.inserts
            .fetch_add(fresh.len() as u64, Ordering::Relaxed);
        let mut log = self.new_to_orig.lock();
        let max_new = fresh.iter().map(|&(n, _)| n).max().unwrap();
        if log.len() <= max_new as usize {
            log.resize(max_new as usize + 1, VId::MAX);
        }
        for &(new, orig) in &fresh {
            log[new as usize] = orig;
        }
        fresh.len()
    }

    /// [`insert_batch`](Self::insert_batch) through exclusive access: no
    /// shard locks, no atomics, one hash probe per id. This is the H
    /// phase's fast path — H is serial by construction (Fig 14c serializes
    /// hash updates), and the sampler owns its map, so exclusive access is
    /// free. Allocation order (slice order) is identical to the locked
    /// variants'.
    pub fn insert_batch_mut(&mut self, origs: &[VId]) -> usize {
        let mut next = *self.next.get_mut();
        let mut fresh = 0usize;
        let mut hit_count = 0u64;
        for &orig in origs {
            match self.shards[Self::shard_index(orig)].get_mut().entry(orig) {
                std::collections::hash_map::Entry::Occupied(_) => hit_count += 1,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(next);
                    let log = self.new_to_orig.get_mut();
                    debug_assert_eq!(log.len(), next as usize, "id log out of sync");
                    log.push(orig);
                    next += 1;
                    fresh += 1;
                }
            }
        }
        *self.next.get_mut() = next;
        *self.hits.get_mut() += hit_count;
        *self.inserts.get_mut() += fresh as u64;
        fresh
    }

    /// Look up an existing mapping (reindexing read path).
    pub fn get(&self, orig: VId) -> Option<VId> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.lock_counting(self.shard(orig));
        shard.get(&orig).copied()
    }

    /// Acquire every shard once and serve lock-free lookups for the guard's
    /// lifetime. This is R's bulk read path: per-id [`get`](Self::get) pays
    /// a lock acquisition and a stats increment per edge endpoint, which is
    /// pure cache-line traffic when reindex workers hammer it in parallel.
    /// The guard's `get` touches no shared state; callers account the reads
    /// afterwards with [`record_lookups`](Self::record_lookups).
    pub fn read(&self) -> VidMapReadGuard<'_> {
        VidMapReadGuard {
            guards: self.shards.iter().map(|s| self.lock_counting(s)).collect(),
        }
    }

    /// Bulk-add `n` to the lookup counter (pairs with [`read`](Self::read),
    /// whose guard does not count per-`get`).
    pub fn record_lookups(&self, n: u64) {
        self.lookups.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of unique nodes mapped so far.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize
    }

    /// True if no nodes have been mapped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of `new → orig`, densely indexed by new VID. A gap in the
    /// log (snapshot raced an in-flight insert) trips a debug assertion;
    /// use [`try_new_to_orig`](Self::try_new_to_orig) to get it as a value.
    pub fn new_to_orig(&self) -> Vec<VId> {
        let log = self.new_to_orig.lock();
        debug_assert!(log.iter().all(|&v| v != VId::MAX), "gap in id log");
        log.clone()
    }

    /// Snapshot of `new → orig`, reporting any gap in the log as a
    /// [`SampleError::IdLogGap`] in every build profile.
    pub fn try_new_to_orig(&self) -> Result<Vec<VId>, SampleError> {
        let log = self.new_to_orig.lock();
        if let Some(new) = log.iter().position(|&v| v == VId::MAX) {
            return Err(SampleError::IdLogGap { new: new as VId });
        }
        Ok(log.clone())
    }

    /// Operation counters.
    pub fn stats(&self) -> VidMapStats {
        VidMapStats {
            inserts: self.inserts.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            lookups: self.lookups.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
        }
    }
}

/// Lock-free read view over the whole map: holds every shard's mutex, so
/// `get` can read the maps directly. Shareable across pool workers
/// (`MutexGuard<HashMap>` is `Sync`); writers block until it drops.
pub struct VidMapReadGuard<'a> {
    guards: Vec<parking_lot::MutexGuard<'a, IdHashMap<VId, VId>>>,
}

impl VidMapReadGuard<'_> {
    /// Look up an existing mapping without touching shared counters; the
    /// caller accounts reads in bulk via [`VidMap::record_lookups`].
    pub fn get(&self, orig: VId) -> Option<VId> {
        self.guards[VidMap::shard_index(orig)].get(&orig).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_guard_matches_get() {
        let m = VidMap::new();
        for v in [100u32, 50, 7, 900, 13] {
            m.insert_or_get(v);
        }
        // Collect expectations first: the guard holds every shard lock, so
        // calling `m.get` while it lives would self-deadlock.
        let expected: Vec<_> = [100u32, 50, 7, 900, 13]
            .iter()
            .map(|&v| (v, m.get(v)))
            .collect();
        let lookups_before = m.stats().lookups;
        {
            let view = m.read();
            for &(v, want) in &expected {
                assert_eq!(view.get(v), want);
            }
            assert_eq!(view.get(12345), None);
        }
        m.record_lookups(6);
        assert_eq!(m.stats().lookups, lookups_before + 6);
    }

    #[test]
    fn dense_sequential_allocation() {
        let m = VidMap::new();
        assert_eq!(m.insert_or_get(100), (0, true));
        assert_eq!(m.insert_or_get(50), (1, true));
        assert_eq!(m.insert_or_get(100), (0, false));
        assert_eq!(m.len(), 2);
        assert_eq!(m.new_to_orig(), vec![100, 50]);
    }

    #[test]
    fn get_does_not_insert() {
        let m = VidMap::new();
        assert_eq!(m.get(7), None);
        m.insert_or_get(7);
        assert_eq!(m.get(7), Some(0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn insert_batch_matches_looped_inserts() {
        let ids = [5u32, 9, 5, 2, 9, 7, 2, 11];
        let looped = VidMap::new();
        for &v in &ids {
            looped.insert_or_get(v);
        }
        let batched = VidMap::new();
        assert_eq!(batched.insert_batch(&ids), 5);
        assert_eq!(batched.new_to_orig(), looped.new_to_orig());
        assert_eq!(batched.len(), looped.len());
        assert_eq!(batched.stats().inserts, looped.stats().inserts);
        assert_eq!(batched.stats().hits, looped.stats().hits);
        // A second batch of already-seen ids allocates nothing.
        assert_eq!(batched.insert_batch(&ids), 0);
        // The exclusive-access fast path behaves identically.
        let mut exclusive = VidMap::new();
        assert_eq!(exclusive.insert_batch_mut(&ids), 5);
        assert_eq!(exclusive.new_to_orig(), looped.new_to_orig());
        assert_eq!(exclusive.stats().inserts, looped.stats().inserts);
        assert_eq!(exclusive.stats().hits, looped.stats().hits);
        assert_eq!(exclusive.insert_batch_mut(&ids), 0);
    }

    #[test]
    fn stats_count_operations() {
        let m = VidMap::new();
        m.insert_or_get(1);
        m.insert_or_get(1);
        m.insert_or_get(2);
        m.get(1);
        m.get(99);
        let s = m.stats();
        assert_eq!(s.inserts, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.lookups, 2);
        assert_eq!(s.total_ops(), 5);
    }

    #[test]
    fn try_new_to_orig_matches_panicking_path_when_dense() {
        let m = VidMap::new();
        m.insert_or_get(100);
        m.insert_or_get(50);
        assert_eq!(m.try_new_to_orig().unwrap(), m.new_to_orig());
    }

    #[test]
    fn concurrent_inserts_stay_dense_and_consistent() {
        use std::sync::Arc;
        let m = Arc::new(VidMap::new());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    // Overlapping key ranges force shard contention.
                    m.insert_or_get((i + t * 250) % 800);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 800);
        let inv = m.new_to_orig();
        assert_eq!(inv.len(), 800);
        // Mapping is a bijection: every orig id maps back to its new id.
        for (new, &orig) in inv.iter().enumerate() {
            assert_eq!(m.get(orig), Some(new as VId));
        }
    }
}
