//! Neighbor sampling (S) — §II-B, Fig 4a — split into S = A + H (Fig 14c).
//!
//! For a batch of destination vertices, sample up to `fanout` unique random
//! in-neighbors per frontier node, hop by hop (one hop per GNN layer,
//! outer hops feeding earlier layers). New VIDs are allocated densely
//! through the shared [`VidMap`]; already-seen nodes are found by scanning
//! the hash table, exactly as steps ②/④ of Fig 4a describe.
//!
//! Each hop runs in two phases, the paper's contention-relaxing split:
//!
//! * **A (algorithm)** — the sampling proper. Frontier destinations are
//!   chunked across the [`ThreadPool`]; each destination draws from its own
//!   RNG stream keyed by `(seed, hop, dst)`, so the draws depend on neither
//!   chunk geometry nor worker count. A touches the hash table not at all —
//!   it emits per-chunk edge lists.
//! * **H (hash update)** — serial, in chunk order: each chunk's sampled ids
//!   are applied to the [`VidMap`] as one batch ([`VidMap::insert_batch`]),
//!   allocating dense new-VIDs in first-occurrence order. Because H walks
//!   chunks in index order and A is order-independent, `GT_THREADS=N`
//!   produces bit-identical output to `GT_THREADS=1`.
//!
//! Every frontier node also samples itself (a self-loop edge): GCN's
//! normalized adjacency includes self-loops (Â = A + I), and the self-edge
//! guarantees each hop's destination set is a subset of its source set, so
//! layer outputs are defined for every node a later layer reads.

use crate::error::SampleError;
use crate::hashtable::VidMap;
use gt_graph::{Csr, VId};
use gt_par::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Frontier destinations per A-phase chunk. Fixed (never derived from the
/// worker count) so chunk boundaries — and therefore H's id-allocation
/// order — are the same for every `GT_THREADS`.
const A_CHUNK: usize = 128;

/// Per-destination RNG stream seed: a SplitMix64-style finalizer over
/// `(seed, hop, dst)`. Giving every destination its own stream is what
/// detaches the sampled neighbors from frontier iteration order.
fn node_stream_seed(seed: u64, hop: usize, dst: VId) -> u64 {
    let mut z = seed
        ^ (hop as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (dst as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Neighbors sampled per node per hop (`n` in Fig 4a; unique random).
    pub fanout: usize,
    /// Number of GNN layers = number of hops sampled.
    pub layers: usize,
    /// RNG seed (per batch, derive from a base seed + batch index).
    pub seed: u64,
    /// How neighbors are prioritized ("picking n vertices following a
    /// certain sampling priority", §II-B).
    pub priority: Priority,
}

/// Neighbor-selection priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Uniform without replacement — the paper's default ("unique random").
    #[default]
    UniqueRandom,
    /// Importance sampling: neighbors drawn proportionally to their own
    /// in-degree (FastGCN-style variance reduction), without replacement.
    DegreeWeighted,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        // §VI: "a batch includes 300 vertices"; two-layer models; common
        // fanout for sampling-based training.
        SamplerConfig {
            fanout: 10,
            layers: 2,
            seed: 0,
            priority: Priority::UniqueRandom,
        }
    }
}

/// Edges of one sampled hop, in **original** vertex ids (reindexing maps
/// them to new ids — that split is what lets S and R be separate subtasks).
#[derive(Debug, Clone, Default)]
pub struct HopEdges {
    /// Source (neighbor) original ids.
    pub src_orig: Vec<VId>,
    /// Destination original ids.
    pub dst_orig: Vec<VId>,
}

impl HopEdges {
    /// Number of sampled edges in this hop.
    pub fn len(&self) -> usize {
        self.src_orig.len()
    }

    /// True if the hop has no edges.
    pub fn is_empty(&self) -> bool {
        self.src_orig.is_empty()
    }
}

/// Work counters for the sampling stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Adjacency-list entries inspected.
    pub edges_visited: u64,
    /// Random draws performed.
    pub draws: u64,
}

/// The sampler's output: per-hop edge lists (original ids), the shared VID
/// hash table, and the id-space boundaries after each hop.
#[derive(Debug)]
pub struct SampleOutput {
    /// `hops[0]` is hop 1 (adjacent to the batch); `hops[k]` is hop k+1.
    /// GNN layer `l` of an `L`-layer model consumes `hops[L - l]` — the
    /// outermost hop is processed first (§II-A).
    pub hops: Vec<HopEdges>,
    /// Shared original→new VID map (S writes, R reads).
    pub vidmap: VidMap,
    /// Id-space size after each stage: `boundaries[0]` = batch size,
    /// `boundaries[k]` = unique nodes after sampling hop k.
    pub boundaries: Vec<usize>,
    /// Sampling work counters.
    pub stats: SampleStats,
}

impl SampleOutput {
    /// Total unique sampled nodes.
    pub fn num_nodes(&self) -> usize {
        *self.boundaries.last().unwrap()
    }

    /// Dense `new → orig` id table (the K stage gathers rows in this order).
    pub fn new_to_orig(&self) -> Vec<VId> {
        self.vidmap.new_to_orig()
    }
}

/// Sample the per-layer subgraphs for `batch` destination vertices from the
/// full graph's in-adjacency `graph` (dst-indexed CSR). Panics on invalid
/// input; [`try_sample_batch`] returns the violation as a value instead.
pub fn sample_batch(graph: &Csr, batch: &[VId], cfg: &SamplerConfig) -> SampleOutput {
    try_sample_batch(graph, batch, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Validate a sampling request without running it: the supervisor uses this
/// to quarantine poison batches before they reach the pipeline.
pub fn validate_batch(graph: &Csr, batch: &[VId], cfg: &SamplerConfig) -> Result<(), SampleError> {
    if cfg.layers == 0 {
        return Err(SampleError::ZeroLayers);
    }
    if batch.is_empty() {
        return Err(SampleError::EmptyBatch);
    }
    let n = graph.num_vertices();
    for &v in batch {
        if v as usize >= n {
            return Err(SampleError::VertexOutOfRange { v, n });
        }
    }
    Ok(())
}

/// [`sample_batch`] returning invalid requests (zero layers, empty batch,
/// out-of-range batch ids) as [`SampleError`]s instead of panicking. Runs
/// on the process-wide pool (`GT_THREADS`).
pub fn try_sample_batch(
    graph: &Csr,
    batch: &[VId],
    cfg: &SamplerConfig,
) -> Result<SampleOutput, SampleError> {
    try_sample_batch_with_pool(graph, batch, cfg, ThreadPool::global())
}

/// [`try_sample_batch`] on an explicit pool — determinism tests compare
/// pools of different widths directly.
pub fn try_sample_batch_with_pool(
    graph: &Csr,
    batch: &[VId],
    cfg: &SamplerConfig,
    pool: &ThreadPool,
) -> Result<SampleOutput, SampleError> {
    validate_batch(graph, batch, cfg)?;
    let mut vidmap = VidMap::new();
    let mut stats = SampleStats::default();

    // Step ①/②: batch dsts get new ids in first-occurrence order. The
    // batch may repeat a vertex (e.g. one user in several BPR triples);
    // it is sampled once.
    let mut frontier: Vec<VId> = Vec::with_capacity(batch.len());
    for &v in batch {
        let (_, fresh) = vidmap.insert_or_get(v);
        if fresh {
            frontier.push(v);
        }
    }
    let mut boundaries = vec![vidmap.len()];
    let mut hops = Vec::with_capacity(cfg.layers);
    for hop in 0..cfg.layers {
        // A phase: chunk-parallel sampling with zero hash-table traffic.
        let frontier_ref = &frontier;
        let chunks: Vec<(HopEdges, SampleStats)> =
            pool.map_chunks("sample.A", frontier.len(), A_CHUNK, |_, range| {
                let mut edges = HopEdges::default();
                let mut st = SampleStats::default();
                for &dst in &frontier_ref[range] {
                    // Self-loop: a node always aggregates itself.
                    edges.src_orig.push(dst);
                    edges.dst_orig.push(dst);
                    // Neighbors already taken for this dst ("unique random",
                    // §II-B): the adjacency list may contain duplicate edges
                    // or an explicit self-loop, both of which must not
                    // produce repeat samples.
                    let mut local: Vec<VId> = vec![dst];

                    let neigh = graph.srcs(dst);
                    st.edges_visited += neigh.len() as u64;
                    let mut rng = StdRng::seed_from_u64(node_stream_seed(cfg.seed, hop, dst));
                    let picked = match cfg.priority {
                        Priority::UniqueRandom => {
                            sample_unique(neigh, cfg.fanout, &mut rng, &mut st)
                        }
                        Priority::DegreeWeighted => {
                            sample_degree_weighted(graph, neigh, cfg.fanout, &mut rng, &mut st)
                        }
                    };
                    for s in picked {
                        if local.contains(&s) {
                            continue;
                        }
                        local.push(s);
                        edges.src_orig.push(s);
                        edges.dst_orig.push(dst);
                    }
                }
                (edges, st)
            });

        // H phase: serial, in chunk order. Steps ③/④ — allocate-or-find the
        // new ids, one batched hash update per chunk, and build the next
        // frontier in first-occurrence order (Fig 4a iterates ③ "for all
        // the previously sampled vertices"). The src list visits each dst
        // before that dst's samples (self-loop first), so the frontier
        // order matches what a fully serial pass would produce.
        let mut edges = HopEdges::default();
        let mut next_frontier: Vec<VId> = Vec::new();
        let mut in_next: crate::idhash::IdHashSet<VId> =
            crate::idhash::IdHashSet::with_capacity_and_hasher(
                frontier.len() * (cfg.fanout + 1),
                crate::idhash::BuildIdHasher,
            );
        for (chunk_edges, st) in chunks {
            stats.edges_visited += st.edges_visited;
            stats.draws += st.draws;
            vidmap.insert_batch_mut(&chunk_edges.src_orig);
            for &s in &chunk_edges.src_orig {
                if in_next.insert(s) {
                    next_frontier.push(s);
                }
            }
            edges.src_orig.extend_from_slice(&chunk_edges.src_orig);
            edges.dst_orig.extend_from_slice(&chunk_edges.dst_orig);
        }
        boundaries.push(vidmap.len());
        hops.push(edges);
        frontier = next_frontier;
    }

    Ok(SampleOutput {
        hops,
        vidmap,
        boundaries,
        stats,
    })
}

/// Degree-weighted sampling without replacement: repeatedly draw with
/// probability proportional to each candidate's in-degree, rejecting
/// repeats. Falls back to the whole pool when it is small.
fn sample_degree_weighted(
    graph: &Csr,
    pool: &[VId],
    k: usize,
    rng: &mut StdRng,
    stats: &mut SampleStats,
) -> Vec<VId> {
    if pool.len() <= k {
        return pool.to_vec();
    }
    // Degrees + prefix sums over the candidate pool (degree + 1 so
    // isolated neighbors keep nonzero mass).
    let weights: Vec<u64> = pool.iter().map(|&v| graph.degree(v) as u64 + 1).collect();
    let total: u64 = weights.iter().sum();
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let mut guard = 0;
    while chosen.len() < k && guard < 20 * k {
        guard += 1;
        stats.draws += 1;
        let mut target = rng.gen_range(0..total);
        let mut idx = 0;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                idx = i;
                break;
            }
            target -= w;
        }
        if !chosen.contains(&idx) {
            chosen.push(idx);
        }
    }
    // Rejection stalls only on pathological weight skew; top up uniformly.
    for i in 0..pool.len() {
        if chosen.len() >= k {
            break;
        }
        if !chosen.contains(&i) {
            chosen.push(i);
        }
    }
    chosen.into_iter().map(|i| pool[i]).collect()
}

/// Pick up to `k` unique elements of `pool` uniformly at random
/// (Floyd's algorithm for k < len; whole pool otherwise).
fn sample_unique(pool: &[VId], k: usize, rng: &mut StdRng, stats: &mut SampleStats) -> Vec<VId> {
    if pool.len() <= k {
        return pool.to_vec();
    }
    // Partial Fisher–Yates over an index vector would allocate len; Floyd's
    // needs only the result set.
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for j in pool.len() - k..pool.len() {
        stats.draws += 1;
        let t = rng.gen_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen.into_iter().map(|i| pool[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::convert::coo_to_csr;
    use gt_graph::generators::erdos_renyi;
    use gt_graph::Coo;

    fn chain_graph() -> Csr {
        // 0 ← 1 ← 2 ← 3 ← 4 (in-neighbor chains).
        let coo = Coo::from_edges(5, &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        coo_to_csr(&coo).0
    }

    fn cfg(fanout: usize, layers: usize) -> SamplerConfig {
        SamplerConfig {
            fanout,
            layers,
            seed: 42,
            ..Default::default()
        }
    }

    #[test]
    fn degree_weighted_prefers_hubs() {
        // Graph: dst 0 has many neighbors; one of them (hub) has a huge
        // in-degree. Degree-weighted sampling should select the hub far
        // more often than uniform sampling would.
        let mut edges: Vec<(u32, u32)> = (1..30u32).map(|s| (s, 0)).collect();
        // Node 1 is the hub: everyone points at it.
        edges.extend((2..60u32).map(|s| (s, 1)));
        let coo = Coo::from_edges(60, &edges);
        let g = coo_to_csr(&coo).0;
        let mut hub_hits = 0;
        for seed in 0..50 {
            let out = sample_batch(
                &g,
                &[0],
                &SamplerConfig {
                    fanout: 2,
                    layers: 1,
                    seed,
                    priority: Priority::DegreeWeighted,
                },
            );
            if out.hops[0].src_orig.contains(&1) {
                hub_hits += 1;
            }
        }
        // Uniform would pick the hub ~2/29 ≈ 7% of the time; weighted with
        // hub weight 59/(29+58) ≈ most draws.
        assert!(hub_hits > 25, "hub picked only {hub_hits}/50 times");
    }

    #[test]
    fn degree_weighted_still_unique_and_valid() {
        let coo = erdos_renyi(100, 1500, 5);
        let g = coo_to_csr(&coo).0;
        let out = sample_batch(
            &g,
            &[0, 1, 2, 3],
            &SamplerConfig {
                fanout: 4,
                layers: 2,
                seed: 9,
                priority: Priority::DegreeWeighted,
            },
        );
        for hop in &out.hops {
            let mut per_dst: std::collections::HashMap<VId, Vec<VId>> = Default::default();
            for (&s, &d) in hop.src_orig.iter().zip(&hop.dst_orig) {
                assert!(s == d || g.srcs(d).contains(&s));
                per_dst.entry(d).or_default().push(s);
            }
            for (_, srcs) in per_dst {
                let set: std::collections::HashSet<_> = srcs.iter().collect();
                assert_eq!(set.len(), srcs.len());
            }
        }
    }

    #[test]
    fn batch_gets_first_ids() {
        let g = chain_graph();
        let out = sample_batch(&g, &[0, 2], &cfg(2, 1));
        let inv = out.new_to_orig();
        assert_eq!(&inv[..2], &[0, 2]);
        assert_eq!(out.boundaries[0], 2);
    }

    #[test]
    fn hops_expand_monotonically() {
        let g = chain_graph();
        let out = sample_batch(&g, &[0], &cfg(2, 3));
        assert_eq!(out.hops.len(), 3);
        assert!(out.boundaries.windows(2).all(|w| w[0] <= w[1]));
        // Chain: hop k reaches node k.
        assert_eq!(out.num_nodes(), 4);
    }

    #[test]
    fn self_loops_present() {
        let g = chain_graph();
        let out = sample_batch(&g, &[0], &cfg(2, 1));
        assert!(out.hops[0]
            .src_orig
            .iter()
            .zip(&out.hops[0].dst_orig)
            .any(|(s, d)| s == d));
    }

    #[test]
    fn fanout_bounds_degree() {
        let g = {
            let coo = erdos_renyi(200, 3000, 7);
            coo_to_csr(&coo).0
        };
        let out = sample_batch(&g, &[0, 1, 2, 3], &cfg(3, 2));
        // Each dst contributes at most fanout + 1 (self) edges per hop.
        for hop in &out.hops {
            let mut counts = std::collections::HashMap::new();
            for &d in &hop.dst_orig {
                *counts.entry(d).or_insert(0usize) += 1;
            }
            assert!(counts.values().all(|&c| c <= 4), "degree exceeded fanout+1");
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = {
            let coo = erdos_renyi(100, 1000, 3);
            coo_to_csr(&coo).0
        };
        let a = sample_batch(&g, &[5, 6, 7], &cfg(4, 2));
        let b = sample_batch(&g, &[5, 6, 7], &cfg(4, 2));
        assert_eq!(a.hops[0].src_orig, b.hops[0].src_orig);
        assert_eq!(a.hops[1].src_orig, b.hops[1].src_orig);
        assert_eq!(a.new_to_orig(), b.new_to_orig());
    }

    #[test]
    fn sampling_identical_across_pool_widths() {
        // A batch large enough that hop frontiers span several A-phase
        // chunks, so the parallel path is genuinely exercised.
        let g = {
            let coo = erdos_renyi(2000, 20000, 17);
            coo_to_csr(&coo).0
        };
        let batch: Vec<VId> = (0..300).collect();
        let c = cfg(6, 2);
        let serial = try_sample_batch_with_pool(&g, &batch, &c, &ThreadPool::new(1)).unwrap();
        for workers in [2, 8] {
            let par =
                try_sample_batch_with_pool(&g, &batch, &c, &ThreadPool::new(workers)).unwrap();
            assert_eq!(serial.boundaries, par.boundaries);
            assert_eq!(serial.new_to_orig(), par.new_to_orig());
            for (a, b) in serial.hops.iter().zip(&par.hops) {
                assert_eq!(a.src_orig, b.src_orig);
                assert_eq!(a.dst_orig, b.dst_orig);
            }
            assert_eq!(serial.stats, par.stats);
        }
    }

    #[test]
    fn sampled_neighbors_are_real_neighbors() {
        let coo = erdos_renyi(100, 800, 9);
        let g = coo_to_csr(&coo).0;
        let out = sample_batch(&g, &[1, 2, 3], &cfg(5, 2));
        for hop in &out.hops {
            for (&s, &d) in hop.src_orig.iter().zip(&hop.dst_orig) {
                assert!(
                    s == d || g.srcs(d).contains(&s),
                    "{s} is not an in-neighbor of {d}"
                );
            }
        }
    }

    #[test]
    fn unique_sampling_no_duplicates_per_dst() {
        let coo = erdos_renyi(50, 600, 11);
        let g = coo_to_csr(&coo).0;
        let out = sample_batch(&g, &[0, 1], &cfg(4, 1));
        let hop = &out.hops[0];
        let mut per_dst: std::collections::HashMap<VId, Vec<VId>> = Default::default();
        for (&s, &d) in hop.src_orig.iter().zip(&hop.dst_orig) {
            per_dst.entry(d).or_default().push(s);
        }
        for (_, srcs) in per_dst {
            let set: std::collections::HashSet<_> = srcs.iter().collect();
            assert_eq!(set.len(), srcs.len(), "duplicate sampled neighbor");
        }
    }

    #[test]
    fn try_sample_batch_reports_bad_requests_as_values() {
        let g = chain_graph();
        assert_eq!(
            try_sample_batch(&g, &[], &cfg(2, 1)).err(),
            Some(SampleError::EmptyBatch)
        );
        assert_eq!(
            try_sample_batch(&g, &[0], &cfg(2, 0)).err(),
            Some(SampleError::ZeroLayers)
        );
        assert_eq!(
            try_sample_batch(&g, &[0, 99], &cfg(2, 1)).err(),
            Some(SampleError::VertexOutOfRange { v: 99, n: 5 })
        );
        assert!(try_sample_batch(&g, &[0, 4], &cfg(2, 1)).is_ok());
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_still_panics_via_wrapper() {
        let g = chain_graph();
        sample_batch(&g, &[], &cfg(2, 1));
    }

    #[test]
    fn stats_are_populated() {
        let coo = erdos_renyi(100, 2000, 13);
        let g = coo_to_csr(&coo).0;
        let out = sample_batch(&g, &[0, 1, 2], &cfg(3, 2));
        assert!(out.stats.edges_visited > 0);
        assert!(out.vidmap.stats().inserts as usize == out.num_nodes());
    }
}
