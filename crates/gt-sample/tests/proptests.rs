//! Property-based tests on sampling/reindexing invariants.

use gt_graph::convert::coo_to_csr;
use gt_graph::{Coo, VId};
use gt_sample::{reindex_layer, sample_batch, SamplerConfig, VidMap};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = (Coo, Vec<VId>)> {
    (
        prop::collection::vec((0u32..50, 0u32..50), 20..200),
        prop::collection::vec(0u32..50, 1..8),
    )
        .prop_map(|(es, mut batch)| {
            batch.sort();
            batch.dedup();
            (Coo::from_edges(50, &es), batch)
        })
}

proptest! {
    /// Sampling invariants: boundaries monotone, batch gets the first ids,
    /// every sampled edge is a real edge or a self-loop, new→orig is a
    /// bijection onto the sampled set.
    #[test]
    fn sampling_invariants(
        (coo, batch) in graph_strategy(),
        fanout in 1usize..6,
        layers in 1usize..4,
        seed in 0u64..100,
    ) {
        let (csr, _) = coo_to_csr(&coo);
        let out = sample_batch(&csr, &batch, &SamplerConfig { fanout, layers, seed, ..Default::default() });

        prop_assert_eq!(out.hops.len(), layers);
        prop_assert!(out.boundaries.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(out.boundaries[0], batch.len());

        let inv = out.new_to_orig();
        prop_assert_eq!(inv.len(), out.num_nodes());
        // First ids are the batch, in order.
        prop_assert_eq!(&inv[..batch.len()], &batch[..]);
        // Bijection: distinct originals.
        let set: std::collections::HashSet<_> = inv.iter().collect();
        prop_assert_eq!(set.len(), inv.len());

        for hop in &out.hops {
            for (&s, &d) in hop.src_orig.iter().zip(&hop.dst_orig) {
                prop_assert!(s == d || csr.srcs(d).contains(&s));
            }
        }
    }

    /// Reindexed layers: ids within boundaries, CSR/CSC edge multisets
    /// match, per-dst degree bounded by fanout + 1.
    #[test]
    fn reindex_invariants(
        (coo, batch) in graph_strategy(),
        fanout in 1usize..5,
        seed in 0u64..100,
    ) {
        let (csr, _) = coo_to_csr(&coo);
        let out = sample_batch(&csr, &batch, &SamplerConfig { fanout, layers: 2, seed, ..Default::default() });
        for (k, hop) in out.hops.iter().enumerate() {
            let lg = reindex_layer(hop, &out.vidmap, out.boundaries[k], out.boundaries[k + 1]);
            prop_assert_eq!(lg.csr.num_edges(), hop.len());
            for (d, srcs) in lg.csr.iter() {
                prop_assert!((d as usize) < lg.num_dst);
                prop_assert!(srcs.len() <= fanout + 1, "degree {} > fanout+1", srcs.len());
                for &s in srcs {
                    prop_assert!((s as usize) < lg.num_src);
                }
            }
            prop_assert_eq!(lg.csc.num_edges(), lg.csr.num_edges());
        }
    }

    /// VidMap allocates dense ids regardless of insertion pattern.
    #[test]
    fn vidmap_dense_allocation(keys in prop::collection::vec(0u32..1000, 1..300)) {
        let m = VidMap::new();
        for &k in &keys {
            m.insert_or_get(k);
        }
        let unique: std::collections::HashSet<_> = keys.iter().collect();
        prop_assert_eq!(m.len(), unique.len());
        let inv = m.new_to_orig();
        for (new, &orig) in inv.iter().enumerate() {
            prop_assert_eq!(m.get(orig), Some(new as VId));
        }
        let stats = m.stats();
        prop_assert_eq!(stats.inserts as usize, unique.len());
        prop_assert_eq!((stats.inserts + stats.hits) as usize, keys.len());
    }
}
