//! Deterministic discrete-event simulator for end-to-end schedules.
//!
//! The service-wide tensor scheduler (§V-B) is fundamentally a statement
//! about *scheduling*: the same S/R/K/T work, chopped into subtasks and
//! placed with maximum overlap across host cores, the PCIe link, and the
//! GPU, finishes much earlier than the serialized schedule the baselines
//! use. Since this machine exposes a single vCPU (DESIGN.md §2), we replay
//! each framework's task DAG on modeled resources with a deterministic
//! list scheduler and compare virtual makespans.
//!
//! Tasks may carry a *lock group*: two tasks in the same group never
//! overlap, which models the sampled-VID hash-table contention of Fig 14.
//! The time a task spends waiting on its lock group (beyond data/resource
//! readiness) is recorded so the contention fractions are observable.

use crate::counters::Phase;

/// Identifies a task added to the simulator.
pub type TaskId = usize;

/// Execution resource a task occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// One of the host CPU cores (the pool size is `Simulator::new(cores)`).
    HostCore,
    /// The single PCIe DMA engine.
    Pcie,
    /// The single GPU compute queue.
    Gpu,
}

/// A unit of work submitted to the simulator.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Display label (e.g. "S2", "T(K) chunk 3").
    pub label: String,
    /// Resource pool the task runs on.
    pub resource: Resource,
    /// Duration in virtual microseconds.
    pub duration_us: f64,
    /// Tasks that must finish before this one starts.
    pub deps: Vec<TaskId>,
    /// Optional mutual-exclusion group (hash-table lock id).
    pub lock: Option<u32>,
    /// Phase for timeline decomposition.
    pub phase: Phase,
    /// Number of items (e.g. nodes) this task processes; used by Fig 20's
    /// cumulative progress curves.
    pub items: u64,
}

impl TaskSpec {
    /// Convenience constructor with no deps, no lock, zero items.
    pub fn new(
        label: impl Into<String>,
        resource: Resource,
        duration_us: f64,
        phase: Phase,
    ) -> Self {
        TaskSpec {
            label: label.into(),
            resource,
            duration_us,
            deps: Vec::new(),
            lock: None,
            phase,
            items: 0,
        }
    }

    /// Builder: add dependencies.
    pub fn after(mut self, deps: &[TaskId]) -> Self {
        self.deps.extend_from_slice(deps);
        self
    }

    /// Builder: serialize against a lock group.
    pub fn locked(mut self, group: u32) -> Self {
        self.lock = Some(group);
        self
    }

    /// Builder: set processed-item count.
    pub fn items(mut self, n: u64) -> Self {
        self.items = n;
        self
    }
}

/// A task placed in time by the scheduler.
#[derive(Debug, Clone)]
pub struct ScheduledEvent {
    pub task: TaskId,
    pub label: String,
    pub phase: Phase,
    pub resource: Resource,
    /// Index of the unit within its resource pool (core number, 0 for
    /// PCIe/GPU).
    pub unit: usize,
    pub start_us: f64,
    pub end_us: f64,
    /// Time spent waiting on the task's lock group beyond data/unit
    /// readiness.
    pub lock_wait_us: f64,
    pub items: u64,
}

/// The result of simulating a task DAG.
#[derive(Debug, Clone)]
pub struct Schedule {
    pub events: Vec<ScheduledEvent>,
    pub makespan_us: f64,
    /// Tasks whose execution was failed by an injected fault (e.g. every
    /// PCIe task under a `TransferFailure`). Empty for fault-free runs.
    pub failed: Vec<TaskId>,
}

impl Schedule {
    /// True when any task was failed by an injected fault.
    pub fn has_failures(&self) -> bool {
        !self.failed.is_empty()
    }

    /// Completion time of the last task in `phase` (0 if none ran).
    pub fn phase_finish_us(&self, phase: Phase) -> f64 {
        self.events
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.end_us)
            .fold(0.0, f64::max)
    }

    /// Envelope of `phase` in schedule time: `(first start, last finish)`,
    /// or `None` if no task of that phase ran. This is the span a tracing
    /// consumer renders for the phase — busy time can be smaller when the
    /// phase's tasks have gaps between them.
    pub fn phase_window_us(&self, phase: Phase) -> Option<(f64, f64)> {
        let mut window: Option<(f64, f64)> = None;
        for e in self.events.iter().filter(|e| e.phase == phase) {
            window = Some(match window {
                Some((from, until)) => (from.min(e.start_us), until.max(e.end_us)),
                None => (e.start_us, e.end_us),
            });
        }
        window
    }

    /// Sum of busy time in `phase`.
    pub fn phase_busy_us(&self, phase: Phase) -> f64 {
        self.events
            .iter()
            .filter(|e| e.phase == phase)
            .map(|e| e.end_us - e.start_us)
            .sum()
    }

    /// Total time tasks spent blocked on lock groups.
    pub fn total_lock_wait_us(&self) -> f64 {
        self.events.iter().map(|e| e.lock_wait_us).sum()
    }

    /// Cumulative progress curve for `phase`: (completion time, cumulative
    /// items), sorted by time. Drives Fig 20.
    pub fn progress_curve(&self, phase: Phase) -> Vec<(f64, u64)> {
        let mut pts: Vec<(f64, u64)> = self
            .events
            .iter()
            .filter(|e| e.phase == phase && e.items > 0)
            .map(|e| (e.end_us, e.items))
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cum = 0;
        for p in &mut pts {
            cum += p.1;
            p.1 = cum;
        }
        pts
    }
}

/// Deterministic list scheduler over host cores, the PCIe link, and the GPU.
#[derive(Debug, Clone)]
pub struct Simulator {
    tasks: Vec<TaskSpec>,
    host_cores: usize,
}

impl Simulator {
    /// A simulator whose host pool has `host_cores` cores.
    pub fn new(host_cores: usize) -> Self {
        assert!(host_cores > 0, "need at least one host core");
        Simulator {
            tasks: Vec::new(),
            host_cores,
        }
    }

    /// Submit a task; returns its id for use in later `deps`.
    pub fn add(&mut self, spec: TaskSpec) -> TaskId {
        for &d in &spec.deps {
            assert!(d < self.tasks.len(), "dependency on unknown task {d}");
        }
        self.tasks.push(spec);
        self.tasks.len() - 1
    }

    /// Number of submitted tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks have been submitted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The submitted task specs, indexable by [`TaskId`]. Analysis layers
    /// (gt-profile) use this to reconstruct the dependency DAG behind a
    /// [`Schedule`] and to rebuild what-if variants of the simulator.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Size of the host-core pool this simulator schedules onto.
    pub fn host_cores(&self) -> usize {
        self.host_cores
    }

    /// Run list scheduling: repeatedly place the ready task with the earliest
    /// possible start (ties broken by submission order) on the
    /// earliest-available unit of its resource pool.
    pub fn run(&self) -> Schedule {
        self.run_inner(None)
    }

    /// Run list scheduling under injected faults: stragglers stretch tasks
    /// on their core, stalls stretch PCIe tasks, contention spikes stretch
    /// lock-holding tasks, and transfer failures mark PCIe tasks failed.
    ///
    /// An empty fault set takes the exact [`run`](Self::run) code path, so
    /// fault-free schedules are bit-identical to unsupervised ones.
    pub fn run_with_faults(&self, faults: &crate::fault::ActiveFaults) -> Schedule {
        if faults.is_empty() {
            return self.run_inner(None);
        }
        self.run_inner(Some(faults))
    }

    fn run_inner(&self, faults: Option<&crate::fault::ActiveFaults>) -> Schedule {
        let n = self.tasks.len();
        let mut finish: Vec<Option<f64>> = vec![None; n];
        let mut host_free = vec![0.0f64; self.host_cores];
        let mut pcie_free = vec![0.0f64; 1];
        let mut gpu_free = vec![0.0f64; 1];
        let mut lock_free: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        let mut events: Vec<ScheduledEvent> = Vec::with_capacity(n);
        let mut scheduled = vec![false; n];
        let mut failed: Vec<TaskId> = Vec::new();

        for _round in 0..n {
            // Find the ready task with the earliest possible start time.
            let mut best: Option<(f64, usize)> = None;
            for (i, t) in self.tasks.iter().enumerate() {
                if scheduled[i] {
                    continue;
                }
                if t.deps.iter().any(|&d| finish[d].is_none()) {
                    continue;
                }
                let data_ready = t
                    .deps
                    .iter()
                    .map(|&d| finish[d].unwrap())
                    .fold(0.0f64, f64::max);
                let pool: &Vec<f64> = match t.resource {
                    Resource::HostCore => &host_free,
                    Resource::Pcie => &pcie_free,
                    Resource::Gpu => &gpu_free,
                };
                let unit_ready = pool.iter().copied().fold(f64::INFINITY, f64::min);
                let lock_ready = t.lock.map_or(0.0, |g| *lock_free.get(&g).unwrap_or(&0.0));
                let start = data_ready.max(unit_ready).max(lock_ready);
                match best {
                    Some((s, _)) if s <= start => {}
                    _ => best = Some((start, i)),
                }
            }
            let (_, i) = best.expect("cycle in task graph: no ready task");
            let t = &self.tasks[i];
            let data_ready = t
                .deps
                .iter()
                .map(|&d| finish[d].unwrap())
                .fold(0.0f64, f64::max);
            let pool: &mut Vec<f64> = match t.resource {
                Resource::HostCore => &mut host_free,
                Resource::Pcie => &mut pcie_free,
                Resource::Gpu => &mut gpu_free,
            };
            let (unit, unit_ready) = pool
                .iter()
                .copied()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            let lock_ready = t.lock.map_or(0.0, |g| *lock_free.get(&g).unwrap_or(&0.0));
            let unblocked = data_ready.max(unit_ready);
            let start = unblocked.max(lock_ready);
            // Fault adjustments are Option-gated: with no applicable fault
            // the duration arithmetic is exactly the fault-free path, so an
            // empty fault set yields a bit-identical schedule.
            let mut duration = t.duration_us;
            if let Some(f) = faults {
                if t.resource == Resource::HostCore {
                    if let Some(factor) = f.straggler(unit) {
                        duration *= factor;
                    }
                }
                if t.resource == Resource::Pcie {
                    if let Some(factor) = f.pcie_slowdown() {
                        duration *= factor;
                    }
                }
                if t.lock.is_some() {
                    if let Some(factor) = f.lock_slowdown() {
                        duration *= factor;
                    }
                }
                if t.resource == Resource::Pcie && f.fails_transfers() {
                    failed.push(i);
                }
            }
            let end = start + duration;
            pool[unit] = end;
            if let Some(g) = t.lock {
                lock_free.insert(g, end);
            }
            finish[i] = Some(end);
            scheduled[i] = true;
            events.push(ScheduledEvent {
                task: i,
                label: t.label.clone(),
                phase: t.phase,
                resource: t.resource,
                unit,
                start_us: start,
                end_us: end,
                lock_wait_us: (lock_ready - unblocked).max(0.0),
                items: t.items,
            });
        }

        let makespan_us = events.iter().map(|e| e.end_us).fold(0.0, f64::max);
        Schedule {
            events,
            makespan_us,
            failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_task(us: f64) -> TaskSpec {
        TaskSpec::new("t", Resource::HostCore, us, Phase::Sampling)
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let mut sim = Simulator::new(4);
        for _ in 0..4 {
            sim.add(host_task(100.0));
        }
        let s = sim.run();
        assert!((s.makespan_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn more_tasks_than_cores_serialize() {
        let mut sim = Simulator::new(2);
        for _ in 0..4 {
            sim.add(host_task(100.0));
        }
        assert!((sim.run().makespan_us - 200.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_are_honored() {
        let mut sim = Simulator::new(8);
        let a = sim.add(host_task(50.0));
        let b = sim.add(host_task(30.0).after(&[a]));
        let s = sim.run();
        let eb = s.events.iter().find(|e| e.task == b).unwrap();
        assert!((eb.start_us - 50.0).abs() < 1e-9);
        assert!((s.makespan_us - 80.0).abs() < 1e-9);
    }

    #[test]
    fn lock_group_serializes_and_records_wait() {
        let mut sim = Simulator::new(8);
        sim.add(host_task(100.0).locked(1));
        sim.add(host_task(100.0).locked(1));
        let s = sim.run();
        assert!((s.makespan_us - 200.0).abs() < 1e-9);
        assert!((s.total_lock_wait_us() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn different_resources_overlap() {
        let mut sim = Simulator::new(1);
        sim.add(host_task(100.0));
        sim.add(TaskSpec::new("x", Resource::Pcie, 100.0, Phase::Transfer));
        sim.add(TaskSpec::new("g", Resource::Gpu, 100.0, Phase::Aggregation));
        let s = sim.run();
        assert!((s.makespan_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn progress_curve_is_cumulative() {
        let mut sim = Simulator::new(1);
        sim.add(host_task(10.0).items(5));
        sim.add(host_task(10.0).items(7));
        let curve = sim.run().progress_curve(Phase::Sampling);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[1].1, 12);
        assert!(curve[0].0 < curve[1].0);
    }

    #[test]
    fn phase_accounting_on_schedule() {
        let mut sim = Simulator::new(2);
        sim.add(host_task(10.0));
        sim.add(TaskSpec::new("r", Resource::HostCore, 20.0, Phase::Reindex));
        let s = sim.run();
        assert!((s.phase_busy_us(Phase::Sampling) - 10.0).abs() < 1e-9);
        assert!((s.phase_finish_us(Phase::Reindex) - 20.0).abs() < 1e-9);
        assert_eq!(s.phase_finish_us(Phase::Transfer), 0.0);
    }

    #[test]
    #[should_panic]
    fn forward_dependency_rejected() {
        let mut sim = Simulator::new(1);
        sim.add(host_task(1.0).after(&[5]));
    }

    #[test]
    fn empty_faults_match_plain_run() {
        use crate::fault::ActiveFaults;
        let mut sim = Simulator::new(2);
        let a = sim.add(host_task(50.0));
        sim.add(host_task(30.0).after(&[a]).locked(1));
        sim.add(TaskSpec::new("x", Resource::Pcie, 40.0, Phase::Transfer));
        let plain = sim.run();
        let faulted = sim.run_with_faults(&ActiveFaults::none());
        assert_eq!(plain.events.len(), faulted.events.len());
        for (p, f) in plain.events.iter().zip(&faulted.events) {
            assert_eq!(p.start_us.to_bits(), f.start_us.to_bits());
            assert_eq!(p.end_us.to_bits(), f.end_us.to_bits());
            assert_eq!(p.unit, f.unit);
        }
        assert_eq!(plain.makespan_us.to_bits(), faulted.makespan_us.to_bits());
        assert!(faulted.failed.is_empty());
    }

    #[test]
    fn straggler_slows_only_its_core() {
        use crate::fault::{ActiveFaults, FaultKind};
        // Two cores, two tasks: one lands on core 0, one on core 1.
        let mut sim = Simulator::new(2);
        sim.add(host_task(100.0));
        sim.add(host_task(100.0));
        let faults = ActiveFaults {
            faults: vec![FaultKind::StragglerCore {
                core: 1,
                factor: 3.0,
            }],
        };
        let s = sim.run_with_faults(&faults);
        let on0 = s.events.iter().find(|e| e.unit == 0).unwrap();
        let on1 = s.events.iter().find(|e| e.unit == 1).unwrap();
        assert!((on0.end_us - on0.start_us - 100.0).abs() < 1e-9);
        assert!((on1.end_us - on1.start_us - 300.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_stall_stretches_pcie_only() {
        use crate::fault::{ActiveFaults, FaultKind};
        let mut sim = Simulator::new(1);
        sim.add(host_task(100.0));
        sim.add(TaskSpec::new("x", Resource::Pcie, 100.0, Phase::Transfer));
        let faults = ActiveFaults {
            faults: vec![FaultKind::TransferStall { factor: 2.5 }],
        };
        let s = sim.run_with_faults(&faults);
        let host = s
            .events
            .iter()
            .find(|e| e.resource == Resource::HostCore)
            .unwrap();
        let pcie = s
            .events
            .iter()
            .find(|e| e.resource == Resource::Pcie)
            .unwrap();
        assert!((host.end_us - host.start_us - 100.0).abs() < 1e-9);
        assert!((pcie.end_us - pcie.start_us - 250.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_failure_marks_pcie_tasks() {
        use crate::fault::{ActiveFaults, FaultKind};
        let mut sim = Simulator::new(1);
        sim.add(host_task(10.0));
        let x = sim.add(TaskSpec::new("x", Resource::Pcie, 10.0, Phase::Transfer));
        let faults = ActiveFaults {
            faults: vec![FaultKind::TransferFailure],
        };
        let s = sim.run_with_faults(&faults);
        assert!(s.has_failures());
        assert_eq!(s.failed, vec![x]);
        assert!(!sim.run().has_failures());
    }

    #[test]
    fn contention_spike_stretches_locked_tasks() {
        use crate::fault::{ActiveFaults, FaultKind};
        let mut sim = Simulator::new(2);
        sim.add(host_task(100.0).locked(1));
        sim.add(host_task(100.0));
        let faults = ActiveFaults {
            faults: vec![FaultKind::HashContention { factor: 4.0 }],
        };
        let s = sim.run_with_faults(&faults);
        let locked = s.events.iter().find(|e| e.task == 0).unwrap();
        let free = s.events.iter().find(|e| e.task == 1).unwrap();
        assert!((locked.end_us - locked.start_us - 400.0).abs() < 1e-9);
        assert!((free.end_us - free.start_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_prefers_earliest_start() {
        // One core. Task A (long) and B (short) both ready: both start at 0,
        // tie broken by submission order, so A runs first.
        let mut sim = Simulator::new(1);
        let a = sim.add(host_task(100.0));
        let b = sim.add(host_task(1.0));
        let s = sim.run();
        let ea = s.events.iter().find(|e| e.task == a).unwrap();
        let eb = s.events.iter().find(|e| e.task == b).unwrap();
        assert!(ea.start_us < eb.start_us);
    }
}
