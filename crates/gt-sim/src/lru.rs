//! Finite-capacity LRU cache model — the ablation companion to
//! [`crate::CacheSim`].
//!
//! `CacheSim` assumes each SM's cache holds a kernel's whole per-SM working
//! set, so it measures only *cross-SM duplication* (the paper's cache-bloat
//! definition). This model adds capacity pressure: when a working set
//! exceeds the SM's L1, rows are re-fetched on reuse. The `cache_ablation`
//! experiment uses it to show the paper's conclusions are not an artifact
//! of the infinite-capacity assumption.

use std::collections::HashMap;

/// One SM's LRU set of cached rows.
#[derive(Debug, Clone, Default)]
struct LruSet {
    /// row → last-use tick.
    resident: HashMap<u64, u64>,
    bytes: u64,
}

/// Per-SM LRU caches with a shared capacity parameter.
#[derive(Debug, Clone)]
pub struct LruCacheSim {
    sms: Vec<LruSet>,
    capacity_bytes: u64,
    tick: u64,
    loaded_bytes: u64,
    hits: u64,
    misses: u64,
}

impl LruCacheSim {
    /// `num_sms` caches of `capacity_bytes` each.
    pub fn new(num_sms: usize, capacity_bytes: u64) -> Self {
        assert!(num_sms > 0);
        assert!(capacity_bytes > 0);
        LruCacheSim {
            sms: vec![LruSet::default(); num_sms],
            capacity_bytes,
            tick: 0,
            loaded_bytes: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Thread block `block` touches `row` (`bytes` big) on SM
    /// `block % num_sms`. Returns true on a miss (a load happened).
    pub fn touch_block(&mut self, block: usize, row: u64, bytes: u64) -> bool {
        let sm_idx = block % self.sms.len();
        self.tick += 1;
        let tick = self.tick;
        let capacity = self.capacity_bytes;
        let sm = &mut self.sms[sm_idx];
        if let Some(t) = sm.resident.get_mut(&row) {
            *t = tick;
            self.hits += 1;
            return false;
        }
        self.misses += 1;
        self.loaded_bytes += bytes;
        // Evict LRU rows until the new one fits. Rows are uniform-sized per
        // kernel, so this loop runs at most a couple of times.
        while sm.bytes + bytes > capacity && !sm.resident.is_empty() {
            let (&lru_row, _) = sm
                .resident
                .iter()
                .min_by_key(|(_, &t)| t)
                .expect("non-empty");
            sm.resident.remove(&lru_row);
            sm.bytes = sm.bytes.saturating_sub(bytes);
        }
        sm.resident.insert(row, tick);
        sm.bytes += bytes;
        true
    }

    /// Total bytes fetched from global memory.
    pub fn loaded_bytes(&self) -> u64 {
        self.loaded_bytes
    }

    /// Cache hit rate over all touches.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_capacity_behaves_like_infinite() {
        let mut c = LruCacheSim::new(2, 1024);
        // Two rows of 100 bytes, touched repeatedly on one SM.
        for _ in 0..10 {
            c.touch_block(0, 1, 100);
            c.touch_block(0, 2, 100);
        }
        assert_eq!(c.loaded_bytes(), 200);
        assert!(c.hit_rate() > 0.8);
    }

    #[test]
    fn capacity_pressure_causes_refetches() {
        // Capacity for exactly 2 rows; cycle through 3 → every touch misses.
        let mut c = LruCacheSim::new(1, 200);
        for _ in 0..5 {
            for row in 0..3u64 {
                c.touch_block(0, row, 100);
            }
        }
        assert_eq!(c.hit_rate(), 0.0);
        assert_eq!(c.loaded_bytes(), 15 * 100);
    }

    #[test]
    fn lru_keeps_recent_rows() {
        let mut c = LruCacheSim::new(1, 200);
        c.touch_block(0, 1, 100);
        c.touch_block(0, 2, 100);
        c.touch_block(0, 1, 100); // refresh row 1
        c.touch_block(0, 3, 100); // evicts row 2 (LRU)
        assert!(!c.touch_block(0, 1, 100), "row 1 should still be resident");
        assert!(c.touch_block(0, 2, 100), "row 2 should have been evicted");
    }

    #[test]
    fn cross_sm_duplication_still_counted() {
        let mut c = LruCacheSim::new(4, 10_000);
        c.touch_block(0, 7, 100);
        c.touch_block(1, 7, 100);
        assert_eq!(c.loaded_bytes(), 200);
    }
}
