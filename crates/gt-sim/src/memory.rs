//! Device-memory allocation tracker.
//!
//! Models the 24 GB GDDR6X of the paper's GPU. Frameworks allocate and free
//! buffers through this tracker so the peak footprint (Fig 6a, Fig 17a) is
//! observable, and so over-capacity allocations reproduce the paper's
//! out-of-memory failures (PyG/GNNAdvisor NGCF on livejournal, §VI-A).

/// Error returned when an allocation would exceed device capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes that were requested.
    pub requested: u64,
    /// Bytes in use at the time of the request.
    pub in_use: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B with {} B in use of {} B",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Tracks current and peak device-memory usage.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacity: u64,
    in_use: u64,
    peak: u64,
    first_oom: Option<OutOfMemory>,
}

impl MemoryTracker {
    /// Tracker for a device with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryTracker {
            capacity,
            in_use: 0,
            peak: 0,
            first_oom: None,
        }
    }

    /// Allocate `bytes`; fails if the device would be over capacity. The
    /// first failure is also latched (see [`MemoryTracker::oom`]) so a full
    /// training-batch run can proceed on the host and report the OOM at the
    /// end, the way the paper reports PyG's NGCF livejournal failure.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        if self.in_use.saturating_add(bytes) > self.capacity {
            let err = OutOfMemory {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            };
            self.first_oom.get_or_insert(err);
            return Err(err);
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// The first over-capacity allocation this run, if any.
    pub fn oom(&self) -> Option<OutOfMemory> {
        self.first_oom
    }

    /// Free `bytes` previously allocated.
    pub fn free(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.in_use, "freeing more than allocated");
        self.in_use = self.in_use.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryTracker::new(1000);
        m.alloc(400).unwrap();
        m.alloc(300).unwrap();
        m.free(500);
        m.alloc(100).unwrap();
        assert_eq!(m.in_use(), 300);
        assert_eq!(m.peak(), 700);
    }

    #[test]
    fn over_capacity_fails() {
        let mut m = MemoryTracker::new(100);
        m.alloc(80).unwrap();
        let err = m.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        // Failed allocation leaves state unchanged.
        assert_eq!(m.in_use(), 80);
        m.alloc(20).unwrap();
    }

    #[test]
    fn oom_displays_cleanly() {
        let e = OutOfMemory {
            requested: 1,
            in_use: 2,
            capacity: 3,
        };
        assert!(e.to_string().contains("out of memory"));
    }
}
