//! Deterministic fault-campaign machinery: a seeded generator that samples
//! composite [`FaultPlan`]s, a JSON wire form for replaying them, and a
//! delta-debugging shrinker that minimizes a failing fault schedule.
//!
//! This is the FoundationDB-style simulation-testing layer of the fault
//! model (docs/fault_model.md §Chaos campaigns). Hand-written crash-site
//! sweeps cover the faults someone thought of; [`sample_plan`] explores the
//! *composite* schedule space — a crash at any batch × any
//! [`CrashSite`], storage faults (torn write, short read, ENOSPC,
//! single-bit flip) against the journal or the checkpoint, schedule
//! stalls, memory pressure, and delayed-delivery reorderings — all from
//! one seed, so a failing campaign is exactly reproducible from one `u64`.
//!
//! When a campaign's invariant oracle (in `crates/bench`) rejects a plan,
//! [`shrink`] minimizes it: drop rules, lower batch indices, tighten
//! windows, weaken kinds — re-running the oracle after each step — until
//! the plan is 1-minimal. The shrunk plan serializes with [`plan_to_json`]
//! and replays with `repro --chaos-replay`.
//!
//! Everything here is pure: no clock, no filesystem, no global state.

use crate::fault::{splitmix64, CrashSite, FaultKind, FaultPlan, FaultRule, IoFault, IoTarget};
use gt_telemetry::json::obj;
use gt_telemetry::Json;

/// Shape of the sampled fault schedules.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Batches in the serving stream faults are scheduled over.
    pub batches: usize,
    /// Most faults one plan may carry (at least one is always sampled).
    pub max_faults: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            batches: 8,
            max_faults: 4,
        }
    }
}

/// Tiny deterministic RNG over splitmix64 (the same primitive the rule
/// rolls use, differently keyed).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        // Distinct stream from FaultPlan's probability rolls.
        Rng(splitmix64(seed ^ 0xC4A0_5CA0_DE7E_C7ED))
    }

    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Sample one composite fault schedule for `seed`.
///
/// Every emitted rule is an *explicit* schedule entry — probability 1.0
/// over a concrete batch window — except transfer failures, which keep a
/// per-attempt probability so retry-then-succeed ladders are exercised.
/// Journal/checkpoint faults stay inside the recoverable-or-detectable
/// envelope documented on [`IoFault`].
pub fn sample_plan(seed: u64, cfg: &ChaosConfig) -> FaultPlan {
    let mut rng = Rng::new(seed);
    let n_faults = 1 + rng.below(cfg.max_faults.max(1) as u64) as usize;
    let mut plan = FaultPlan::new(seed);
    for _ in 0..n_faults {
        let b = rng.below(cfg.batches.max(1) as u64) as usize;
        plan = match rng.below(11) {
            0 => {
                let site = match rng.below(3) {
                    0 => CrashSite::MidJournal,
                    1 => CrashSite::MidCheckpoint,
                    _ => CrashSite::AfterCommit,
                };
                plan.with_crash_at(b, site)
            }
            1 => {
                let fault = match rng.below(4) {
                    0 => IoFault::TornWrite,
                    1 => IoFault::ShortRead,
                    2 => IoFault::Enospc,
                    _ => IoFault::BitFlip {
                        bit: rng.below(1 << 14) as u32,
                    },
                };
                plan.with_io_fault(b, IoTarget::Journal, fault)
            }
            2 => {
                // Checkpoint loads are replaced by journal replay during
                // recovery, so short reads are a journal-side fault; the
                // checkpoint side exercises the write path.
                let fault = match rng.below(3) {
                    0 => IoFault::TornWrite,
                    1 => IoFault::Enospc,
                    _ => IoFault::BitFlip {
                        bit: rng.below(1 << 14) as u32,
                    },
                };
                plan.with_io_fault(b, IoTarget::Checkpoint, fault)
            }
            3 => {
                // Transient transfer failures over a short window: the
                // retry ladder either clears them or quarantines.
                let until = b + 1 + rng.below(2) as usize;
                let probability = [0.5, 0.8, 1.0][rng.below(3) as usize];
                plan.with_rule(FaultRule {
                    kind: FaultKind::TransferFailure,
                    probability,
                    from_batch: b,
                    until_batch: Some(until),
                    transient: true,
                })
            }
            4 => {
                // Memory pressure: moderate (halving recovers) or hard
                // (every attempt OOMs and the batch quarantines).
                let fraction = if rng.below(2) == 0 { 0.5 } else { 1e-6 };
                plan.with_rule(FaultRule {
                    kind: FaultKind::MemoryPressure { fraction },
                    probability: 1.0,
                    from_batch: b,
                    until_batch: Some(b + 1),
                    transient: false,
                })
            }
            5 => {
                let factor = (1 + rng.below(4)) as f64 * 2.0;
                plan.with_rule(FaultRule {
                    kind: FaultKind::TransferStall { factor },
                    probability: 1.0,
                    from_batch: b,
                    until_batch: Some(b + 1 + rng.below(3) as usize),
                    transient: false,
                })
            }
            6 => {
                let factor = (1 + rng.below(3)) as f64 * 2.0;
                plan.with_rule(FaultRule {
                    kind: FaultKind::HashContention { factor },
                    probability: 1.0,
                    from_batch: b,
                    until_batch: Some(b + 1),
                    transient: false,
                })
            }
            7 => plan.with_delivery_delay(b, 1 + rng.below(3) as u32),
            // Cluster faults. Worker indices are sampled over a nominal
            // 4-worker cluster; the cluster supervisor maps them modulo
            // its actual worker count, and single-node campaigns ignore
            // them entirely (they are inert outside the cluster layer).
            8 => plan.with_worker_kill(b, rng.below(4) as usize),
            9 => {
                let worker = rng.below(4) as usize;
                let factor = (1 + rng.below(4)) as f64 * 2.0;
                let until = b + 1 + rng.below(3) as usize;
                plan.with_link_degrade(worker, factor, b, Some(until))
            }
            _ => plan.with_heartbeat_drop(b, rng.below(4) as usize, 1 + rng.below(3) as u32),
        };
    }
    plan
}

/// The order batches actually reach the server in, after applying the
/// plan's [`FaultKind::DeliveryDelay`] rules to the submission order
/// `0..batches`. A batch delayed `d` slots sorts as if it arrived at
/// `index + d`; ties resolve by submission order (stable), so the result
/// is a deterministic permutation of `0..batches`.
pub fn delivery_order(plan: &FaultPlan, batches: usize) -> Vec<usize> {
    let mut keyed: Vec<(usize, usize)> = (0..batches)
        .map(|b| (b + plan.active(b, 0).delivery_delay().unwrap_or(0), b))
        .collect();
    keyed.sort_by_key(|&(slot, b)| (slot, b));
    keyed.into_iter().map(|(_, b)| b).collect()
}

// ---- JSON wire form -----------------------------------------------------

fn kind_to_json(kind: &FaultKind) -> Json {
    match kind {
        FaultKind::TransferStall { factor } => obj([
            ("kind", "transfer-stall".into()),
            ("factor", (*factor).into()),
        ]),
        FaultKind::TransferFailure => obj([("kind", "transfer-failure".into())]),
        FaultKind::StragglerCore { core, factor } => obj([
            ("kind", "straggler-core".into()),
            ("core", (*core as u64).into()),
            ("factor", (*factor).into()),
        ]),
        FaultKind::MemoryPressure { fraction } => obj([
            ("kind", "memory-pressure".into()),
            ("fraction", (*fraction).into()),
        ]),
        FaultKind::HashContention { factor } => obj([
            ("kind", "hash-contention".into()),
            ("factor", (*factor).into()),
        ]),
        FaultKind::ServeDelay { extra_us } => obj([
            ("kind", "serve-delay".into()),
            ("extra_us", (*extra_us).into()),
        ]),
        FaultKind::Crash { site } => obj([
            ("kind", "crash".into()),
            ("site", Json::Str(site.label().to_string())),
        ]),
        FaultKind::Io { target, fault } => {
            let mut pairs = vec![
                ("kind", Json::Str("io".to_string())),
                ("target", Json::Str(target.label().to_string())),
                ("fault", Json::Str(fault.label().to_string())),
            ];
            if let IoFault::BitFlip { bit } = fault {
                pairs.push(("bit", (*bit as u64).into()));
            }
            obj(pairs)
        }
        FaultKind::DeliveryDelay { slots } => obj([
            ("kind", "delivery-delay".into()),
            ("slots", (*slots as u64).into()),
        ]),
        FaultKind::WorkerKill { worker } => obj([
            ("kind", "worker-kill".into()),
            ("worker", (*worker as u64).into()),
        ]),
        FaultKind::LinkDegrade { worker, factor } => obj([
            ("kind", "link-degrade".into()),
            ("worker", (*worker as u64).into()),
            ("factor", (*factor).into()),
        ]),
        FaultKind::HeartbeatDrop { worker, beats } => obj([
            ("kind", "heartbeat-drop".into()),
            ("worker", (*worker as u64).into()),
            ("beats", (*beats as u64).into()),
        ]),
    }
}

fn kind_from_json(v: &Json) -> Result<FaultKind, String> {
    let kind = v
        .get("kind")
        .and_then(|k| k.as_str())
        .ok_or("rule without a kind tag")?;
    let num = |field: &str| -> Result<f64, String> {
        v.get(field)
            .and_then(|x| x.as_f64())
            .ok_or_else(|| format!("{kind} rule missing numeric {field:?}"))
    };
    match kind {
        "transfer-stall" => Ok(FaultKind::TransferStall {
            factor: num("factor")?,
        }),
        "transfer-failure" => Ok(FaultKind::TransferFailure),
        "straggler-core" => Ok(FaultKind::StragglerCore {
            core: num("core")? as usize,
            factor: num("factor")?,
        }),
        "memory-pressure" => Ok(FaultKind::MemoryPressure {
            fraction: num("fraction")?,
        }),
        "hash-contention" => Ok(FaultKind::HashContention {
            factor: num("factor")?,
        }),
        "serve-delay" => Ok(FaultKind::ServeDelay {
            extra_us: num("extra_us")?,
        }),
        "crash" => {
            let site = v
                .get("site")
                .and_then(|s| s.as_str())
                .and_then(CrashSite::parse)
                .ok_or("crash rule with unknown site")?;
            Ok(FaultKind::Crash { site })
        }
        "io" => {
            let target = v
                .get("target")
                .and_then(|s| s.as_str())
                .and_then(IoTarget::parse)
                .ok_or("io rule with unknown target")?;
            let fault = match v.get("fault").and_then(|s| s.as_str()) {
                Some("torn-write") => IoFault::TornWrite,
                Some("short-read") => IoFault::ShortRead,
                Some("enospc") => IoFault::Enospc,
                Some("bit-flip") => IoFault::BitFlip {
                    bit: num("bit")? as u32,
                },
                other => return Err(format!("io rule with unknown fault {other:?}")),
            };
            Ok(FaultKind::Io { target, fault })
        }
        "delivery-delay" => Ok(FaultKind::DeliveryDelay {
            slots: num("slots")? as u32,
        }),
        "worker-kill" => Ok(FaultKind::WorkerKill {
            worker: num("worker")? as usize,
        }),
        "link-degrade" => Ok(FaultKind::LinkDegrade {
            worker: num("worker")? as usize,
            factor: num("factor")?,
        }),
        "heartbeat-drop" => Ok(FaultKind::HeartbeatDrop {
            worker: num("worker")? as usize,
            beats: num("beats")? as u32,
        }),
        other => Err(format!("unknown fault kind {other:?}")),
    }
}

/// Serialize a plan (seed + rules) to its JSON wire form — the payload
/// `repro --chaos-replay` consumes and CI uploads on campaign failure.
pub fn plan_to_json(plan: &FaultPlan) -> Json {
    let rules: Vec<Json> = plan
        .rules()
        .iter()
        .map(|r| {
            let mut o = kind_to_json(&r.kind);
            if let Json::Obj(pairs) = &mut o {
                pairs.push(("probability".to_string(), r.probability.into()));
                pairs.push(("from".to_string(), (r.from_batch as u64).into()));
                pairs.push((
                    "until".to_string(),
                    match r.until_batch {
                        Some(u) => (u as u64).into(),
                        None => Json::Null,
                    },
                ));
                pairs.push(("transient".to_string(), Json::Bool(r.transient)));
            }
            o
        })
        .collect();
    obj([("seed", plan.seed().into()), ("rules", Json::Arr(rules))])
}

/// Rebuild a plan from [`plan_to_json`]'s wire form.
pub fn plan_from_json(v: &Json) -> Result<FaultPlan, String> {
    let seed = v
        .get("seed")
        .and_then(|s| s.as_f64())
        .ok_or("plan without a seed")? as u64;
    let rules = v
        .get("rules")
        .and_then(|r| r.as_arr())
        .ok_or("plan without a rules array")?;
    let mut plan = FaultPlan::new(seed);
    for r in rules {
        let kind = kind_from_json(r)?;
        let probability = r
            .get("probability")
            .and_then(|p| p.as_f64())
            .ok_or("rule without probability")?;
        let from_batch = r
            .get("from")
            .and_then(|f| f.as_f64())
            .ok_or("rule without from")? as usize;
        let until_batch = match r.get("until") {
            Some(Json::Null) | None => None,
            Some(u) => Some(u.as_f64().ok_or("non-numeric until")? as usize),
        };
        let transient = matches!(r.get("transient"), Some(Json::Bool(true)));
        plan = plan.with_rule(FaultRule {
            kind,
            probability,
            from_batch,
            until_batch,
            transient,
        });
    }
    Ok(plan)
}

// ---- shrinking ----------------------------------------------------------

fn rebuild(seed: u64, rules: Vec<FaultRule>) -> FaultPlan {
    rules
        .into_iter()
        .fold(FaultPlan::new(seed), |p, r| p.with_rule(r))
}

/// Strictly-weaker replacements for a fault kind, strongest candidate
/// first. "Weaker" follows the recovery protocol's cost ordering: a crash
/// later in the protocol disturbs less state; an ENOSPC persists nothing
/// where a torn write leaves residue; smaller slowdown factors and delays
/// perturb less.
fn weaker_kinds(kind: &FaultKind) -> Vec<FaultKind> {
    match *kind {
        FaultKind::Crash {
            site: CrashSite::MidJournal,
        } => vec![
            FaultKind::Crash {
                site: CrashSite::MidCheckpoint,
            },
            FaultKind::Crash {
                site: CrashSite::AfterCommit,
            },
        ],
        FaultKind::Crash {
            site: CrashSite::MidCheckpoint,
        } => vec![FaultKind::Crash {
            site: CrashSite::AfterCommit,
        }],
        FaultKind::Io { target, fault } => match fault {
            IoFault::BitFlip { .. } => vec![
                FaultKind::Io {
                    target,
                    fault: IoFault::TornWrite,
                },
                FaultKind::Io {
                    target,
                    fault: IoFault::Enospc,
                },
            ],
            IoFault::TornWrite => vec![FaultKind::Io {
                target,
                fault: IoFault::Enospc,
            }],
            _ => vec![],
        },
        FaultKind::TransferStall { factor } if factor > 2.0 => {
            vec![FaultKind::TransferStall {
                factor: (factor / 2.0).max(2.0),
            }]
        }
        FaultKind::HashContention { factor } if factor > 2.0 => {
            vec![FaultKind::HashContention {
                factor: (factor / 2.0).max(2.0),
            }]
        }
        FaultKind::StragglerCore { core, factor } if factor > 2.0 => {
            vec![FaultKind::StragglerCore {
                core,
                factor: (factor / 2.0).max(2.0),
            }]
        }
        FaultKind::ServeDelay { extra_us } if extra_us > 1.0 => {
            vec![FaultKind::ServeDelay {
                extra_us: extra_us / 2.0,
            }]
        }
        FaultKind::DeliveryDelay { slots } if slots > 1 => {
            vec![FaultKind::DeliveryDelay { slots: slots / 2 }]
        }
        // A kill is the strongest cluster fault: try the faults that only
        // *look* like one (a silent-but-alive worker, a slow link) first.
        FaultKind::WorkerKill { worker } => vec![
            FaultKind::HeartbeatDrop { worker, beats: 2 },
            FaultKind::LinkDegrade {
                worker,
                factor: 2.0,
            },
        ],
        FaultKind::LinkDegrade { worker, factor } if factor > 2.0 => {
            vec![FaultKind::LinkDegrade {
                worker,
                factor: (factor / 2.0).max(2.0),
            }]
        }
        FaultKind::HeartbeatDrop { worker, beats } if beats > 1 => {
            vec![FaultKind::HeartbeatDrop {
                worker,
                beats: beats / 2,
            }]
        }
        _ => vec![],
    }
}

/// Delta-debug `plan` down to a schedule that still fails `still_fails`.
///
/// Greedy passes to a fixpoint, bounded by `max_evals` predicate runs:
///
/// 1. **drop** — remove each rule outright;
/// 2. **rebase** — shift each rule's window toward batch 0 (try 0, then
///    halve the distance);
/// 3. **tighten** — shrink open or multi-batch windows to one batch;
/// 4. **weaken** — substitute strictly weaker kinds ([`weaker_kinds`]).
///
/// The returned plan always fails the predicate (it is only replaced by
/// candidates that do). `still_fails` must be deterministic — it re-runs
/// the whole campaign, which the stack's determinism contract guarantees.
pub fn shrink<F: FnMut(&FaultPlan) -> bool>(
    plan: &FaultPlan,
    mut still_fails: F,
    max_evals: usize,
) -> FaultPlan {
    let seed = plan.seed();
    let mut best = plan.clone();
    let mut evals = 0usize;

    loop {
        let mut improved = false;

        // Pass 1: drop whole rules.
        let mut i = 0;
        while i < best.rules().len() {
            if evals >= max_evals {
                return best;
            }
            let mut rules = best.rules().to_vec();
            rules.remove(i);
            let cand = rebuild(seed, rules);
            evals += 1;
            if still_fails(&cand) {
                best = cand;
                improved = true;
                // Re-test the same index: it now holds the next rule.
            } else {
                i += 1;
            }
        }

        // Passes 2-4: per-rule window rebasing, tightening, weakening.
        for i in 0..best.rules().len() {
            let rule = best.rules()[i].clone();

            // Rebase toward batch 0, preserving the window length.
            let mut target = 0usize;
            while target < rule.from_batch {
                if evals >= max_evals {
                    return best;
                }
                let delta = best.rules()[i].from_batch - target;
                let mut rules = best.rules().to_vec();
                rules[i].from_batch = target;
                rules[i].until_batch = rules[i].until_batch.map(|u| u.saturating_sub(delta));
                let cand = rebuild(seed, rules);
                evals += 1;
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                    break;
                }
                // Couldn't reach `target`; try halfway between it and the
                // current position.
                let cur = best.rules()[i].from_batch;
                let next = cur - (cur - target) / 2;
                if next == target || next >= cur {
                    break;
                }
                target = next;
            }

            // Tighten the window to a single batch.
            let cur = best.rules()[i].clone();
            if cur.until_batch != Some(cur.from_batch + 1) {
                if evals >= max_evals {
                    return best;
                }
                let mut rules = best.rules().to_vec();
                rules[i].until_batch = Some(rules[i].from_batch + 1);
                let cand = rebuild(seed, rules);
                evals += 1;
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                }
            }

            // Weaken the kind.
            for weaker in weaker_kinds(&best.rules()[i].kind) {
                if evals >= max_evals {
                    return best;
                }
                let mut rules = best.rules().to_vec();
                rules[i].kind = weaker;
                let cand = rebuild(seed, rules);
                evals += 1;
                if still_fails(&cand) {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }

        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_plan_is_deterministic_and_nonempty() {
        let cfg = ChaosConfig::default();
        for seed in 0..64 {
            let a = sample_plan(seed, &cfg);
            let b = sample_plan(seed, &cfg);
            assert_eq!(a, b, "seed {seed}");
            assert!(!a.is_empty());
            assert!(a.len() <= cfg.max_faults);
        }
    }

    #[test]
    fn sampled_space_covers_every_category() {
        let cfg = ChaosConfig::default();
        let mut seen_crash = false;
        let mut seen_io = false;
        let mut seen_delay = false;
        let mut seen_schedule = false;
        let mut seen_kill = false;
        let mut seen_link = false;
        let mut seen_beats = false;
        for seed in 0..256 {
            for r in sample_plan(seed, &cfg).rules() {
                match r.kind {
                    FaultKind::Crash { .. } => seen_crash = true,
                    FaultKind::Io { .. } => seen_io = true,
                    FaultKind::DeliveryDelay { .. } => seen_delay = true,
                    FaultKind::TransferStall { .. }
                    | FaultKind::HashContention { .. }
                    | FaultKind::MemoryPressure { .. }
                    | FaultKind::TransferFailure => seen_schedule = true,
                    FaultKind::WorkerKill { .. } => seen_kill = true,
                    FaultKind::LinkDegrade { .. } => seen_link = true,
                    FaultKind::HeartbeatDrop { .. } => seen_beats = true,
                    _ => {}
                }
            }
        }
        assert!(seen_crash && seen_io && seen_delay && seen_schedule);
        assert!(
            seen_kill && seen_link && seen_beats,
            "cluster fault kinds must be reachable from the sampler"
        );
    }

    #[test]
    fn plan_json_round_trips() {
        let cfg = ChaosConfig::default();
        for seed in 0..64 {
            let plan = sample_plan(seed, &cfg);
            let text = plan_to_json(&plan).to_json_string();
            let parsed = gt_telemetry::json::parse(&text).expect("self-produced JSON parses");
            let back = plan_from_json(&parsed).expect("wire form rebuilds");
            assert_eq!(back, plan, "seed {seed}");
        }
    }

    #[test]
    fn cluster_rules_round_trip_through_json() {
        let plan = FaultPlan::new(77)
            .with_worker_kill(3, 2)
            .with_link_degrade(1, 4.0, 2, Some(6))
            .with_heartbeat_drop(5, 0, 3);
        let text = plan_to_json(&plan).to_json_string();
        let parsed = gt_telemetry::json::parse(&text).unwrap();
        assert_eq!(plan_from_json(&parsed).unwrap(), plan);
    }

    #[test]
    fn shrunk_worker_kill_repro_is_single_rule_and_replayable() {
        // A noisy campaign plan whose only real trigger is the worker
        // kill: the shrinker must isolate it, and the minimized plan must
        // survive the JSON wire form (the exact bytes CI uploads and
        // `repro --chaos-replay` consumes) still failing the oracle.
        let plan = FaultPlan::new(41)
            .with_transfer_stall(8.0, 1.0)
            .with_worker_kill(6, 3)
            .with_heartbeat_drop(2, 1, 2)
            .with_delivery_delay(4, 2);
        let fails = |p: &FaultPlan| (0..10).any(|b| !p.active(b, 0).worker_kills().is_empty());
        let min = shrink(&plan, fails, 300);
        assert_eq!(min.len(), 1, "{min:?}");
        assert!(matches!(min.rules()[0].kind, FaultKind::WorkerKill { .. }));
        assert_eq!(min.rules()[0].from_batch, 0, "rebased to batch 0");
        let text = plan_to_json(&min).to_json_string();
        let replayed = plan_from_json(&gt_telemetry::json::parse(&text).unwrap()).unwrap();
        assert_eq!(replayed, min);
        assert!(fails(&replayed), "replayable repro still fails the oracle");
    }

    #[test]
    fn plan_from_json_rejects_garbage() {
        let bad = gt_telemetry::json::parse(r#"{"rules": []}"#).unwrap();
        assert!(plan_from_json(&bad).is_err());
        let bad =
            gt_telemetry::json::parse(r#"{"seed": 1, "rules": [{"kind": "warp-core"}]}"#).unwrap();
        assert!(plan_from_json(&bad).is_err());
    }

    #[test]
    fn delivery_order_is_identity_without_delays() {
        let plan = FaultPlan::new(0).with_crash_at(3, CrashSite::MidJournal);
        assert_eq!(delivery_order(&plan, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn delivery_order_is_a_permutation_that_delays_the_target() {
        let plan = FaultPlan::new(0).with_delivery_delay(1, 2);
        let order = delivery_order(&plan, 5);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        // Batch 1 sorts at slot 3: after batches 2 and 3, tied-but-stable
        // before the batch submitted at 3.
        assert_eq!(order, vec![0, 2, 1, 3, 4]);
    }

    #[test]
    fn shrink_finds_the_single_guilty_rule() {
        // Oracle: fails iff a crash rule exists anywhere.
        let plan = FaultPlan::new(5)
            .with_transfer_stall(4.0, 1.0)
            .with_crash_at(6, CrashSite::MidJournal)
            .with_delivery_delay(3, 2)
            .with_io_fault(2, IoTarget::Journal, IoFault::TornWrite);
        let fails = |p: &FaultPlan| (0..10).any(|b| p.active(b, 0).crash_site().is_some());
        let min = shrink(&plan, fails, 200);
        assert_eq!(min.len(), 1, "one rule suffices: {min:?}");
        let rule = &min.rules()[0];
        assert!(matches!(rule.kind, FaultKind::Crash { .. }));
        // Rebased to batch 0 and weakened to the cheapest site that still
        // fails the (site-insensitive) oracle.
        assert_eq!(rule.from_batch, 0);
        assert_eq!(
            rule.kind,
            FaultKind::Crash {
                site: CrashSite::AfterCommit
            }
        );
        assert!(fails(&min));
    }

    #[test]
    fn shrink_keeps_conjunctive_causes() {
        // Oracle: fails only when BOTH a journal io fault AND a crash are
        // scheduled — the shrinker must not drop either.
        let plan = FaultPlan::new(9)
            .with_io_fault(4, IoTarget::Journal, IoFault::BitFlip { bit: 77 })
            .with_transfer_failure(0.5)
            .with_crash_at(5, CrashSite::MidCheckpoint)
            .with_transfer_stall(8.0, 1.0);
        let fails = |p: &FaultPlan| {
            let io = (0..10).any(|b| !p.active(b, 0).io_faults().is_empty());
            let crash = (0..10).any(|b| p.active(b, 0).crash_site().is_some());
            io && crash
        };
        let min = shrink(&plan, fails, 400);
        assert_eq!(min.len(), 2, "{min:?}");
        assert!(fails(&min));
        assert!(min
            .rules()
            .iter()
            .all(|r| matches!(r.kind, FaultKind::Crash { .. } | FaultKind::Io { .. })));
        assert!(min.rules().iter().all(|r| r.from_batch == 0));
    }

    #[test]
    fn shrink_respects_the_eval_budget() {
        let plan = sample_plan(3, &ChaosConfig::default());
        let mut evals = 0usize;
        let _ = shrink(
            &plan,
            |_| {
                evals += 1;
                true
            },
            7,
        );
        assert!(evals <= 7, "{evals} evals");
    }

    #[test]
    fn shrink_is_deterministic() {
        let plan = sample_plan(17, &ChaosConfig::default());
        let fails = |p: &FaultPlan| p.durability_rule_count() > 0 || p.len() > 2;
        let a = shrink(&plan, fails, 300);
        let b = shrink(&plan, fails, 300);
        assert_eq!(a, b);
    }
}
