//! Device and system models for GraphTensor-RS.
//!
//! The original GraphTensor runs CUDA kernels on an RTX 3090 and preprocessing
//! on a 12-core Xeon. This crate supplies the substitute substrate described in
//! `DESIGN.md` §2: kernels execute for real on the CPU while charging their
//! work (FLOPs, global-memory traffic, per-SM cache loads, allocations) to a
//! [`SimContext`]; a roofline model over those counters prices GPU kernel
//! latency, a PCIe model prices transfers, and a discrete-event simulator
//! composes host/GPU/PCIe tasks into end-to-end schedules.
//!
//! Everything here is deterministic: same inputs, same counters, same virtual
//! times.

pub mod cache;
pub mod chaos;
pub mod cluster;
pub mod counters;
pub mod des;
pub mod device;
pub mod fault;
pub mod lru;
pub mod memory;
pub mod timeline;
pub mod trace;
pub mod transfer;

pub use cache::CacheSim;
pub use chaos::{delivery_order, plan_from_json, plan_to_json, sample_plan, shrink, ChaosConfig};
pub use cluster::{ClusterSpec, HeartbeatConfig, NetLinkSpec, PhiDetector};
pub use counters::{KernelRecord, KernelStats, Phase, SimContext};
pub use des::{Resource, Schedule, ScheduledEvent, Simulator, TaskId, TaskSpec};
pub use device::{DeviceSpec, HostSpec, PcieSpec, SystemSpec};
pub use fault::{ActiveFaults, CrashSite, FaultKind, FaultPlan, FaultRule, IoFault, IoTarget};
pub use lru::LruCacheSim;
pub use memory::{MemoryTracker, OutOfMemory};
pub use timeline::{Timeline, TimelineEvent};
pub use trace::{cluster_to_traces, resource_track, schedule_to_trace, worker_process};
pub use transfer::TransferKind;
