//! Per-SM cache model for measuring *cache bloat* (§III, Fig 6b; §VI, Fig 17b).
//!
//! GPU thread blocks are scheduled onto streaming multiprocessors. When two
//! blocks on *different* SMs touch the same embedding row, the row is loaded
//! into both SMs' caches — the duplicated load is the cache bloat the paper
//! attributes to edge-wise scheduling. The model records, per SM, the set of
//! unique rows touched; total loaded bytes is the sum over SMs, so a row
//! touched on k SMs is charged k times while repeated touches on one SM are
//! free (intra-SM reuse, which all schedulers get).

use std::collections::HashSet;

/// Tracks embedding-row residency per SM during one kernel.
#[derive(Debug, Clone)]
pub struct CacheSim {
    per_sm: Vec<HashSet<u64>>,
    loaded_bytes: u64,
}

impl CacheSim {
    /// A fresh cache model for a device with `num_sms` SMs.
    pub fn new(num_sms: usize) -> Self {
        assert!(num_sms > 0, "device must have at least one SM");
        CacheSim {
            per_sm: vec![HashSet::new(); num_sms],
            loaded_bytes: 0,
        }
    }

    /// Number of SMs being modeled.
    pub fn num_sms(&self) -> usize {
        self.per_sm.len()
    }

    /// Thread block `block` touches row `row` of `bytes` bytes; the block is
    /// resident on SM `block % num_sms` (round-robin block scheduling).
    /// Returns true if this touch caused a (re-)load.
    pub fn touch_block(&mut self, block: usize, row: u64, bytes: u64) -> bool {
        let sm = block % self.per_sm.len();
        self.touch_sm(sm, row, bytes)
    }

    /// Row `row` is touched by a block pinned to SM `sm`.
    pub fn touch_sm(&mut self, sm: usize, row: u64, bytes: u64) -> bool {
        let newly = self.per_sm[sm].insert(row);
        if newly {
            self.loaded_bytes += bytes;
        }
        newly
    }

    /// Total bytes loaded into SM caches, counting cross-SM duplicates.
    pub fn loaded_bytes(&self) -> u64 {
        self.loaded_bytes
    }

    /// Number of distinct rows resident anywhere (the true working set).
    pub fn unique_rows(&self) -> usize {
        let mut all: HashSet<u64> = HashSet::new();
        for sm in &self.per_sm {
            all.extend(sm.iter().copied());
        }
        all.len()
    }

    /// Duplicated loads: total row-residencies minus unique rows.
    pub fn duplicate_rows(&self) -> usize {
        let total: usize = self.per_sm.iter().map(|s| s.len()).sum();
        total - self.unique_rows()
    }

    /// Cache bloat ratio: loaded bytes / unique-working-set bytes, minus one.
    /// Returns 0 when nothing was loaded. The paper reports this as "an
    /// average of 81.9% more data" for Graph-approach SDDMM (Fig 6b).
    pub fn bloat_fraction(&self, row_bytes: u64) -> f64 {
        let unique = self.unique_rows() as u64 * row_bytes;
        if unique == 0 {
            return 0.0;
        }
        self.loaded_bytes as f64 / unique as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_sm_reuse_is_free() {
        let mut c = CacheSim::new(4);
        assert!(c.touch_sm(0, 7, 100));
        assert!(!c.touch_sm(0, 7, 100));
        assert_eq!(c.loaded_bytes(), 100);
        assert_eq!(c.duplicate_rows(), 0);
    }

    #[test]
    fn cross_sm_touch_duplicates() {
        let mut c = CacheSim::new(4);
        c.touch_sm(0, 7, 100);
        c.touch_sm(1, 7, 100);
        assert_eq!(c.loaded_bytes(), 200);
        assert_eq!(c.unique_rows(), 1);
        assert_eq!(c.duplicate_rows(), 1);
        assert!((c.bloat_fraction(100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_round_robin_assignment() {
        let mut c = CacheSim::new(2);
        // blocks 0 and 2 land on SM 0; block 1 on SM 1.
        c.touch_block(0, 5, 10);
        c.touch_block(2, 5, 10); // same SM — reuse
        assert_eq!(c.loaded_bytes(), 10);
        c.touch_block(1, 5, 10); // other SM — duplicate
        assert_eq!(c.loaded_bytes(), 20);
    }

    #[test]
    fn empty_cache_has_zero_bloat() {
        let c = CacheSim::new(3);
        assert_eq!(c.bloat_fraction(64), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_sms_rejected() {
        CacheSim::new(0);
    }
}
