//! DES schedule → Chrome trace export.
//!
//! Renders a virtual-time [`Schedule`] as one Chrome-trace process with a
//! track per resource unit (`host core N`, `PCIe`, `GPU`), so Fig 13's
//! subtask overlap is literally visible in Perfetto: each scheduled task
//! becomes a slice on its unit's row, carrying its phase, item count, and
//! lock-wait time in the args pane.

use gt_telemetry::{Json, Trace};

use crate::des::{Resource, Schedule, ScheduledEvent};

/// Track name for a resource unit, matching the simulator's pools.
pub fn resource_track(resource: Resource, unit: usize) -> String {
    match resource {
        Resource::HostCore => format!("host core {unit}"),
        Resource::Pcie => "PCIe".to_string(),
        Resource::Gpu => "GPU".to_string(),
    }
}

/// Convert a schedule into one Chrome-trace process row named `process`.
/// Every scheduled task appears exactly once, on the track of the unit it
/// ran on, spanning its virtual `[start_us, end_us)`. Tasks failed by
/// injected faults are flagged `failed: true` in their args.
pub fn schedule_to_trace(schedule: &Schedule, process: &str) -> Trace {
    let mut trace = Trace::new(process);
    // Stable track order: host cores ascending, then PCIe, then GPU; slices
    // within a track ordered by start time.
    let mut ordered: Vec<&ScheduledEvent> = schedule.events.iter().collect();
    ordered.sort_by(|a, b| {
        rank(a)
            .cmp(&rank(b))
            .then(a.start_us.total_cmp(&b.start_us))
            .then(a.task.cmp(&b.task))
    });
    for e in ordered {
        let mut args: Vec<(String, Json)> = vec![
            ("task".to_string(), Json::from(e.task)),
            ("phase".to_string(), Json::from(e.phase.label())),
            ("items".to_string(), Json::from(e.items)),
            ("lock_wait_us".to_string(), Json::from(e.lock_wait_us)),
        ];
        if schedule.failed.contains(&e.task) {
            args.push(("failed".to_string(), Json::from(true)));
        }
        trace.duration(
            resource_track(e.resource, e.unit),
            e.label.clone(),
            "des",
            e.start_us,
            e.end_us - e.start_us,
            args,
        );
    }
    trace
}

/// Process name for cluster worker `worker`'s Perfetto track group.
pub fn worker_process(worker: usize) -> String {
    format!("worker {worker}")
}

/// Render one cluster batch as one Chrome-trace process per worker: each
/// `(worker, schedule)` pair becomes a `worker N` process whose tracks are
/// that worker's own cores/PCIe/GPU, so per-worker skew (and a hedged
/// straggler's long tail) is visible side by side in Perfetto.
pub fn cluster_to_traces(schedules: &[(usize, Schedule)]) -> Vec<Trace> {
    schedules
        .iter()
        .map(|(worker, schedule)| schedule_to_trace(schedule, &worker_process(*worker)))
        .collect()
}

fn rank(e: &ScheduledEvent) -> (u8, usize) {
    match e.resource {
        Resource::HostCore => (0, e.unit),
        Resource::Pcie => (1, e.unit),
        Resource::Gpu => (2, e.unit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Phase;
    use crate::des::{Simulator, TaskSpec};
    use crate::fault::{ActiveFaults, FaultKind};
    use gt_telemetry::{from_chrome_json, write_chrome_json};

    fn mixed_schedule() -> Schedule {
        let mut sim = Simulator::new(2);
        let s = sim.add(TaskSpec::new("S1", Resource::HostCore, 40.0, Phase::Sampling).items(64));
        let r = sim.add(TaskSpec::new("R1", Resource::HostCore, 30.0, Phase::Reindex).after(&[s]));
        let k = sim.add(
            TaskSpec::new("K1", Resource::HostCore, 25.0, Phase::Lookup)
                .after(&[r])
                .locked(1),
        );
        let t = sim.add(TaskSpec::new("T(K1)", Resource::Pcie, 50.0, Phase::Transfer).after(&[k]));
        sim.add(TaskSpec::new("A1", Resource::Gpu, 20.0, Phase::Aggregation).after(&[t]));
        sim.run_with_faults(&ActiveFaults {
            faults: vec![FaultKind::TransferFailure],
        })
    }

    #[test]
    fn every_task_appears_once_with_matching_times_and_track() {
        let schedule = mixed_schedule();
        let trace = schedule_to_trace(&schedule, "virtual time");
        assert_eq!(trace.events.len(), schedule.events.len());

        // Export to Chrome JSON and parse it back: the acceptance round-trip.
        let text = write_chrome_json(&[&trace]);
        let back = from_chrome_json(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].process, "virtual time");

        for e in &schedule.events {
            let matches: Vec<_> = back[0]
                .events
                .iter()
                .filter(|t| {
                    t.args
                        .iter()
                        .any(|(k, v)| k == "task" && v.as_f64() == Some(e.task as f64))
                })
                .collect();
            assert_eq!(matches.len(), 1, "task {} must appear exactly once", e.task);
            let t = matches[0];
            assert_eq!(t.name, e.label);
            assert_eq!(t.track, resource_track(e.resource, e.unit));
            assert_eq!(t.ts_us.to_bits(), e.start_us.to_bits());
            let dur = t.dur_us.unwrap();
            assert_eq!((t.ts_us + dur).to_bits(), e.end_us.to_bits());
        }
    }

    #[test]
    fn failed_tasks_are_flagged() {
        let schedule = mixed_schedule();
        assert!(schedule.has_failures());
        let trace = schedule_to_trace(&schedule, "virtual time");
        let flagged: Vec<_> = trace
            .events
            .iter()
            .filter(|e| {
                e.args
                    .iter()
                    .any(|(k, v)| k == "failed" && *v == Json::Bool(true))
            })
            .collect();
        assert_eq!(flagged.len(), schedule.failed.len());
        assert!(flagged.iter().all(|e| e.track == "PCIe"));
    }

    #[test]
    fn cluster_traces_get_one_process_per_worker() {
        let schedules: Vec<(usize, Schedule)> = vec![(0, mixed_schedule()), (2, mixed_schedule())];
        let traces = cluster_to_traces(&schedules);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].process, "worker 0");
        assert_eq!(traces[1].process, "worker 2");
        // The multi-process export round-trips with both processes intact.
        let text = write_chrome_json(&traces.iter().collect::<Vec<_>>());
        let back = from_chrome_json(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back.iter().any(|t| t.process == worker_process(2)));
    }

    #[test]
    fn tracks_cover_all_resource_units() {
        let schedule = mixed_schedule();
        let trace = schedule_to_trace(&schedule, "virtual time");
        let tracks = trace.tracks();
        assert!(tracks.contains(&"host core 0"));
        assert!(tracks.contains(&"PCIe"));
        assert!(tracks.contains(&"GPU"));
    }
}
