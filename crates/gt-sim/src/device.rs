//! Hardware specifications of the modeled testbed.
//!
//! Defaults mirror the paper's evaluation platform (§VI): an NVIDIA RTX 3090
//! (82 SMs @ 1.4 GHz, 24 GB GDDR6X) and a 12-core Intel Xeon Gold 5317 host
//! with DDR4-2933, connected over PCIe 3.0 x16.

/// GPU device model used to price kernel latencies with a roofline.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// L1/shared-memory capacity per SM, in bytes.
    pub l1_bytes_per_sm: usize,
    /// Cache line granularity for global-memory transactions, in bytes.
    pub cache_line_bytes: usize,
    /// Peak global-memory bandwidth, bytes per second.
    pub mem_bandwidth: f64,
    /// Peak fp32 throughput, FLOP per second.
    pub peak_flops: f64,
    /// Fixed cost of launching one kernel, in microseconds.
    pub kernel_launch_us: f64,
    /// Device memory capacity in bytes (allocation failures beyond this model
    /// the paper's out-of-memory cases, e.g. PyG NGCF on livejournal).
    pub device_mem_bytes: u64,
    /// Fraction of peak bandwidth achieved by streaming (coalesced) access.
    pub streaming_efficiency: f64,
    /// Fraction of peak bandwidth achieved by irregular (gather/scatter,
    /// sort) access. GPU sorts and random gathers run far below peak.
    pub irregular_efficiency: f64,
}

impl DeviceSpec {
    /// The paper's GPU: NVIDIA GeForce RTX 3090.
    pub fn rtx3090() -> Self {
        DeviceSpec {
            name: "RTX 3090",
            num_sms: 82,
            l1_bytes_per_sm: 128 * 1024,
            cache_line_bytes: 128,
            mem_bandwidth: 936.0e9,
            peak_flops: 35.6e12,
            kernel_launch_us: 5.0,
            device_mem_bytes: 24 * (1 << 30),
            streaming_efficiency: 0.75,
            irregular_efficiency: 0.08,
        }
    }

    /// A deliberately tiny GPU for tests: 4 SMs, small cache, 64 MiB memory.
    pub fn tiny() -> Self {
        DeviceSpec {
            name: "tiny-test-gpu",
            num_sms: 4,
            l1_bytes_per_sm: 16 * 1024,
            cache_line_bytes: 64,
            mem_bandwidth: 10.0e9,
            peak_flops: 100.0e9,
            kernel_launch_us: 2.0,
            device_mem_bytes: 64 << 20,
            streaming_efficiency: 0.75,
            irregular_efficiency: 0.10,
        }
    }

    /// NVIDIA A100 (SXM4 80GB): the sensitivity-study companion device —
    /// more SMs, much higher HBM2e bandwidth, same roofline shape.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100-80GB",
            num_sms: 108,
            l1_bytes_per_sm: 192 * 1024,
            cache_line_bytes: 128,
            mem_bandwidth: 2039.0e9,
            peak_flops: 19.5e12,
            kernel_launch_us: 5.0,
            device_mem_bytes: 80 * (1 << 30),
            streaming_efficiency: 0.8,
            irregular_efficiency: 0.08,
        }
    }

    /// Effective bandwidth in bytes/us for the given access pattern.
    pub fn effective_bw_per_us(&self, irregular: bool) -> f64 {
        let eff = if irregular {
            self.irregular_efficiency
        } else {
            self.streaming_efficiency
        };
        self.mem_bandwidth * eff / 1.0e6
    }
}

/// Host CPU model used by the discrete-event simulator for preprocessing.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpec {
    /// Human-readable host name.
    pub name: &'static str,
    /// Number of physical cores available to preprocessing threads.
    pub cores: usize,
    /// Sustained per-core throughput for graph preprocessing, expressed as
    /// "work units per microsecond". One work unit is one elementary
    /// preprocessing operation (one sampled neighbor, one hash probe, one
    /// gathered feature element, ...). ~100 ops/us ≈ 100M ops/s/core, a
    /// realistic figure for pointer-chasing graph code on a 3 GHz core.
    pub ops_per_us: f64,
    /// Host memory bandwidth, bytes per second (DDR4-2933, ~94 GB/s).
    pub mem_bandwidth: f64,
}

impl HostSpec {
    /// The paper's host: 12-core Intel Xeon Gold 5317 @ 3.0 GHz.
    pub fn xeon_gold_5317() -> Self {
        HostSpec {
            name: "Xeon Gold 5317 (12c)",
            cores: 12,
            ops_per_us: 100.0,
            mem_bandwidth: 94.0e9,
        }
    }

    /// Small host for tests: 2 cores.
    pub fn tiny() -> Self {
        HostSpec {
            name: "tiny-test-host",
            cores: 2,
            ops_per_us: 100.0,
            mem_bandwidth: 20.0e9,
        }
    }
}

/// PCIe link model for host→device transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct PcieSpec {
    /// Effective bandwidth for pinned (page-locked) transfers, bytes/s.
    /// PCIe 3.0 x16 sustains ~12 GB/s with pinned memory.
    pub pinned_bandwidth: f64,
    /// Effective bandwidth for pageable transfers, bytes/s. The driver must
    /// stage through an internal pinned buffer, roughly halving throughput.
    pub pageable_bandwidth: f64,
    /// Per-transfer fixed latency (driver + DMA setup), microseconds.
    pub latency_us: f64,
}

impl PcieSpec {
    /// PCIe 3.0 x16, as on the paper's testbed.
    pub fn gen3_x16() -> Self {
        PcieSpec {
            pinned_bandwidth: 12.0e9,
            pageable_bandwidth: 6.0e9,
            latency_us: 10.0,
        }
    }
}

/// Complete system: GPU + host + interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    pub gpu: DeviceSpec,
    pub host: HostSpec,
    pub pcie: PcieSpec,
}

impl SystemSpec {
    /// The paper's evaluation platform (§VI).
    pub fn paper_testbed() -> Self {
        SystemSpec {
            gpu: DeviceSpec::rtx3090(),
            host: HostSpec::xeon_gold_5317(),
            pcie: PcieSpec::gen3_x16(),
        }
    }

    /// Miniature system for fast unit tests.
    pub fn tiny() -> Self {
        SystemSpec {
            gpu: DeviceSpec::tiny(),
            host: HostSpec::tiny(),
            pcie: PcieSpec::gen3_x16(),
        }
    }
}

impl Default for SystemSpec {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx3090_has_82_sms() {
        let d = DeviceSpec::rtx3090();
        assert_eq!(d.num_sms, 82);
        assert!(d.peak_flops > 30.0e12);
    }

    #[test]
    fn effective_bandwidth_orders() {
        let d = DeviceSpec::rtx3090();
        assert!(d.effective_bw_per_us(false) > d.effective_bw_per_us(true));
    }

    #[test]
    fn pinned_beats_pageable() {
        let p = PcieSpec::gen3_x16();
        assert!(p.pinned_bandwidth > p.pageable_bandwidth);
    }

    #[test]
    fn default_is_paper_testbed() {
        assert_eq!(SystemSpec::default(), SystemSpec::paper_testbed());
    }
}
