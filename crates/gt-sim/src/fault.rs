//! Deterministic, seedable fault injection for the DES engine.
//!
//! Production GNN serving must survive stragglers, transfer stalls, memory
//! pressure, and contended hash tables (NeutronTP identifies load imbalance
//! as the dominant failure mode of GNN pipelines at scale). This module
//! models those faults *inside the simulated timeline*: a [`FaultPlan`]
//! holds seeded rules, and [`FaultPlan::active`] resolves which faults fire
//! for a given (batch, attempt) pair — a pure function of the plan seed, so
//! a run is exactly reproducible and a retry of the same batch re-rolls
//! only the transient rules.
//!
//! The DES engine consumes an [`ActiveFaults`] set via
//! [`Simulator::run_with_faults`](crate::des::Simulator::run_with_faults);
//! memory-pressure faults are consumed by the serving layer when it sizes
//! the device memory tracker. An empty set takes the exact `run()` code
//! path, so fault-free schedules are bit-identical to unsupervised ones.

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// PCIe transfers take `factor`× longer (congested/downtrained link).
    TransferStall { factor: f64 },
    /// The batch's DMA fails outright; every PCIe task in the schedule is
    /// recorded as failed and the serving layer must retry the batch.
    TransferFailure,
    /// Host core `core` runs `factor`× slower (thermal throttling, noisy
    /// neighbor). Tasks placed on that core stretch; others are untouched.
    StragglerCore { core: usize, factor: f64 },
    /// Device memory capacity is reduced to `fraction` of nominal, forcing
    /// OOM on batches that would otherwise fit.
    MemoryPressure { fraction: f64 },
    /// Tasks holding a lock group take `factor`× longer (VID hash-table
    /// contention spike, Fig 14).
    HashContention { factor: f64 },
    /// The serving layer stalls for `extra_us` of virtual time on top of the
    /// batch's modeled latency (GC pause, co-tenant CPU steal, slow RPC
    /// downstream). Consumed by the overload controller's admission clock,
    /// not the DES — the preprocessing schedule itself is untouched.
    ServeDelay { extra_us: f64 },
    /// The serving process dies at `site` while handling the batch.
    /// Consumed by the durability layer (`gt-core::serve`), which simulates
    /// the death by leaving exactly the on-disk state a real crash at that
    /// point would leave (torn journal record, torn checkpoint temp file)
    /// and surfacing a typed error. Inert in the DES.
    Crash { site: CrashSite },
    /// A storage-level fault hits the next `target` operation while the
    /// batch is served: a torn write, a short read, ENOSPC, or a single-bit
    /// flip of the in-flight bytes. Consumed by the durability layer, which
    /// arms the `gt-tensor` chaos IO shim for the batch; inert in the DES.
    Io { target: IoTarget, fault: IoFault },
    /// The batch's request is delivered `slots` positions later than it was
    /// submitted (delayed delivery / reordering in the ingestion path).
    /// Consumed by the chaos campaign driver, which derives the actual
    /// delivery order from these rules before serving; inert everywhere
    /// else — the *workload order* changes, not the pipeline's behavior.
    DeliveryDelay { slots: u32 },
    /// Cluster worker `worker` dies before processing the batch: its
    /// in-memory state is lost and a survivor must adopt its partition by
    /// re-replaying the journal. Consumed by the cluster supervisor
    /// (`gt-core::cluster`); inert in the single-node DES and serving
    /// layers. Worker indices are taken modulo the actual worker count.
    WorkerKill { worker: usize },
    /// Worker `worker`'s network link runs `factor`× slower. A ring
    /// collective moves at the pace of its slowest link, so one degraded
    /// worker stretches every collective it participates in. Consumed by
    /// the cluster supervisor; inert elsewhere.
    LinkDegrade { worker: usize, factor: f64 },
    /// Worker `worker`'s next `beats` heartbeats are dropped in flight
    /// (the worker is healthy — the network ate the beats). Exercises the
    /// phi-style failure detector's false-suspicion path: a long enough
    /// gap raises phi past the threshold without any worker actually
    /// dying. Consumed by the cluster supervisor; inert elsewhere.
    HeartbeatDrop { worker: usize, beats: u32 },
}

/// Which durable artifact an injected [`IoFault`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoTarget {
    /// The parameter checkpoint (staging writes, loads).
    Checkpoint,
    /// The write-ahead outcome journal (appends, recovery reads).
    Journal,
}

impl IoTarget {
    /// Stable kebab-case label used in telemetry events and plan JSON.
    pub fn label(&self) -> &'static str {
        match self {
            IoTarget::Checkpoint => "checkpoint",
            IoTarget::Journal => "journal",
        }
    }

    /// Parse an [`IoTarget::label`] back (plan JSON / CLI parsing).
    pub fn parse(s: &str) -> Option<IoTarget> {
        match s {
            "checkpoint" => Some(IoTarget::Checkpoint),
            "journal" => Some(IoTarget::Journal),
            _ => None,
        }
    }
}

/// One storage-level fault kind (see [`FaultKind::Io`]).
///
/// All four are *recoverable or detectable* by design: torn writes and
/// ENOSPC surface as errors whose on-disk residue recovery repairs; a short
/// read is caught by length validation and retried; a bit flip of in-flight
/// bytes is caught by the CRC framing — either truncated away as a torn
/// tail (and the unacknowledged batch re-served) or surfaced as typed
/// corruption. What must never happen is a silent wrong answer; the chaos
/// oracle (docs/fault_model.md §Chaos campaigns) asserts exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The write persists only a prefix of the bytes, then fails — the
    /// kernel-level torn write a power cut mid-`write(2)` leaves.
    TornWrite,
    /// The next read returns fewer bytes than the file holds (interrupted
    /// syscall, flaky NFS). Callers must validate lengths, not trust EOF.
    ShortRead,
    /// The write fails outright with "no space left on device", persisting
    /// nothing.
    Enospc,
    /// Bit `bit` (mod the buffer's bit width) of the in-flight bytes is
    /// flipped before they hit disk; the write itself reports success —
    /// the firmware lied. Detection is the CRC framing's job.
    BitFlip { bit: u32 },
}

impl IoFault {
    /// Stable kebab-case label used in telemetry events and plan JSON.
    pub fn label(&self) -> &'static str {
        match self {
            IoFault::TornWrite => "torn-write",
            IoFault::ShortRead => "short-read",
            IoFault::Enospc => "enospc",
            IoFault::BitFlip { .. } => "bit-flip",
        }
    }
}

/// Where, within one served batch's durability protocol, an injected crash
/// kills the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// Mid-append to the outcome journal: a torn, half-written record is
    /// left at the tail.
    MidJournal,
    /// Mid-checkpoint save: a torn temporary file is left next to the (still
    /// intact) previous checkpoint.
    MidCheckpoint,
    /// After the batch fully committed (journal appended, checkpoint
    /// renamed) but before the caller saw the report.
    AfterCommit,
}

impl CrashSite {
    /// Stable kebab-case label used in telemetry events and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            CrashSite::MidJournal => "mid-journal",
            CrashSite::MidCheckpoint => "mid-checkpoint",
            CrashSite::AfterCommit => "after-commit",
        }
    }

    /// Parse a [`CrashSite::label`] back (CLI flag parsing).
    pub fn parse(s: &str) -> Option<CrashSite> {
        match s {
            "mid-journal" => Some(CrashSite::MidJournal),
            "mid-checkpoint" => Some(CrashSite::MidCheckpoint),
            "after-commit" => Some(CrashSite::AfterCommit),
            _ => None,
        }
    }
}

/// A seeded rule: which batches a fault applies to and how often it fires.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    pub kind: FaultKind,
    /// Probability the fault fires for a given batch (1.0 = always).
    pub probability: f64,
    /// First batch index the rule applies to.
    pub from_batch: usize,
    /// One-past-last batch index (`None` = open-ended).
    pub until_batch: Option<usize>,
    /// Transient rules re-roll on every retry attempt (a retried batch
    /// usually clears them); persistent rules roll once per batch, so every
    /// attempt of an afflicted batch sees the same fault.
    pub transient: bool,
}

/// A deterministic, seedable collection of fault rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan: no faults ever fire.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// True when the plan has no rules (the fault-free fast path).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules in the plan.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Add an arbitrary rule.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Transient transfer failure with probability `p` per attempt.
    pub fn with_transfer_failure(self, p: f64) -> Self {
        self.with_rule(FaultRule {
            kind: FaultKind::TransferFailure,
            probability: p,
            from_batch: 0,
            until_batch: None,
            transient: true,
        })
    }

    /// Transient PCIe slowdown by `factor` with probability `p` per attempt.
    pub fn with_transfer_stall(self, factor: f64, p: f64) -> Self {
        assert!(factor >= 1.0, "stall factor must be >= 1");
        self.with_rule(FaultRule {
            kind: FaultKind::TransferStall { factor },
            probability: p,
            from_batch: 0,
            until_batch: None,
            transient: true,
        })
    }

    /// Persistent straggler: host core `core` always runs `factor`× slower.
    pub fn with_straggler(self, core: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor must be >= 1");
        self.with_rule(FaultRule {
            kind: FaultKind::StragglerCore { core, factor },
            probability: 1.0,
            from_batch: 0,
            until_batch: None,
            transient: false,
        })
    }

    /// Memory pressure for batches in `[from, until)`: capacity is reduced
    /// to `fraction` of nominal for every attempt of those batches.
    pub fn with_memory_pressure(self, fraction: f64, from: usize, until: Option<usize>) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "memory fraction must be in (0, 1]"
        );
        self.with_rule(FaultRule {
            kind: FaultKind::MemoryPressure { fraction },
            probability: 1.0,
            from_batch: from,
            until_batch: until,
            transient: false,
        })
    }

    /// Transient memory pressure: capacity drops to `fraction` with
    /// probability `p`, re-rolled on each retry (co-tenant burst).
    pub fn with_transient_memory_pressure(self, fraction: f64, p: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "memory fraction must be in (0, 1]"
        );
        self.with_rule(FaultRule {
            kind: FaultKind::MemoryPressure { fraction },
            probability: p,
            from_batch: 0,
            until_batch: None,
            transient: true,
        })
    }

    /// Transient serving stall: the batch takes `extra_us` longer end to end
    /// with probability `p` (virtual time; drives the overload controller).
    pub fn with_serve_delay(self, extra_us: f64, p: f64) -> Self {
        assert!(extra_us >= 0.0, "stall must not be negative");
        self.with_rule(FaultRule {
            kind: FaultKind::ServeDelay { extra_us },
            probability: p,
            from_batch: 0,
            until_batch: None,
            transient: true,
        })
    }

    /// Persistent serving stall over batches `[from, until)` — the sustained
    /// slowdown that backs an admission queue up.
    pub fn with_serve_delay_window(self, extra_us: f64, from: usize, until: Option<usize>) -> Self {
        assert!(extra_us >= 0.0, "stall must not be negative");
        self.with_rule(FaultRule {
            kind: FaultKind::ServeDelay { extra_us },
            probability: 1.0,
            from_batch: from,
            until_batch: until,
            transient: false,
        })
    }

    /// Kill the process at `site` while serving batch `batch` (fires exactly
    /// once: probability 1 over the one-batch window).
    pub fn with_crash_at(self, batch: usize, site: CrashSite) -> Self {
        self.with_rule(FaultRule {
            kind: FaultKind::Crash { site },
            probability: 1.0,
            from_batch: batch,
            until_batch: Some(batch + 1),
            transient: false,
        })
    }

    /// Inject a storage fault on the next `target` operation while serving
    /// batch `batch` (fires exactly once, like [`FaultPlan::with_crash_at`]).
    pub fn with_io_fault(self, batch: usize, target: IoTarget, fault: IoFault) -> Self {
        self.with_rule(FaultRule {
            kind: FaultKind::Io { target, fault },
            probability: 1.0,
            from_batch: batch,
            until_batch: Some(batch + 1),
            transient: false,
        })
    }

    /// Delay delivery of batch `batch` by `slots` positions in the
    /// submission stream (see [`FaultKind::DeliveryDelay`]).
    pub fn with_delivery_delay(self, batch: usize, slots: u32) -> Self {
        self.with_rule(FaultRule {
            kind: FaultKind::DeliveryDelay { slots },
            probability: 1.0,
            from_batch: batch,
            until_batch: Some(batch + 1),
            transient: false,
        })
    }

    /// Kill cluster worker `worker` while batch `batch` is in flight
    /// (fires exactly once, like [`FaultPlan::with_crash_at`]).
    pub fn with_worker_kill(self, batch: usize, worker: usize) -> Self {
        self.with_rule(FaultRule {
            kind: FaultKind::WorkerKill { worker },
            probability: 1.0,
            from_batch: batch,
            until_batch: Some(batch + 1),
            transient: false,
        })
    }

    /// Persistent network-link degradation on worker `worker` by `factor`
    /// over batches `[from, until)`.
    pub fn with_link_degrade(
        self,
        worker: usize,
        factor: f64,
        from: usize,
        until: Option<usize>,
    ) -> Self {
        assert!(factor >= 1.0, "link degrade factor must be >= 1");
        self.with_rule(FaultRule {
            kind: FaultKind::LinkDegrade { worker, factor },
            probability: 1.0,
            from_batch: from,
            until_batch: until,
            transient: false,
        })
    }

    /// Drop the next `beats` heartbeats from worker `worker` while batch
    /// `batch` is in flight (fires exactly once).
    pub fn with_heartbeat_drop(self, batch: usize, worker: usize, beats: u32) -> Self {
        assert!(beats >= 1, "must drop at least one beat");
        self.with_rule(FaultRule {
            kind: FaultKind::HeartbeatDrop { worker, beats },
            probability: 1.0,
            from_batch: batch,
            until_batch: Some(batch + 1),
            transient: false,
        })
    }

    /// Transient hash-table contention spike by `factor` with probability `p`.
    pub fn with_contention_spike(self, factor: f64, p: f64) -> Self {
        assert!(factor >= 1.0, "contention factor must be >= 1");
        self.with_rule(FaultRule {
            kind: FaultKind::HashContention { factor },
            probability: p,
            from_batch: 0,
            until_batch: None,
            transient: true,
        })
    }

    /// The plan's seed (drives per-rule probability rolls).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Read access to the rules, in insertion order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// The same plan with every durability-layer rule (crashes, IO faults,
    /// worker kills) neutralized: the fault-free reference a chaos campaign
    /// compares recovered state against. Neutralized rules keep their slot
    /// with an empty batch window instead of being removed, so the
    /// probability rolls of every *other* rule — which hash the rule's
    /// index — are bit-identical with and without the durability faults.
    /// Workload-shaping rules (stalls, memory pressure, delivery delays,
    /// link degradation, heartbeat drops) survive: they are part of the
    /// workload, not of the crash surface under test.
    pub fn without_durability_rules(&self) -> FaultPlan {
        let rules = self
            .rules
            .iter()
            .map(|r| match r.kind {
                FaultKind::Crash { .. } | FaultKind::Io { .. } | FaultKind::WorkerKill { .. } => {
                    FaultRule {
                        from_batch: 0,
                        until_batch: Some(0),
                        ..r.clone()
                    }
                }
                _ => r.clone(),
            })
            .collect();
        FaultPlan {
            seed: self.seed,
            rules,
        }
    }

    /// Count of durability-layer rules (crashes, IO faults, worker kills)
    /// with a non-empty window — the bound a chaos campaign's
    /// recovery-cycle budget is derived from.
    pub fn durability_rule_count(&self) -> usize {
        self.rules
            .iter()
            .filter(|r| {
                matches!(
                    r.kind,
                    FaultKind::Crash { .. } | FaultKind::Io { .. } | FaultKind::WorkerKill { .. }
                ) && r.until_batch != Some(r.from_batch)
            })
            .count()
    }

    /// Resolve the faults that fire for `(batch, attempt)`.
    ///
    /// Deterministic: the roll for rule `i` hashes `(seed, batch, i)` — plus
    /// `attempt` for transient rules — through splitmix64, so two runs with
    /// the same plan see identical faults, and persistent faults afflict
    /// every retry of a batch identically.
    pub fn active(&self, batch: usize, attempt: usize) -> ActiveFaults {
        let mut faults = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if batch < rule.from_batch {
                continue;
            }
            if let Some(until) = rule.until_batch {
                if batch >= until {
                    continue;
                }
            }
            let roll_attempt = if rule.transient { attempt } else { 0 };
            if roll(self.seed, batch, roll_attempt, i) < rule.probability {
                faults.push(rule.kind);
            }
        }
        ActiveFaults { faults }
    }
}

/// The faults that fire for one (batch, attempt) — what the DES engine and
/// the serving layer actually consume.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActiveFaults {
    pub faults: Vec<FaultKind>,
}

impl ActiveFaults {
    /// No faults: the DES takes the exact unsupervised code path.
    pub fn none() -> Self {
        ActiveFaults::default()
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Combined PCIe slowdown factor, if any stall is active.
    pub fn pcie_slowdown(&self) -> Option<f64> {
        let f: f64 = self
            .faults
            .iter()
            .filter_map(|k| match k {
                FaultKind::TransferStall { factor } => Some(*factor),
                _ => None,
            })
            .product();
        if f == 1.0 {
            None
        } else {
            Some(f)
        }
    }

    /// Combined slowdown for tasks holding a lock group, if any.
    pub fn lock_slowdown(&self) -> Option<f64> {
        let f: f64 = self
            .faults
            .iter()
            .filter_map(|k| match k {
                FaultKind::HashContention { factor } => Some(*factor),
                _ => None,
            })
            .product();
        if f == 1.0 {
            None
        } else {
            Some(f)
        }
    }

    /// Slowdown for host core `core`, if a straggler fault targets it.
    pub fn straggler(&self, core: usize) -> Option<f64> {
        let f: f64 = self
            .faults
            .iter()
            .filter_map(|k| match k {
                FaultKind::StragglerCore { core: c, factor } if *c == core => Some(*factor),
                _ => None,
            })
            .product();
        if f == 1.0 {
            None
        } else {
            Some(f)
        }
    }

    /// True when a transfer failure is active.
    pub fn fails_transfers(&self) -> bool {
        self.faults
            .iter()
            .any(|k| matches!(k, FaultKind::TransferFailure))
    }

    /// Tightest device-memory capacity fraction, if memory pressure is
    /// active.
    pub fn memory_fraction(&self) -> Option<f64> {
        self.faults
            .iter()
            .filter_map(|k| match k {
                FaultKind::MemoryPressure { fraction } => Some(*fraction),
                _ => None,
            })
            .fold(None, |acc, f| Some(acc.map_or(f, |a: f64| a.min(f))))
    }

    /// Total serving-layer stall in virtual microseconds, if any
    /// [`FaultKind::ServeDelay`] is active (stalls add up: a GC pause and a
    /// slow downstream compound).
    pub fn serve_delay_us(&self) -> Option<f64> {
        let total: f64 = self
            .faults
            .iter()
            .filter_map(|k| match k {
                FaultKind::ServeDelay { extra_us } => Some(*extra_us),
                _ => None,
            })
            .sum();
        if total == 0.0 {
            None
        } else {
            Some(total)
        }
    }

    /// The injected crash site for this batch, if a [`FaultKind::Crash`] is
    /// active (first rule wins when several are configured).
    pub fn crash_site(&self) -> Option<CrashSite> {
        self.faults.iter().find_map(|k| match k {
            FaultKind::Crash { site } => Some(*site),
            _ => None,
        })
    }

    /// The storage faults armed for this batch, in rule order — what the
    /// durability layer hands to the `gt-tensor` chaos IO shim.
    pub fn io_faults(&self) -> Vec<(IoTarget, IoFault)> {
        self.faults
            .iter()
            .filter_map(|k| match k {
                FaultKind::Io { target, fault } => Some((*target, *fault)),
                _ => None,
            })
            .collect()
    }

    /// Cluster workers killed while this batch is in flight, in rule order
    /// (raw indices — the cluster layer maps them modulo its worker count).
    pub fn worker_kills(&self) -> Vec<usize> {
        self.faults
            .iter()
            .filter_map(|k| match k {
                FaultKind::WorkerKill { worker } => Some(*worker),
                _ => None,
            })
            .collect()
    }

    /// Combined network-link slowdown for worker `worker`, if any
    /// [`FaultKind::LinkDegrade`] targets it (factors compound).
    pub fn link_degrade(&self, worker: usize) -> Option<f64> {
        let f: f64 = self
            .faults
            .iter()
            .filter_map(|k| match k {
                FaultKind::LinkDegrade { worker: w, factor } if *w == worker => Some(*factor),
                _ => None,
            })
            .product();
        if f == 1.0 {
            None
        } else {
            Some(f)
        }
    }

    /// Total heartbeats dropped from worker `worker` for this batch.
    pub fn heartbeat_drops(&self, worker: usize) -> u32 {
        self.faults
            .iter()
            .filter_map(|k| match k {
                FaultKind::HeartbeatDrop { worker: w, beats } if *w == worker => Some(*beats),
                _ => None,
            })
            .sum()
    }

    /// Total delivery delay for this batch in stream slots, if any
    /// [`FaultKind::DeliveryDelay`] is active (delays compound).
    pub fn delivery_delay(&self) -> Option<usize> {
        let total: u32 = self
            .faults
            .iter()
            .filter_map(|k| match k {
                FaultKind::DeliveryDelay { slots } => Some(*slots),
                _ => None,
            })
            .sum();
        if total == 0 {
            None
        } else {
            Some(total as usize)
        }
    }

    /// The subset of faults the DES engine consumes. Serving-layer faults
    /// (crashes, serve stalls, storage faults, delivery delays) and
    /// cluster-layer faults (worker kills, link degradation, heartbeat
    /// drops) are filtered out so a plan that only injects them still
    /// drives the DES down the exact fault-free code path — preserving the
    /// bit-identity the recovery protocol replays against.
    pub fn des_relevant(&self) -> ActiveFaults {
        ActiveFaults {
            faults: self
                .faults
                .iter()
                .copied()
                .filter(|k| {
                    !matches!(
                        k,
                        FaultKind::ServeDelay { .. }
                            | FaultKind::Crash { .. }
                            | FaultKind::Io { .. }
                            | FaultKind::DeliveryDelay { .. }
                            | FaultKind::WorkerKill { .. }
                            | FaultKind::LinkDegrade { .. }
                            | FaultKind::HeartbeatDrop { .. }
                    )
                })
                .collect(),
        }
    }

    /// True when any fault stretches DES task durations (the schedule
    /// differs from the fault-free one).
    pub fn perturbs_schedule(&self) -> bool {
        self.faults.iter().any(|k| {
            matches!(
                k,
                FaultKind::TransferStall { .. }
                    | FaultKind::StragglerCore { .. }
                    | FaultKind::HashContention { .. }
                    | FaultKind::TransferFailure
            )
        })
    }
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic roll in `[0, 1)` for `(seed, batch, attempt, rule)`.
fn roll(seed: u64, batch: usize, attempt: usize, rule: usize) -> f64 {
    let mut h = splitmix64(seed);
    h = splitmix64(h ^ (batch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    h = splitmix64(h ^ (attempt as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    h = splitmix64(h ^ (rule as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_fires_nothing() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_empty());
        for b in 0..100 {
            assert!(plan.active(b, 0).is_empty());
        }
    }

    #[test]
    fn active_is_deterministic() {
        let plan = FaultPlan::new(42)
            .with_transfer_failure(0.3)
            .with_contention_spike(4.0, 0.5)
            .with_straggler(1, 8.0);
        for b in 0..50 {
            for a in 0..3 {
                assert_eq!(plan.active(b, a), plan.active(b, a));
            }
        }
    }

    #[test]
    fn probability_bounds() {
        let always = FaultPlan::new(1).with_transfer_failure(1.0);
        let never = FaultPlan::new(1).with_transfer_failure(0.0);
        for b in 0..50 {
            assert!(always.active(b, 0).fails_transfers());
            assert!(!never.active(b, 0).fails_transfers());
        }
    }

    #[test]
    fn probability_is_roughly_respected() {
        let plan = FaultPlan::new(9).with_transfer_failure(0.25);
        let fired = (0..2000)
            .filter(|&b| plan.active(b, 0).fails_transfers())
            .count();
        let frac = fired as f64 / 2000.0;
        assert!((frac - 0.25).abs() < 0.05, "observed {frac}");
    }

    #[test]
    fn transient_rules_reroll_per_attempt_persistent_do_not() {
        let plan = FaultPlan::new(3)
            .with_transfer_failure(0.5)
            .with_straggler(0, 2.0);
        // Persistent straggler identical across attempts for every batch.
        for b in 0..30 {
            let s0 = plan.active(b, 0).straggler(0);
            for a in 1..4 {
                assert_eq!(plan.active(b, a).straggler(0), s0);
            }
        }
        // Transient failure differs across attempts for at least one batch.
        let differs = (0..30)
            .any(|b| plan.active(b, 0).fails_transfers() != plan.active(b, 1).fails_transfers());
        assert!(differs, "transient rolls never changed across attempts");
    }

    #[test]
    fn batch_window_is_honored() {
        let plan = FaultPlan::new(0).with_memory_pressure(0.5, 3, Some(5));
        for b in 0..10 {
            let active = plan.active(b, 0).memory_fraction().is_some();
            assert_eq!(active, (3..5).contains(&b), "batch {b}");
        }
    }

    #[test]
    fn combined_factors_multiply() {
        let f = ActiveFaults {
            faults: vec![
                FaultKind::TransferStall { factor: 2.0 },
                FaultKind::TransferStall { factor: 3.0 },
                FaultKind::MemoryPressure { fraction: 0.5 },
                FaultKind::MemoryPressure { fraction: 0.25 },
            ],
        };
        assert_eq!(f.pcie_slowdown(), Some(6.0));
        assert_eq!(f.memory_fraction(), Some(0.25));
        assert_eq!(f.lock_slowdown(), None);
        assert!(!f.perturbs_schedule() || f.pcie_slowdown().is_some());
    }

    #[test]
    fn none_has_no_effects() {
        let f = ActiveFaults::none();
        assert!(f.is_empty());
        assert!(f.pcie_slowdown().is_none());
        assert!(f.lock_slowdown().is_none());
        assert!(f.straggler(0).is_none());
        assert!(f.memory_fraction().is_none());
        assert!(!f.fails_transfers());
        assert!(!f.perturbs_schedule());
        assert!(f.serve_delay_us().is_none());
        assert!(f.crash_site().is_none());
    }

    #[test]
    fn crash_fires_exactly_on_target_batch() {
        let plan = FaultPlan::new(5).with_crash_at(7, CrashSite::MidJournal);
        for b in 0..20 {
            let site = plan.active(b, 0).crash_site();
            if b == 7 {
                assert_eq!(site, Some(CrashSite::MidJournal));
                // Persistent: every retry attempt of the batch crashes too.
                assert_eq!(plan.active(b, 3).crash_site(), Some(CrashSite::MidJournal));
            } else {
                assert_eq!(site, None, "batch {b}");
            }
        }
    }

    #[test]
    fn serve_delays_accumulate() {
        let f = ActiveFaults {
            faults: vec![
                FaultKind::ServeDelay { extra_us: 150.0 },
                FaultKind::ServeDelay { extra_us: 50.0 },
            ],
        };
        assert_eq!(f.serve_delay_us(), Some(200.0));
        let windowed = FaultPlan::new(0).with_serve_delay_window(300.0, 2, Some(4));
        for b in 0..6 {
            let expect = (2..4).contains(&b).then_some(300.0);
            assert_eq!(windowed.active(b, 0).serve_delay_us(), expect, "batch {b}");
        }
    }

    #[test]
    fn serving_faults_are_invisible_to_the_des() {
        let f = ActiveFaults {
            faults: vec![
                FaultKind::ServeDelay { extra_us: 99.0 },
                FaultKind::Crash {
                    site: CrashSite::AfterCommit,
                },
            ],
        };
        assert!(!f.perturbs_schedule());
        assert!(f.des_relevant().is_empty());

        let mixed = ActiveFaults {
            faults: vec![
                FaultKind::TransferStall { factor: 2.0 },
                FaultKind::Crash {
                    site: CrashSite::MidCheckpoint,
                },
            ],
        };
        let des = mixed.des_relevant();
        assert_eq!(des.faults, vec![FaultKind::TransferStall { factor: 2.0 }]);
        assert_eq!(mixed.crash_site(), Some(CrashSite::MidCheckpoint));
    }

    #[test]
    fn io_faults_and_delivery_delays_fire_on_target_batch_only() {
        let plan = FaultPlan::new(11)
            .with_io_fault(2, IoTarget::Journal, IoFault::TornWrite)
            .with_io_fault(2, IoTarget::Checkpoint, IoFault::BitFlip { bit: 9 })
            .with_delivery_delay(4, 3);
        for b in 0..8 {
            let active = plan.active(b, 0);
            if b == 2 {
                assert_eq!(
                    active.io_faults(),
                    vec![
                        (IoTarget::Journal, IoFault::TornWrite),
                        (IoTarget::Checkpoint, IoFault::BitFlip { bit: 9 }),
                    ]
                );
            } else {
                assert!(active.io_faults().is_empty(), "batch {b}");
            }
            assert_eq!(active.delivery_delay(), (b == 4).then_some(3), "batch {b}");
            // Storage and delivery faults never reach the DES or stretch
            // the schedule — the trainer must stay on the fault-free path.
            assert!(active.des_relevant().io_faults().is_empty());
            assert!(!active.perturbs_schedule() || b == usize::MAX);
        }
    }

    /// Stripping durability rules must not move the probability rolls of
    /// the surviving rules: rolls hash the rule *index*, so neutralized
    /// rules keep their slot (empty window) instead of being removed.
    #[test]
    fn without_durability_rules_preserves_other_rolls() {
        let plan = FaultPlan::new(21)
            .with_transfer_failure(0.5)
            .with_crash_at(3, CrashSite::MidJournal)
            .with_io_fault(5, IoTarget::Journal, IoFault::Enospc)
            .with_transient_memory_pressure(0.5, 0.4)
            .with_delivery_delay(2, 1);
        let stripped = plan.without_durability_rules();
        assert_eq!(stripped.len(), plan.len());
        assert_eq!(plan.durability_rule_count(), 2);
        assert_eq!(stripped.durability_rule_count(), 0);
        for b in 0..10 {
            for a in 0..3 {
                let full = plan.active(b, a);
                let bare = stripped.active(b, a);
                assert!(bare.crash_site().is_none());
                assert!(bare.io_faults().is_empty());
                assert_eq!(full.fails_transfers(), bare.fails_transfers());
                assert_eq!(full.memory_fraction(), bare.memory_fraction());
                assert_eq!(full.delivery_delay(), bare.delivery_delay());
            }
        }
    }

    #[test]
    fn cluster_faults_fire_on_window_and_stay_out_of_the_des() {
        let plan = FaultPlan::new(13)
            .with_worker_kill(3, 1)
            .with_link_degrade(2, 4.0, 1, Some(5))
            .with_heartbeat_drop(2, 0, 3);
        for b in 0..8 {
            let active = plan.active(b, 0);
            assert_eq!(
                active.worker_kills(),
                if b == 3 { vec![1] } else { vec![] },
                "batch {b}"
            );
            assert_eq!(
                active.link_degrade(2),
                (1..5).contains(&b).then_some(4.0),
                "batch {b}"
            );
            assert_eq!(active.link_degrade(0), None);
            assert_eq!(active.heartbeat_drops(0), if b == 2 { 3 } else { 0 });
            assert_eq!(active.heartbeat_drops(1), 0);
            // Cluster faults never reach the single-node DES or serving
            // layers: the inner supervisor stays on the fault-free path.
            assert!(active.des_relevant().is_empty(), "batch {b}");
            assert!(!active.perturbs_schedule());
            assert!(active.crash_site().is_none());
        }
    }

    #[test]
    fn link_degrade_factors_compound() {
        let f = ActiveFaults {
            faults: vec![
                FaultKind::LinkDegrade {
                    worker: 1,
                    factor: 2.0,
                },
                FaultKind::LinkDegrade {
                    worker: 1,
                    factor: 3.0,
                },
                FaultKind::HeartbeatDrop {
                    worker: 1,
                    beats: 2,
                },
                FaultKind::HeartbeatDrop {
                    worker: 1,
                    beats: 1,
                },
            ],
        };
        assert_eq!(f.link_degrade(1), Some(6.0));
        assert_eq!(f.heartbeat_drops(1), 3);
    }

    #[test]
    fn worker_kill_counts_as_a_durability_rule() {
        let plan = FaultPlan::new(8)
            .with_worker_kill(4, 2)
            .with_link_degrade(0, 2.0, 0, None)
            .with_heartbeat_drop(1, 1, 2);
        assert_eq!(plan.durability_rule_count(), 1);
        let stripped = plan.without_durability_rules();
        assert_eq!(stripped.durability_rule_count(), 0);
        for b in 0..8 {
            let bare = stripped.active(b, 0);
            assert!(bare.worker_kills().is_empty(), "batch {b}");
            // Workload-shaping cluster rules survive the strip.
            assert_eq!(bare.link_degrade(0), plan.active(b, 0).link_degrade(0));
            assert_eq!(
                bare.heartbeat_drops(1),
                plan.active(b, 0).heartbeat_drops(1)
            );
        }
    }

    #[test]
    fn io_target_labels_round_trip() {
        for t in [IoTarget::Checkpoint, IoTarget::Journal] {
            assert_eq!(IoTarget::parse(t.label()), Some(t));
        }
        assert_eq!(IoTarget::parse("floppy"), None);
        for f in [
            IoFault::TornWrite,
            IoFault::ShortRead,
            IoFault::Enospc,
            IoFault::BitFlip { bit: 3 },
        ] {
            assert!(!f.label().is_empty());
        }
    }

    #[test]
    fn crash_site_labels_round_trip() {
        for site in [
            CrashSite::MidJournal,
            CrashSite::MidCheckpoint,
            CrashSite::AfterCommit,
        ] {
            assert_eq!(CrashSite::parse(site.label()), Some(site));
        }
        assert_eq!(CrashSite::parse("nonsense"), None);
    }
}
