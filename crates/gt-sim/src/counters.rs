//! Work counters charged by every kernel, and the [`SimContext`] that
//! accumulates them per execution phase.
//!
//! The figures of the paper are all functions of these counters:
//! memory bloat (Fig 6a/17a) is `alloc_bytes` relative to the embedding
//! table; cache bloat (Fig 6b/17b) is `cache_loaded_bytes`; DKP impact
//! (Fig 18) is `flops` and global traffic; per-kernel latency (Fig 15/16)
//! is a roofline over traffic and FLOPs.

use crate::device::DeviceSpec;
use crate::memory::MemoryTracker;

/// Execution phase a kernel belongs to, used to decompose latencies as in
/// Fig 16 (aggregation / edge weighting / combination / sparse-to-dense /
/// format translation) and Fig 12/20 (preprocessing stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Neighbor aggregation (`f`, SpMM-like).
    Aggregation,
    /// Edge weighting (`g`/`h`, SDDMM-like).
    EdgeWeighting,
    /// Combination (MLP: MatMul + bias + nonlinearity).
    Combination,
    /// DL-approach sparse→dense data conversion.
    Sparse2Dense,
    /// Graph-approach COO↔CSR/CSC translation on the GPU.
    FormatTranslation,
    /// Loss computation and gradient seeding.
    Loss,
    /// Parameter update (SGD).
    Optimizer,
    /// Host-side neighbor sampling (S).
    Sampling,
    /// Host-side subgraph reindexing (R).
    Reindex,
    /// Host-side embedding lookup (K).
    Lookup,
    /// Host→device transfer (T).
    Transfer,
    /// Anything else.
    Other,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 12] = [
        Phase::Aggregation,
        Phase::EdgeWeighting,
        Phase::Combination,
        Phase::Sparse2Dense,
        Phase::FormatTranslation,
        Phase::Loss,
        Phase::Optimizer,
        Phase::Sampling,
        Phase::Reindex,
        Phase::Lookup,
        Phase::Transfer,
        Phase::Other,
    ];

    /// Short label used by the repro harness.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Aggregation => "aggregation",
            Phase::EdgeWeighting => "edge-weighting",
            Phase::Combination => "combination",
            Phase::Sparse2Dense => "sparse2dense",
            Phase::FormatTranslation => "format-translation",
            Phase::Loss => "loss",
            Phase::Optimizer => "optimizer",
            Phase::Sampling => "sampling",
            Phase::Reindex => "reindex",
            Phase::Lookup => "lookup",
            Phase::Transfer => "transfer",
            Phase::Other => "other",
        }
    }

    /// True for the four host-side preprocessing stages (S, R, K, T).
    pub fn is_preprocessing(&self) -> bool {
        matches!(
            self,
            Phase::Sampling | Phase::Reindex | Phase::Lookup | Phase::Transfer
        )
    }
}

/// Work performed by one kernel (or one host task).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct KernelStats {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Bytes read from global (device) memory, assuming perfect intra-SM
    /// reuse — i.e. unique data touched.
    pub global_read_bytes: u64,
    /// Bytes written to global memory.
    pub global_write_bytes: u64,
    /// Bytes brought into SM-local caches *including* duplicates across SMs.
    /// `cache_loaded_bytes - unique working set` is the cache bloat of §III.
    pub cache_loaded_bytes: u64,
    /// Device memory allocated by this kernel (not yet freed at its end).
    pub alloc_bytes: u64,
    /// Bytes moved over PCIe (only for `Phase::Transfer`).
    pub pcie_bytes: u64,
    /// Host work units (elementary preprocessing ops) for host-side phases.
    pub host_ops: u64,
    /// Number of kernel launches this task performed (sorts launch many).
    pub launches: u64,
    /// True if the dominant access pattern is irregular (gather/scatter).
    pub irregular: bool,
}

impl KernelStats {
    /// Total global-memory traffic (reads + writes).
    pub fn global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Accumulate another stats record into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.flops += other.flops;
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.cache_loaded_bytes += other.cache_loaded_bytes;
        self.alloc_bytes += other.alloc_bytes;
        self.pcie_bytes += other.pcie_bytes;
        self.host_ops += other.host_ops;
        self.launches += other.launches;
        self.irregular |= other.irregular;
    }
}

impl std::ops::AddAssign<&KernelStats> for KernelStats {
    fn add_assign(&mut self, rhs: &KernelStats) {
        self.merge(rhs);
    }
}

/// One recorded kernel execution: phase, its work, and its modeled latency.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    pub phase: Phase,
    pub stats: KernelStats,
    /// Modeled latency in microseconds (GPU roofline or host-core model).
    pub modeled_us: f64,
}

/// Accumulates kernel records and device-memory state for one measured run
/// (typically one training batch).
#[derive(Debug, Clone)]
pub struct SimContext {
    device: DeviceSpec,
    records: Vec<KernelRecord>,
    /// Device-memory allocation tracker (peak footprint → Fig 6a / 17a).
    pub memory: MemoryTracker,
}

impl SimContext {
    /// New context for the given GPU model.
    pub fn new(device: DeviceSpec) -> Self {
        let cap = device.device_mem_bytes;
        SimContext {
            device,
            records: Vec::new(),
            memory: MemoryTracker::new(cap),
        }
    }

    /// The GPU model this context prices kernels against.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Price `stats` with the GPU roofline model: latency is the maximum of
    /// the compute time and the memory time, plus launch overhead.
    pub fn gpu_latency_us(&self, stats: &KernelStats) -> f64 {
        let compute_us = stats.flops as f64 / (self.device.peak_flops / 1.0e6);
        let mem_us = stats.global_bytes() as f64 / self.device.effective_bw_per_us(stats.irregular);
        let launches = stats.launches.max(1) as f64;
        launches * self.device.kernel_launch_us + compute_us.max(mem_us)
    }

    /// Record a GPU kernel execution; returns its modeled latency (µs).
    pub fn record_gpu(&mut self, phase: Phase, stats: KernelStats) -> f64 {
        let modeled_us = self.gpu_latency_us(&stats);
        self.records.push(KernelRecord {
            phase,
            stats,
            modeled_us,
        });
        modeled_us
    }

    /// Record a host-side or transfer task with an externally computed
    /// latency (host tasks are priced by `HostSpec`/`PcieSpec`, not by the
    /// GPU roofline).
    pub fn record_host(&mut self, phase: Phase, stats: KernelStats, modeled_us: f64) {
        self.records.push(KernelRecord {
            phase,
            stats,
            modeled_us,
        });
    }

    /// All recorded kernels, in execution order.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Sum of modeled latencies for one phase.
    pub fn phase_us(&self, phase: Phase) -> f64 {
        self.records
            .iter()
            .filter(|r| r.phase == phase)
            .map(|r| r.modeled_us)
            .sum()
    }

    /// Sum of modeled latencies across all phases.
    pub fn total_us(&self) -> f64 {
        self.records.iter().map(|r| r.modeled_us).sum()
    }

    /// Aggregate stats for one phase.
    pub fn phase_stats(&self, phase: Phase) -> KernelStats {
        let mut acc = KernelStats::default();
        for r in self.records.iter().filter(|r| r.phase == phase) {
            acc.merge(&r.stats);
        }
        acc
    }

    /// Aggregate stats across every phase.
    pub fn total_stats(&self) -> KernelStats {
        let mut acc = KernelStats::default();
        for r in &self.records {
            acc.merge(&r.stats);
        }
        acc
    }

    /// Latency decomposition: (phase, summed µs) for phases that occurred.
    pub fn decomposition(&self) -> Vec<(Phase, f64)> {
        let mut out: Vec<(Phase, f64)> = Vec::new();
        for r in &self.records {
            match out.iter_mut().find(|(p, _)| *p == r.phase) {
                Some((_, us)) => *us += r.modeled_us,
                None => out.push((r.phase, r.modeled_us)),
            }
        }
        out
    }

    /// Drop all records and reset memory tracking (keeps the device).
    pub fn reset(&mut self) {
        self.records.clear();
        self.memory = MemoryTracker::new(self.device.device_mem_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SimContext {
        SimContext::new(DeviceSpec::tiny())
    }

    #[test]
    fn roofline_is_max_of_compute_and_memory() {
        let c = ctx();
        // Compute-bound kernel: many flops, no traffic.
        let compute_heavy = KernelStats {
            flops: 100_000_000,
            ..Default::default()
        };
        // Memory-bound kernel: no flops, lots of traffic.
        let mem_heavy = KernelStats {
            global_read_bytes: 100_000_000,
            ..Default::default()
        };
        let lc = c.gpu_latency_us(&compute_heavy);
        let lm = c.gpu_latency_us(&mem_heavy);
        // tiny: 100 GFLOPs → 1e8 flops = 1000us; 10GB/s*0.75 → 1e8B = 13333us
        assert!(lc > 900.0 && lc < 1100.0, "lc={lc}");
        assert!(lm > 13000.0, "lm={lm}");
    }

    #[test]
    fn irregular_access_is_slower() {
        let c = ctx();
        let mut s = KernelStats {
            global_read_bytes: 10_000_000,
            ..Default::default()
        };
        let regular = c.gpu_latency_us(&s);
        s.irregular = true;
        let irregular = c.gpu_latency_us(&s);
        assert!(irregular > regular * 2.0);
    }

    #[test]
    fn phase_accounting() {
        let mut c = ctx();
        c.record_gpu(
            Phase::Aggregation,
            KernelStats {
                flops: 1000,
                ..Default::default()
            },
        );
        c.record_gpu(
            Phase::Aggregation,
            KernelStats {
                flops: 500,
                ..Default::default()
            },
        );
        c.record_gpu(
            Phase::Combination,
            KernelStats {
                flops: 2000,
                ..Default::default()
            },
        );
        assert_eq!(c.phase_stats(Phase::Aggregation).flops, 1500);
        assert_eq!(c.phase_stats(Phase::Combination).flops, 2000);
        assert_eq!(c.total_stats().flops, 3500);
        assert!(c.phase_us(Phase::Aggregation) > 0.0);
        assert_eq!(c.decomposition().len(), 2);
    }

    #[test]
    fn launches_add_overhead() {
        let c = ctx();
        let one = KernelStats {
            launches: 1,
            ..Default::default()
        };
        let many = KernelStats {
            launches: 40,
            ..Default::default()
        };
        assert!(c.gpu_latency_us(&many) > c.gpu_latency_us(&one) * 30.0);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = KernelStats {
            flops: 1,
            global_read_bytes: 2,
            global_write_bytes: 3,
            cache_loaded_bytes: 4,
            alloc_bytes: 5,
            pcie_bytes: 6,
            host_ops: 7,
            launches: 1,
            irregular: false,
        };
        let b = KernelStats {
            irregular: true,
            ..a
        };
        a.merge(&b);
        assert_eq!(a.flops, 2);
        assert_eq!(a.global_bytes(), 10);
        assert!(a.irregular);
    }

    #[test]
    fn reset_clears_records() {
        let mut c = ctx();
        c.record_gpu(Phase::Loss, KernelStats::default());
        assert_eq!(c.records().len(), 1);
        c.reset();
        assert!(c.records().is_empty());
        assert_eq!(c.total_us(), 0.0);
    }

    #[test]
    fn preprocessing_phase_classification() {
        assert!(Phase::Sampling.is_preprocessing());
        assert!(Phase::Transfer.is_preprocessing());
        assert!(!Phase::Aggregation.is_preprocessing());
    }
}
