//! Preprocessing timeline recording (Fig 20).
//!
//! Figure 20 plots, for each preprocessing stage, the fraction of sampled
//! nodes already processed against accumulated time. [`Timeline`] converts a
//! [`crate::Schedule`] (or manually recorded events) into those normalized
//! cumulative curves.

use crate::counters::Phase;
use crate::des::Schedule;

/// One point on a stage's progress curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Virtual time in microseconds.
    pub time_us: f64,
    /// Fraction of the stage's total items completed by `time_us` (0..=1).
    pub fraction: f64,
}

/// Normalized per-phase progress curves.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    curves: Vec<(Phase, Vec<TimelineEvent>)>,
}

impl Timeline {
    /// Build normalized curves for `phases` out of a DES schedule.
    /// Phases with zero processed items are omitted.
    ///
    /// Fault-injected schedules can carry non-finite or non-monotonic event
    /// times (a stretched task finishing "before" an earlier one, or a
    /// failed transfer with garbage timing); those are tolerated here —
    /// non-finite samples are dropped and times/fractions are clamped to be
    /// non-decreasing with fraction never exceeding 1.0.
    pub fn from_schedule(schedule: &Schedule, phases: &[Phase]) -> Self {
        let mut curves = Vec::new();
        for &phase in phases {
            let raw: Vec<(f64, u64)> = schedule
                .progress_curve(phase)
                .into_iter()
                .filter(|(t, _)| t.is_finite())
                .collect();
            let total = raw.iter().map(|p| p.1).max().unwrap_or(0);
            if total == 0 {
                continue;
            }
            curves.push((phase, sanitized(raw, total)));
        }
        Timeline { curves }
    }

    /// Record a curve manually from `(time, cumulative items)` samples in
    /// arrival order, normalized against a declared `total`. The same
    /// clamping as [`from_schedule`](Self::from_schedule) applies, so
    /// samples with out-of-order times or counts overshooting `total`
    /// (both possible under fault injection) still yield a well-formed
    /// curve. Zero `total` or empty samples record nothing.
    pub fn push_curve(&mut self, phase: Phase, samples: &[(f64, u64)], total: u64) {
        if total == 0 || samples.is_empty() {
            return;
        }
        let finite: Vec<(f64, u64)> = samples
            .iter()
            .copied()
            .filter(|(t, _)| t.is_finite())
            .collect();
        if finite.is_empty() {
            return;
        }
        self.curves.push((phase, sanitized(finite, total)));
    }

    /// Curves in insertion order.
    pub fn curves(&self) -> &[(Phase, Vec<TimelineEvent>)] {
        &self.curves
    }

    /// Completion time (µs) of a phase, if it appears in the timeline.
    pub fn finish_us(&self, phase: Phase) -> Option<f64> {
        self.curves
            .iter()
            .find(|(p, _)| *p == phase)
            .and_then(|(_, pts)| pts.last())
            .map(|e| e.time_us)
    }

    /// Sample a curve at `time_us` (step interpolation).
    pub fn fraction_at(&self, phase: Phase, time_us: f64) -> f64 {
        let Some((_, pts)) = self.curves.iter().find(|(p, _)| *p == phase) else {
            return 0.0;
        };
        pts.iter()
            .take_while(|e| e.time_us <= time_us)
            .last()
            .map(|e| e.fraction)
            .unwrap_or(0.0)
    }
}

/// Clamp `(time, cumulative items)` samples into a well-formed curve:
/// times non-decreasing (running max) and fractions non-decreasing, capped
/// at 1.0.
fn sanitized(points: impl IntoIterator<Item = (f64, u64)>, total: u64) -> Vec<TimelineEvent> {
    let mut out = Vec::new();
    let mut last_time = 0.0f64;
    let mut last_frac = 0.0f64;
    for (t, c) in points {
        let time_us = t.max(last_time);
        let fraction = (c as f64 / total as f64).clamp(last_frac, 1.0);
        out.push(TimelineEvent { time_us, fraction });
        last_time = time_us;
        last_frac = fraction;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{Resource, ScheduledEvent, Simulator, TaskSpec};

    fn schedule() -> Schedule {
        let mut sim = Simulator::new(1);
        sim.add(TaskSpec::new("s1", Resource::HostCore, 10.0, Phase::Sampling).items(30));
        sim.add(TaskSpec::new("s2", Resource::HostCore, 10.0, Phase::Sampling).items(70));
        sim.add(TaskSpec::new("k", Resource::HostCore, 5.0, Phase::Lookup).items(100));
        sim.run()
    }

    #[test]
    fn curves_are_normalized() {
        let tl = Timeline::from_schedule(&schedule(), &[Phase::Sampling, Phase::Lookup]);
        assert_eq!(tl.curves().len(), 2);
        let (_, s) = &tl.curves()[0];
        assert!((s.last().unwrap().fraction - 1.0).abs() < 1e-12);
        assert!((s[0].fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_phases_omitted() {
        let tl = Timeline::from_schedule(&schedule(), &[Phase::Transfer]);
        assert!(tl.curves().is_empty());
        assert_eq!(tl.finish_us(Phase::Transfer), None);
    }

    #[test]
    fn step_sampling() {
        let tl = Timeline::from_schedule(&schedule(), &[Phase::Sampling]);
        assert_eq!(tl.fraction_at(Phase::Sampling, 0.0), 0.0);
        assert!((tl.fraction_at(Phase::Sampling, 10.0) - 0.3).abs() < 1e-12);
        assert!((tl.fraction_at(Phase::Sampling, 25.0) - 1.0).abs() < 1e-12);
    }

    fn event(end_us: f64, items: u64) -> ScheduledEvent {
        ScheduledEvent {
            task: 0,
            label: "s".to_string(),
            phase: Phase::Sampling,
            resource: Resource::HostCore,
            unit: 0,
            start_us: 0.0,
            end_us,
            lock_wait_us: 0.0,
            items,
        }
    }

    #[test]
    fn fault_injected_schedule_times_are_tolerated() {
        // Regression: a fault-stretched schedule can carry non-finite event
        // times. These must not poison the curve or push fractions past 1.
        let schedule = Schedule {
            events: vec![
                event(30.0, 50),
                event(f64::NAN, 10),
                event(f64::INFINITY, 5),
                event(20.0, 50),
            ],
            makespan_us: 30.0,
            failed: vec![],
        };
        let tl = Timeline::from_schedule(&schedule, &[Phase::Sampling]);
        let (_, pts) = &tl.curves()[0];
        // Only the two finite events survive; the curve still reaches 1.0.
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|e| e.time_us.is_finite()));
        assert!(pts.iter().all(|e| (0.0..=1.0).contains(&e.fraction)));
        assert!((pts.last().unwrap().fraction - 1.0).abs() < 1e-12);
        assert!(pts
            .windows(2)
            .all(|w| w[0].time_us <= w[1].time_us && w[0].fraction <= w[1].fraction));
    }

    #[test]
    fn push_curve_clamps_overshoot_and_disorder() {
        let mut tl = Timeline::default();
        // Non-monotonic times and a count overshooting the declared total,
        // as a fault-injected run can record them.
        tl.push_curve(
            Phase::Reindex,
            &[(5.0, 40), (3.0, 60), (f64::NAN, 70), (9.0, 120)],
            100,
        );
        let (_, pts) = &tl.curves()[0];
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].time_us, 5.0);
        // 3.0 clamps up to the running max.
        assert_eq!(pts[1].time_us, 5.0);
        // 120/100 clamps to 1.0, never above.
        assert!((pts[2].fraction - 1.0).abs() < 1e-12);
        assert!(pts.iter().all(|e| e.fraction <= 1.0));
    }

    #[test]
    fn push_curve_ignores_degenerate_input() {
        let mut tl = Timeline::default();
        tl.push_curve(Phase::Sampling, &[], 10);
        tl.push_curve(Phase::Sampling, &[(1.0, 5)], 0);
        tl.push_curve(Phase::Sampling, &[(f64::NAN, 5)], 10);
        assert!(tl.curves().is_empty());
    }
}
