//! Preprocessing timeline recording (Fig 20).
//!
//! Figure 20 plots, for each preprocessing stage, the fraction of sampled
//! nodes already processed against accumulated time. [`Timeline`] converts a
//! [`crate::Schedule`] (or manually recorded events) into those normalized
//! cumulative curves.

use crate::counters::Phase;
use crate::des::Schedule;

/// One point on a stage's progress curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Virtual time in microseconds.
    pub time_us: f64,
    /// Fraction of the stage's total items completed by `time_us` (0..=1).
    pub fraction: f64,
}

/// Normalized per-phase progress curves.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    curves: Vec<(Phase, Vec<TimelineEvent>)>,
}

impl Timeline {
    /// Build normalized curves for `phases` out of a DES schedule.
    /// Phases with zero processed items are omitted.
    pub fn from_schedule(schedule: &Schedule, phases: &[Phase]) -> Self {
        let mut curves = Vec::new();
        for &phase in phases {
            let raw = schedule.progress_curve(phase);
            let total = raw.last().map(|p| p.1).unwrap_or(0);
            if total == 0 {
                continue;
            }
            let pts = raw
                .into_iter()
                .map(|(t, c)| TimelineEvent {
                    time_us: t,
                    fraction: c as f64 / total as f64,
                })
                .collect();
            curves.push((phase, pts));
        }
        Timeline { curves }
    }

    /// Curves in insertion order.
    pub fn curves(&self) -> &[(Phase, Vec<TimelineEvent>)] {
        &self.curves
    }

    /// Completion time (µs) of a phase, if it appears in the timeline.
    pub fn finish_us(&self, phase: Phase) -> Option<f64> {
        self.curves
            .iter()
            .find(|(p, _)| *p == phase)
            .and_then(|(_, pts)| pts.last())
            .map(|e| e.time_us)
    }

    /// Sample a curve at `time_us` (step interpolation).
    pub fn fraction_at(&self, phase: Phase, time_us: f64) -> f64 {
        let Some((_, pts)) = self.curves.iter().find(|(p, _)| *p == phase) else {
            return 0.0;
        };
        pts.iter()
            .take_while(|e| e.time_us <= time_us)
            .last()
            .map(|e| e.fraction)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{Resource, Simulator, TaskSpec};

    fn schedule() -> Schedule {
        let mut sim = Simulator::new(1);
        sim.add(TaskSpec::new("s1", Resource::HostCore, 10.0, Phase::Sampling).items(30));
        sim.add(TaskSpec::new("s2", Resource::HostCore, 10.0, Phase::Sampling).items(70));
        sim.add(TaskSpec::new("k", Resource::HostCore, 5.0, Phase::Lookup).items(100));
        sim.run()
    }

    #[test]
    fn curves_are_normalized() {
        let tl = Timeline::from_schedule(&schedule(), &[Phase::Sampling, Phase::Lookup]);
        assert_eq!(tl.curves().len(), 2);
        let (_, s) = &tl.curves()[0];
        assert!((s.last().unwrap().fraction - 1.0).abs() < 1e-12);
        assert!((s[0].fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_phases_omitted() {
        let tl = Timeline::from_schedule(&schedule(), &[Phase::Transfer]);
        assert!(tl.curves().is_empty());
        assert_eq!(tl.finish_us(Phase::Transfer), None);
    }

    #[test]
    fn step_sampling() {
        let tl = Timeline::from_schedule(&schedule(), &[Phase::Sampling]);
        assert_eq!(tl.fraction_at(Phase::Sampling, 0.0), 0.0);
        assert!((tl.fraction_at(Phase::Sampling, 10.0) - 0.3).abs() < 1e-12);
        assert!((tl.fraction_at(Phase::Sampling, 25.0) - 1.0).abs() < 1e-12);
    }
}
