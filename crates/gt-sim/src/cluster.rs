//! Cluster topology: N workers, each a full [`SystemSpec`] (cores + PCIe
//! link + GPU), connected by modeled network links over which collectives
//! are priced.
//!
//! This generalizes the single-node resource model: the cluster supervisor
//! (`gt-core::cluster`) partitions each batch's preprocessing work across
//! workers, prices every worker's local S/R/K/T + NAPA schedule through its
//! own DES instance, then charges ring all-gather/all-reduce collectives on
//! the network link. Everything here is a pure function of the specs, so
//! cluster schedules inherit the DES's bit-identity contract.
//!
//! The failure-detection side lives here too: [`HeartbeatConfig`] and the
//! [`PhiDetector`], a deterministic phi-accrual-style detector running in
//! virtual time — suspicion is a pure function of observed heartbeat gaps,
//! never of wall-clock time.

use crate::device::SystemSpec;

/// A modeled full-duplex network link between cluster workers.
#[derive(Debug, Clone, PartialEq)]
pub struct NetLinkSpec {
    /// Link bandwidth in gigabits per second (25 GbE by default).
    pub bandwidth_gbps: f64,
    /// One-way message latency in microseconds.
    pub latency_us: f64,
}

impl NetLinkSpec {
    /// A 25 GbE datacenter link, the common GNN-cluster fabric.
    pub fn gbe25() -> Self {
        NetLinkSpec {
            bandwidth_gbps: 25.0,
            latency_us: 15.0,
        }
    }

    /// A deliberately slow link for tests (1 Gb/s, high latency) so
    /// collective costs are visible at tiny scales.
    pub fn tiny() -> Self {
        NetLinkSpec {
            bandwidth_gbps: 1.0,
            latency_us: 50.0,
        }
    }

    /// Link bandwidth in bytes per virtual microsecond.
    pub fn bytes_per_us(&self) -> f64 {
        // Gb/s → bytes/µs: divide by 8 bits, multiply by 1e9 / 1e6.
        self.bandwidth_gbps / 8.0 * 1.0e3
    }

    /// Virtual time to move `bytes` point-to-point over this link.
    pub fn transfer_us(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency_us + bytes / self.bytes_per_us()
    }
}

/// The cluster: per-worker system specs plus the fabric connecting them.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// One full system per worker. A single entry degenerates to the
    /// single-node model (collectives cost zero).
    pub workers: Vec<SystemSpec>,
    /// The network link every worker attaches to (uniform fabric).
    pub link: NetLinkSpec,
}

impl ClusterSpec {
    /// `n` identical workers of the given spec on one fabric.
    pub fn uniform(n: usize, worker: SystemSpec, link: NetLinkSpec) -> Self {
        assert!(n >= 1, "a cluster needs at least one worker");
        ClusterSpec {
            workers: vec![worker; n],
            link,
        }
    }

    /// `n` paper-testbed workers on 25 GbE.
    pub fn paper_testbed(n: usize) -> Self {
        ClusterSpec::uniform(n, SystemSpec::paper_testbed(), NetLinkSpec::gbe25())
    }

    /// `n` tiny workers on a tiny link, for fast tests.
    pub fn tiny(n: usize) -> Self {
        ClusterSpec::uniform(n, SystemSpec::tiny(), NetLinkSpec::tiny())
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True for the degenerate single-worker (or empty) cluster.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Ring all-gather over `p` participants, each contributing
    /// `bytes_per_worker`: `p − 1` steps, each moving one worker-chunk over
    /// the slowest link. Zero for `p ≤ 1` — a lone worker gathers nothing.
    pub fn all_gather_us(&self, bytes_per_worker: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64 - 1.0) * self.link.transfer_us(bytes_per_worker)
    }

    /// Ring all-reduce of a `bytes`-sized tensor across `p` participants:
    /// reduce-scatter then all-gather, `2(p − 1)` steps of `bytes / p`
    /// each. Zero for `p ≤ 1`.
    pub fn all_reduce_us(&self, bytes: f64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        2.0 * (p as f64 - 1.0) * self.link.transfer_us(bytes / p as f64)
    }
}

/// Virtual-time heartbeat protocol parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HeartbeatConfig {
    /// Interval between heartbeats, virtual microseconds.
    pub interval_us: f64,
    /// Suspicion threshold: a worker is suspected once the observed gap
    /// exceeds `phi_threshold ×` its smoothed mean inter-arrival time.
    pub phi_threshold: f64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval_us: 1_000.0,
            phi_threshold: 8.0,
        }
    }
}

/// Deterministic phi-accrual-style failure detector for one worker.
///
/// Classic phi-accrual fits a distribution over inter-arrival times and
/// reports `φ = −log₁₀ P(gap)`. In a simulated cluster the heartbeat
/// interval is a modeled constant, so the detector reduces to its
/// deterministic core: an exponentially-smoothed mean inter-arrival time
/// and a suspicion score `phi = gap / mean`. The detector is a pure fold
/// over observed gaps — no clocks, no randomness — so detection times are
/// bit-identical across runs, worker counts, and `GT_THREADS` widths.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiDetector {
    cfg: HeartbeatConfig,
    /// Smoothed mean inter-arrival time, seeded with the nominal interval.
    mean_us: f64,
    /// Heartbeats observed so far.
    observed: u64,
}

impl PhiDetector {
    pub fn new(cfg: HeartbeatConfig) -> Self {
        let mean_us = cfg.interval_us;
        PhiDetector {
            cfg,
            mean_us,
            observed: 0,
        }
    }

    /// Record one heartbeat arriving `gap_us` after the previous one.
    pub fn observe(&mut self, gap_us: f64) {
        // EMA with a 0.2 step: recent gaps dominate after ~10 beats but a
        // single outlier cannot drag the mean far.
        self.mean_us = 0.8 * self.mean_us + 0.2 * gap_us;
        self.observed += 1;
    }

    /// Suspicion score for a silence of `gap_us` since the last heartbeat.
    pub fn phi(&self, gap_us: f64) -> f64 {
        if self.mean_us <= 0.0 {
            return f64::INFINITY;
        }
        gap_us / self.mean_us
    }

    /// Whether a silence of `gap_us` crosses the suspicion threshold.
    pub fn suspects(&self, gap_us: f64) -> bool {
        self.phi(gap_us) >= self.cfg.phi_threshold
    }

    /// Virtual time from a worker's last heartbeat to the detector
    /// *confirming* it dead: the silence must reach `phi_threshold ×` the
    /// smoothed mean before suspicion fires. This is the detection-latency
    /// term of a kill's recovery cost.
    pub fn confirm_delay_us(&self) -> f64 {
        self.cfg.phi_threshold * self.mean_us
    }

    /// Smoothed mean inter-arrival time (exposed for telemetry).
    pub fn mean_us(&self) -> f64 {
        self.mean_us
    }

    /// Heartbeats observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_is_latency_plus_serialization() {
        let link = NetLinkSpec::gbe25();
        // 25 Gb/s = 3125 bytes/µs.
        assert!((link.bytes_per_us() - 3125.0).abs() < 1e-9);
        assert_eq!(link.transfer_us(0.0), 0.0);
        let t = link.transfer_us(3_125_000.0);
        assert!((t - (15.0 + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn single_worker_collectives_are_free() {
        let c = ClusterSpec::tiny(1);
        assert_eq!(c.all_gather_us(1.0e6, 1), 0.0);
        assert_eq!(c.all_reduce_us(1.0e6, 1), 0.0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn collective_costs_grow_with_workers() {
        let c4 = ClusterSpec::paper_testbed(4);
        let c2 = ClusterSpec::paper_testbed(2);
        let bytes = 1.0e6;
        assert!(c4.all_gather_us(bytes, 4) > c2.all_gather_us(bytes, 2));
        // All-reduce step size shrinks with p, but step count grows faster:
        // 2(p−1)·(lat + b/p/bw) is increasing in p for fixed b.
        assert!(c4.all_reduce_us(bytes, 4) > c2.all_reduce_us(bytes, 2));
    }

    #[test]
    fn ring_all_reduce_matches_closed_form() {
        let c = ClusterSpec::uniform(
            4,
            SystemSpec::tiny(),
            NetLinkSpec {
                bandwidth_gbps: 8.0,
                latency_us: 10.0,
            },
        );
        // 8 Gb/s = 1000 bytes/µs; 4000 bytes across 4 workers:
        // 2·3 steps of (10 + 1000/1000) µs = 66 µs.
        assert!((c.all_reduce_us(4000.0, 4) - 66.0).abs() < 1e-9);
        // All-gather of 1000 bytes/worker: 3 steps of 11 µs = 33 µs.
        assert!((c.all_gather_us(1000.0, 4) - 33.0).abs() < 1e-9);
    }

    #[test]
    fn detector_is_calm_on_nominal_beats() {
        let mut d = PhiDetector::new(HeartbeatConfig::default());
        for _ in 0..50 {
            d.observe(1_000.0);
        }
        assert!((d.mean_us() - 1_000.0).abs() < 1e-6);
        assert!(!d.suspects(1_000.0));
        assert!(!d.suspects(7_999.0));
        assert!(d.suspects(8_000.0));
        assert_eq!(d.observed(), 50);
    }

    #[test]
    fn detector_adapts_to_slow_workers() {
        let cfg = HeartbeatConfig {
            interval_us: 1_000.0,
            phi_threshold: 4.0,
        };
        let mut d = PhiDetector::new(cfg);
        // A worker that consistently beats every 2 ms raises the mean, so
        // the same absolute silence scores a lower phi.
        let phi_before = d.phi(4_000.0);
        for _ in 0..100 {
            d.observe(2_000.0);
        }
        assert!(d.phi(4_000.0) < phi_before);
        assert!(!d.suspects(4_000.0));
        assert!((d.confirm_delay_us() - 4.0 * d.mean_us()).abs() < 1e-9);
    }

    #[test]
    fn detector_is_deterministic() {
        let mut a = PhiDetector::new(HeartbeatConfig::default());
        let mut b = PhiDetector::new(HeartbeatConfig::default());
        for gap in [1000.0, 1200.0, 900.0, 3000.0, 1000.0] {
            a.observe(gap);
            b.observe(gap);
        }
        assert_eq!(a, b);
        assert_eq!(
            a.confirm_delay_us().to_bits(),
            b.confirm_delay_us().to_bits()
        );
    }
}
