//! PCIe transfer model (host → device).
//!
//! SALIENT's and Prepro-GT's advantage partly comes from pinned (page-locked)
//! buffers: pageable transfers are staged through a driver bounce buffer and
//! achieve roughly half the bandwidth (§V-B "Relaxing contention", §VI-B).

use crate::device::PcieSpec;

/// Whether the host buffer is page-locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// Ordinary pageable host memory; the driver stages an extra copy.
    Pageable,
    /// CUDA-style pinned memory; DMA directly from the user buffer.
    Pinned,
}

impl PcieSpec {
    /// Modeled latency (µs) of transferring `bytes` host→device.
    pub fn transfer_us(&self, bytes: u64, kind: TransferKind) -> f64 {
        let bw = match kind {
            TransferKind::Pageable => self.pageable_bandwidth,
            TransferKind::Pinned => self.pinned_bandwidth,
        };
        self.latency_us + bytes as f64 / (bw / 1.0e6)
    }

    /// Latency of a transfer split into `chunks` pipelined pieces: each chunk
    /// pays the DMA-setup latency, but chunking lets producers overlap — the
    /// caller models the overlap; this prices the raw cost.
    pub fn chunked_transfer_us(&self, bytes: u64, chunks: u64, kind: TransferKind) -> f64 {
        let chunks = chunks.max(1);
        let per_chunk = bytes.div_ceil(chunks);
        chunks as f64 * self.transfer_us(per_chunk, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_faster_than_pageable() {
        let p = PcieSpec::gen3_x16();
        let big = 100 << 20;
        assert!(
            p.transfer_us(big, TransferKind::Pinned) < p.transfer_us(big, TransferKind::Pageable)
        );
    }

    #[test]
    fn bandwidth_math() {
        let p = PcieSpec::gen3_x16();
        // 12 GB at 12 GB/s pinned ≈ 1s = 1e6 us (plus setup).
        let us = p.transfer_us(12_000_000_000, TransferKind::Pinned);
        assert!((us - 1.0e6).abs() / 1.0e6 < 0.01, "us={us}");
    }

    #[test]
    fn chunking_adds_setup_cost_only() {
        let p = PcieSpec::gen3_x16();
        let whole = p.transfer_us(1 << 20, TransferKind::Pinned);
        let chunked = p.chunked_transfer_us(1 << 20, 8, TransferKind::Pinned);
        assert!(chunked > whole);
        assert!(chunked < whole + 8.0 * p.latency_us + 1.0);
    }

    #[test]
    fn zero_chunks_clamped() {
        let p = PcieSpec::gen3_x16();
        assert!(p.chunked_transfer_us(1024, 0, TransferKind::Pinned) > 0.0);
    }
}
