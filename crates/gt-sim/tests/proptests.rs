//! Property-based tests on the discrete-event simulator's guarantees.

use gt_sim::{ActiveFaults, FaultPlan, Phase, Resource, Simulator, TaskSpec};
use proptest::prelude::*;

/// A random DAG of host tasks: each task may depend on earlier ones and may
/// join one of two lock groups.
fn dag() -> impl Strategy<Value = Vec<(f64, Vec<usize>, Option<u32>)>> {
    prop::collection::vec(
        (
            1.0f64..50.0,
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
            prop::option::of(0u32..2),
        ),
        1..25,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (dur, deps, lock))| {
                let deps: Vec<usize> = if i == 0 {
                    Vec::new()
                } else {
                    let mut d: Vec<usize> = deps.iter().map(|ix| ix.index(i)).collect();
                    d.sort();
                    d.dedup();
                    d
                };
                (dur, deps, lock)
            })
            .collect()
    })
}

proptest! {
    /// Schedules are valid: dependencies precede dependents, units never
    /// run two tasks at once, lock groups never overlap, and the makespan
    /// is at least the critical-path length and at most the serial sum.
    #[test]
    fn schedule_validity(tasks in dag(), cores in 1usize..5) {
        let mut sim = Simulator::new(cores);
        let mut ids = Vec::new();
        for (dur, deps, lock) in &tasks {
            let dep_ids: Vec<usize> = deps.iter().map(|&d| ids[d]).collect();
            let mut spec = TaskSpec::new("t", Resource::HostCore, *dur, Phase::Other)
                .after(&dep_ids);
            if let Some(g) = lock {
                spec = spec.locked(*g);
            }
            ids.push(sim.add(spec));
        }
        let schedule = sim.run();

        // Dependency order.
        let finish: Vec<f64> = {
            let mut f = vec![0.0; tasks.len()];
            for e in &schedule.events {
                f[e.task] = e.end_us;
            }
            f
        };
        for (i, (_, deps, _)) in tasks.iter().enumerate() {
            let start = schedule.events.iter().find(|e| e.task == i).unwrap().start_us;
            for &d in deps {
                prop_assert!(start + 1e-9 >= finish[d], "task {i} started before dep {d}");
            }
        }

        // No overlap per (resource unit).
        let mut by_unit: std::collections::HashMap<usize, Vec<(f64, f64)>> = Default::default();
        for e in &schedule.events {
            by_unit.entry(e.unit).or_default().push((e.start_us, e.end_us));
        }
        for (_, mut spans) in by_unit {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                prop_assert!(w[1].0 + 1e-9 >= w[0].1, "unit overlap");
            }
        }

        // Lock groups never overlap.
        for g in 0..2u32 {
            let mut spans: Vec<(f64, f64)> = schedule
                .events
                .iter()
                .filter(|e| tasks[e.task].2 == Some(g))
                .map(|e| (e.start_us, e.end_us))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                prop_assert!(w[1].0 + 1e-9 >= w[0].1, "lock group overlap");
            }
        }

        // Makespan bounds.
        let serial_sum: f64 = tasks.iter().map(|(d, _, _)| d).sum();
        prop_assert!(schedule.makespan_us <= serial_sum + 1e-6);
        // Critical path lower bound.
        let mut cp = vec![0.0f64; tasks.len()];
        for (i, (dur, deps, _)) in tasks.iter().enumerate() {
            let base = deps.iter().map(|&d| cp[d]).fold(0.0f64, f64::max);
            cp[i] = base + dur;
        }
        let lower = cp.iter().copied().fold(0.0, f64::max);
        prop_assert!(schedule.makespan_us + 1e-6 >= lower);
    }

    /// Fault-injected runs are deterministic: the same DAG and the same
    /// resolved fault set produce bitwise-identical schedules.
    #[test]
    fn faulted_runs_are_deterministic(
        tasks in dag(),
        seed in any::<u64>(),
        batch in 0usize..64,
        attempt in 0usize..4,
    ) {
        let build = || {
            let mut sim = Simulator::new(3);
            let mut ids = Vec::new();
            for (i, (dur, deps, lock)) in tasks.iter().enumerate() {
                let dep_ids: Vec<usize> = deps.iter().map(|&d| ids[d]).collect();
                let res = if i % 4 == 3 { Resource::Pcie } else { Resource::HostCore };
                let mut spec = TaskSpec::new("t", res, *dur, Phase::Other).after(&dep_ids);
                if let Some(g) = lock {
                    spec = spec.locked(*g);
                }
                ids.push(sim.add(spec));
            }
            sim
        };
        let plan = FaultPlan::new(seed)
            .with_transfer_stall(3.0, 0.5)
            .with_straggler(0, 4.0)
            .with_contention_spike(2.0, 0.5)
            .with_transfer_failure(0.3);
        let faults = plan.active(batch, attempt);
        prop_assert_eq!(&faults, &plan.active(batch, attempt));
        let a = build().run_with_faults(&faults);
        let b = build().run_with_faults(&faults);
        prop_assert_eq!(a.makespan_us.to_bits(), b.makespan_us.to_bits());
        prop_assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            prop_assert_eq!(x.task, y.task);
            prop_assert_eq!(x.unit, y.unit);
            prop_assert_eq!(x.start_us.to_bits(), y.start_us.to_bits());
            prop_assert_eq!(x.end_us.to_bits(), y.end_us.to_bits());
        }
        prop_assert_eq!(&a.failed, &b.failed);
    }

    /// An empty fault set takes the exact plain-run code path: schedules
    /// are bitwise identical and nothing is marked failed.
    #[test]
    fn empty_faults_bit_identical_to_plain(tasks in dag(), cores in 1usize..5) {
        let build = || {
            let mut sim = Simulator::new(cores);
            let mut ids = Vec::new();
            for (dur, deps, lock) in &tasks {
                let dep_ids: Vec<usize> = deps.iter().map(|&d| ids[d]).collect();
                let mut spec =
                    TaskSpec::new("t", Resource::HostCore, *dur, Phase::Other).after(&dep_ids);
                if let Some(g) = lock {
                    spec = spec.locked(*g);
                }
                ids.push(sim.add(spec));
            }
            sim
        };
        let plain = build().run();
        let faulted = build().run_with_faults(&ActiveFaults::none());
        prop_assert_eq!(plain.makespan_us.to_bits(), faulted.makespan_us.to_bits());
        prop_assert_eq!(plain.events.len(), faulted.events.len());
        for (x, y) in plain.events.iter().zip(&faulted.events) {
            prop_assert_eq!(x.start_us.to_bits(), y.start_us.to_bits());
            prop_assert_eq!(x.end_us.to_bits(), y.end_us.to_bits());
        }
        prop_assert!(!faulted.has_failures());
    }

    /// A straggler core can only stretch the schedule, never shrink it.
    #[test]
    fn straggler_never_speeds_up(tasks in dag(), core in 0usize..3) {
        let build = || {
            let mut sim = Simulator::new(3);
            let mut ids = Vec::new();
            for (dur, deps, _) in &tasks {
                let dep_ids: Vec<usize> = deps.iter().map(|&d| ids[d]).collect();
                ids.push(sim.add(
                    TaskSpec::new("t", Resource::HostCore, *dur, Phase::Other).after(&dep_ids),
                ));
            }
            sim
        };
        let plain = build().run();
        let slowed = build().run_with_faults(
            &FaultPlan::new(0).with_straggler(core, 8.0).active(0, 0),
        );
        prop_assert!(slowed.makespan_us + 1e-9 >= plain.makespan_us);
    }

    /// More cores never makes a lock-free schedule slower.
    #[test]
    fn cores_monotone(tasks in dag()) {
        let build = |cores: usize| {
            let mut sim = Simulator::new(cores);
            let mut ids = Vec::new();
            for (dur, deps, _) in &tasks {
                let dep_ids: Vec<usize> = deps.iter().map(|&d| ids[d]).collect();
                ids.push(sim.add(
                    TaskSpec::new("t", Resource::HostCore, *dur, Phase::Other).after(&dep_ids),
                ));
            }
            sim.run().makespan_us
        };
        prop_assert!(build(4) <= build(1) + 1e-6);
        prop_assert!(build(8) <= build(2) + 1e-6);
    }
}
