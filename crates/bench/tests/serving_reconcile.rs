//! Property test for the serving pipeline: an open-loop workload through
//! the durable, cached, multi-tenant gateway must reconcile exactly —
//! every completion against the write-ahead journal, every per-tenant
//! counter against the completion stream — and resolve bit-identically
//! across `GT_THREADS` widths (docs/serving.md, docs/parallelism.md).
//!
//! The thread-width check re-executes this test binary with
//! `GT_THREADS=1` and `GT_THREADS=4` (the global pool freezes its width
//! at first use, so one process can only ever observe one width) and
//! compares the digests the two children print.

use gt_core::config::ModelConfig;
use gt_core::data::GraphData;
use gt_core::framework::{BatchOutcome, ShedCause};
use gt_core::journal;
use gt_core::serve::{DurabilityConfig, Supervisor};
use gt_core::trainer::{GraphTensor, GtVariant};
use gt_core::{CacheConfig, Gateway, OverloadConfig, TenancyConfig, TenantQuota};
use gt_datasets::workload::{self, WorkloadSpec};
use gt_sample::SamplerConfig;
use gt_sim::{FaultPlan, SystemSpec};

/// Set in the re-executed child to make `digest_helper` print the digest.
const DIGEST_ENV: &str = "GT_SERVING_DIGEST";

/// A compressed burst of the serving day: enough arrivals to engage the
/// quota, the deadline, and both caches, small enough for a unit test.
fn spec() -> WorkloadSpec {
    WorkloadSpec {
        duration_us: 600_000.0,
        ..WorkloadSpec::default_day(13)
    }
}

/// Run the workload through a durable, cached, three-tenant gateway
/// under an injected stall, assert every reconciliation invariant, and
/// return a deterministic digest of the full resolution sequence.
fn run_scenario(tag: &str) -> String {
    let data = GraphData::synthetic(300, 3000, 16, 4, 3);
    let wl = spec();
    let arrivals = workload::generate(&wl, data.num_vertices());
    assert!(!arrivals.is_empty());

    let mut trainer = GraphTensor::new(
        GtVariant::Dynamic,
        ModelConfig::gcn(2, 16, 4),
        SystemSpec::tiny(),
    );
    trainer.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 11,
        ..Default::default()
    };
    trainer.telemetry = gt_telemetry::Telemetry::recording();
    let telemetry = trainer.telemetry.clone();
    // A sustained 40 ms stall against ~10 ms arrivals: the diurnal peak
    // overloads hard while the trough still serves.
    let plan = FaultPlan::new(5).with_serve_delay_window(40_000.0, 0, None);
    let mut sup = Supervisor::new(trainer, plan);
    sup.enable_caches(CacheConfig::default());
    let dir =
        std::env::temp_dir().join(format!("gt_serving_reconcile_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durability = DurabilityConfig::new(&dir);
    sup.make_durable(durability.clone()).expect("durable state");

    let mut g = Gateway::new(
        sup,
        OverloadConfig {
            queue_capacity: 8,
            deadline_us: 150_000.0,
            degrade_watermark: 3,
            halve_watermark: 5,
            reduced_fanout: 2,
        },
    );
    // Tenant 2's ~20% share of the offered ~100 req/s is capped at 20/s
    // with a burst of 2: it must trip its quota at the peak.
    g.enable_tenancy(TenancyConfig {
        quotas: vec![
            TenantQuota::unlimited(),
            TenantQuota::unlimited(),
            TenantQuota::new(20.0, 2.0),
        ],
        quantum: wl.batch_size,
    });

    let mut all = Vec::new();
    for a in &arrivals {
        all.extend(g.submit_from(&data, a.at_us, a.tenant, &a.batch));
        assert!(g.queue_depth() <= 8, "queue overflowed its bound");
    }
    all.extend(g.drain(&data));
    assert_eq!(
        all.len(),
        arrivals.len(),
        "every arrival must resolve exactly once"
    );
    assert_eq!(g.submitted(), arrivals.len());

    // Completions ↔ journal, 1:1: every non-shed completion was served
    // through `serve_durable` and journaled as one batch record with a
    // contiguous batch index; shed requests never reached the supervisor
    // and must have no record.
    let scan = journal::read_journal(durability.journal_path()).expect("readable journal");
    let mut journaled: Vec<usize> = scan
        .records
        .iter()
        .filter(|r| journal::record_type(r) == Some("batch"))
        .map(|r| journal::record_batch_index(r).expect("batch record has index"))
        .collect();
    journaled.sort_unstable();
    let not_shed = all
        .iter()
        .filter(|c| !matches!(c.outcome, BatchOutcome::Shed { .. }))
        .count();
    assert_eq!(
        journaled.len(),
        not_shed,
        "journal must hold exactly one batch record per non-shed completion"
    );
    assert_eq!(
        journaled,
        (0..not_shed).collect::<Vec<_>>(),
        "journaled batch indices must be contiguous from 0"
    );

    // Per-tenant labeled counters ↔ completions: each
    // `gt_gateway_tenant_*_total{tenant="t"}` series matches that
    // tenant's completions, and served + shed partition each tenant's
    // stream.
    let snapshot = telemetry.snapshot();
    let tenants = wl.tenant_weights.len();
    let mut submitted_sum = 0u64;
    for t in 0..tenants {
        let tenant = t.to_string();
        let labels = [("tenant", tenant.as_str())];
        let submitted = snapshot.counter_with("gt_gateway_tenant_submitted_total", &labels);
        let served = snapshot.counter_with("gt_gateway_tenant_served_total", &labels);
        let shed = snapshot.counter_with("gt_gateway_tenant_shed_total", &labels);
        submitted_sum += submitted;
        assert_eq!(
            submitted,
            all.iter().filter(|c| c.tenant == t).count() as u64,
            "tenant {t} submitted counter disagrees with completions"
        );
        assert_eq!(
            served + shed,
            submitted,
            "tenant {t}'s served + shed must partition its submissions"
        );
    }
    assert_eq!(
        submitted_sum,
        g.submitted() as u64,
        "per-tenant submitted counters must sum to the gateway total"
    );
    // Label-migration compatibility: summing a family over its label
    // values (what `MetricsSnapshot::counter` does) must equal what the
    // retired per-name counters (`gt_gateway_tenant{t}_submitted_total`)
    // summed to — dashboards aggregating the family see the same total.
    assert_eq!(
        snapshot.counter("gt_gateway_tenant_submitted_total"),
        submitted_sum,
        "family sum across tenant= labels must equal the per-name total"
    );

    // The scenario must actually exercise the machinery it reconciles.
    let quota_shed = all
        .iter()
        .filter(|c| {
            c.outcome
                == BatchOutcome::Shed {
                    cause: ShedCause::QuotaExceeded,
                }
        })
        .count();
    assert!(quota_shed > 0, "tenant 2 must trip its quota");
    let stats = g.supervisor.cache_stats().expect("caches enabled");
    assert!(stats.embedding_hits > 0, "the hot set must hit the cache");

    let mut digest = String::new();
    for c in &all {
        digest.push_str(&format!(
            "{}:t{}:{:?}:q{}:s{}:d{};",
            c.request_index, c.tenant, c.outcome, c.queued_us, c.service_us, c.done_us
        ));
    }
    digest.push_str(&format!(
        "eh={};em={};sh={};sm={};saved={}",
        stats.embedding_hits,
        stats.embedding_misses,
        stats.subgraph_hits,
        stats.subgraph_misses,
        stats.saved_us
    ));
    let _ = std::fs::remove_dir_all(&dir);
    digest
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The in-process invariants at whatever width this process runs.
#[test]
fn serving_day_reconciles_journal_and_tenant_counters() {
    let digest = run_scenario("main_a");
    // Determinism within one process, too.
    assert_eq!(digest, run_scenario("main_b"));
}

/// Prints the scenario digest when [`DIGEST_ENV`] is set; a no-op test
/// otherwise. Exists to be re-executed by
/// [`serving_day_is_bit_identical_across_thread_widths`].
#[test]
fn digest_helper() {
    if std::env::var(DIGEST_ENV).is_err() {
        return;
    }
    println!("serving-digest={:#018x}", fnv1a(&run_scenario("child")));
}

/// `GT_THREADS=1` and `GT_THREADS=4` resolve the identical serving day —
/// outcomes, tenants, cache counters, virtual timestamps, everything.
#[test]
fn serving_day_is_bit_identical_across_thread_widths() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_at = |threads: &str| -> String {
        let out = std::process::Command::new(&exe)
            .args(["digest_helper", "--exact", "--nocapture"])
            .env(DIGEST_ENV, "1")
            .env(gt_par::THREADS_ENV, threads)
            .output()
            .expect("re-exec test binary");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "GT_THREADS={threads} child failed:\n{stdout}"
        );
        stdout
            .lines()
            .find_map(|l| l.split_once("serving-digest=").map(|(_, d)| d))
            .and_then(|d| d.split_whitespace().next())
            .unwrap_or_else(|| panic!("no digest in GT_THREADS={threads} output:\n{stdout}"))
            .to_string()
    };
    let one = digest_at("1");
    let four = digest_at("4");
    assert_eq!(
        one, four,
        "serving resolution diverged between GT_THREADS=1 and GT_THREADS=4"
    );
}
