//! Discrete-event scheduler microbenchmarks: cost of planning the four
//! preprocessing strategies for a realistic batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_core::data::GraphData;
use gt_core::prepro::run_prepro;
use gt_core::scheduler::{schedule_prepro, PreproStrategy};
use gt_sample::SamplerConfig;
use gt_sim::SystemSpec;

fn bench_strategies(c: &mut Criterion) {
    let data = GraphData::synthetic(10_000, 120_000, 256, 4, 7);
    let batch: Vec<u32> = (0..300).collect();
    let pr = run_prepro(
        &data,
        &batch,
        &SamplerConfig {
            fanout: 15,
            layers: 2,
            seed: 3,
            ..Default::default()
        },
    );
    let sys = SystemSpec::paper_testbed();
    let mut g = c.benchmark_group("schedule_prepro");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for strat in [
        PreproStrategy::Serial,
        PreproStrategy::SerialPinned,
        PreproStrategy::Pipelined,
        PreproStrategy::PipelinedRelaxed,
    ] {
        g.bench_with_input(
            BenchmarkId::new("strategy", format!("{strat:?}")),
            &strat,
            |b, &s| b.iter(|| schedule_prepro(&pr.work, &sys, s)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
