//! Aggregation-first vs combination-first, measured as *real CPU time*:
//! the crossover DKP exploits (§V-A) exists on the host too, because both
//! orders do genuinely different amounts of arithmetic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_core::data::GraphData;
use gt_core::napa::Pull;
use gt_core::prepro::run_prepro;
use gt_sample::SamplerConfig;
use gt_tensor::dense::Matrix;
use gt_tensor::init::xavier;
use gt_tensor::sparse::Reduce;
use std::sync::Arc;

fn bench_orders(c: &mut Criterion) {
    let mut g = c.benchmark_group("dkp_order");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    // Light (64-dim) vs heavy (1024-dim) feature widths, hidden = 64.
    for feat in [64usize, 1024] {
        let data = GraphData::synthetic(4_000, 40_000, feat, 4, 7);
        let batch: Vec<u32> = (0..200).collect();
        let pr = run_prepro(
            &data,
            &batch,
            &SamplerConfig {
                fanout: 15,
                layers: 2,
                seed: 3,
                ..Default::default()
            },
        );
        let layer = Arc::clone(&pr.layers[0]);
        let x = pr.features;
        let w = xavier(feat, 64, 1);
        let pull = Pull::new(Arc::clone(&layer), Reduce::Mean);
        g.bench_with_input(
            BenchmarkId::new("aggregation_first", feat),
            &feat,
            |b, _| {
                b.iter(|| {
                    let a = pull.compute(&x, None);
                    a.matmul(&w)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("combination_first", feat),
            &feat,
            |b, _| {
                b.iter(|| {
                    let t = x.matmul(&w);
                    pull.compute(&t, None)
                })
            },
        );
        let _ = Matrix::zeros(1, 1);
    }
    g.finish();
}

criterion_group!(benches, bench_orders);
criterion_main!(benches);
