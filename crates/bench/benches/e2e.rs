//! End-to-end train-batch wall time per framework (real CPU execution:
//! preprocessing + kernels + autodiff + SGD on one small workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_baselines::{Baseline, BaselineKind};
use gt_core::config::ModelConfig;
use gt_core::data::GraphData;
use gt_core::framework::Framework;
use gt_core::trainer::{GraphTensor, GtVariant};
use gt_sample::SamplerConfig;
use gt_sim::SystemSpec;

fn sampler() -> SamplerConfig {
    SamplerConfig {
        fanout: 10,
        layers: 2,
        seed: 5,
        ..Default::default()
    }
}

fn bench_frameworks(c: &mut Criterion) {
    let data = GraphData::synthetic(4_000, 50_000, 128, 8, 3);
    let batch: Vec<u32> = (0..200).collect();
    let model = ModelConfig::gcn(2, 64, 8);
    let mut g = c.benchmark_group("train_batch");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    for variant in [GtVariant::Base, GtVariant::Dynamic, GtVariant::Prepro] {
        let mut t = GraphTensor::new(variant, model.clone(), SystemSpec::paper_testbed());
        t.sampler = sampler();
        let name = t.name();
        g.bench_with_input(BenchmarkId::new("graphtensor", name), &0, |b, _| {
            b.iter(|| t.train_batch(&data, &batch))
        });
    }

    for kind in [
        BaselineKind::Pyg,
        BaselineKind::Dgl,
        BaselineKind::GnnAdvisor,
    ] {
        let mut bl = Baseline::new(kind, model.clone(), SystemSpec::paper_testbed());
        bl.sampler = sampler();
        g.bench_with_input(BenchmarkId::new("baseline", kind.label()), &0, |b, _| {
            b.iter(|| bl.train_batch(&data, &batch))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_frameworks);
criterion_main!(benches);
