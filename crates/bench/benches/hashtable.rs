//! VID hash-table microbenchmarks: the shared structure whose contention
//! Fig 14 analyzes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_sample::VidMap;
use std::sync::Arc;

fn bench_sequential(c: &mut Criterion) {
    let mut g = c.benchmark_group("vidmap_sequential");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for n in [10_000u32, 100_000] {
        g.bench_with_input(BenchmarkId::new("insert_or_get", n), &n, |b, &n| {
            b.iter(|| {
                let m = VidMap::new();
                for i in 0..n {
                    m.insert_or_get(i % (n / 2)); // 50% hits
                }
                m.len()
            })
        });
        g.bench_with_input(BenchmarkId::new("lookup", n), &n, |b, &n| {
            let m = VidMap::new();
            for i in 0..n {
                m.insert_or_get(i);
            }
            b.iter(|| {
                let mut acc = 0u32;
                for i in 0..n {
                    acc = acc.wrapping_add(m.get(i).unwrap());
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_concurrent(c: &mut Criterion) {
    let mut g = c.benchmark_group("vidmap_concurrent");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for threads in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| {
                let m = Arc::new(VidMap::new());
                let handles: Vec<_> = (0..t as u32)
                    .map(|tid| {
                        let m = Arc::clone(&m);
                        std::thread::spawn(move || {
                            for i in 0..20_000u32 {
                                m.insert_or_get((i + tid * 10_000) % 30_000);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                m.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sequential, bench_concurrent);
criterion_main!(benches);
