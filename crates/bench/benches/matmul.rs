//! Dense kernel microbenchmarks: the combination (MLP) substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_tensor::dense::Matrix;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (m, k, n) in [
        (512usize, 256usize, 64usize),
        (2048, 128, 64),
        (512, 4353, 64),
    ] {
        let a = Matrix::from_fn(m, k, |r, c| ((r + c) % 17) as f32 * 0.1);
        let b = Matrix::from_fn(k, n, |r, c| ((r * c) % 13) as f32 * 0.1);
        g.bench_with_input(
            BenchmarkId::new("ab", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| bch.iter(|| a.matmul(&b)),
        );
        let bt = b.transpose();
        g.bench_with_input(
            BenchmarkId::new("abT", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| bch.iter(|| a.matmul_transpose_b(&bt)),
        );
    }
    g.finish();
}

fn bench_activations(c: &mut Criterion) {
    let mut g = c.benchmark_group("activations");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let x = Matrix::from_fn(2048, 256, |r, c| ((r + c) % 7) as f32 - 3.0);
    g.bench_function("relu", |b| b.iter(|| x.relu()));
    let grad = Matrix::from_fn(2048, 256, |_, _| 1.0);
    g.bench_function("relu_grad", |b| b.iter(|| x.relu_grad(&grad)));
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_activations);
criterion_main!(benches);
