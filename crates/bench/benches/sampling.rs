//! Neighbor-sampling and reindexing microbenchmarks (the S and R stages
//! of §II-B, which dominate light-feature preprocessing per Fig 12a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_graph::convert::coo_to_csr;
use gt_graph::generators::rmat;
use gt_sample::{reindex_layer, sample_batch, SamplerConfig};

fn bench_sampling(c: &mut Criterion) {
    let coo = rmat(20_000, 400_000, 13);
    let (csr, _) = coo_to_csr(&coo);
    let batch: Vec<u32> = (0..300).collect();
    let mut g = c.benchmark_group("sampling");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for fanout in [5usize, 15, 25] {
        let cfg = SamplerConfig {
            fanout,
            layers: 2,
            seed: 1,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("fanout", fanout), &fanout, |b, _| {
            b.iter(|| sample_batch(&csr, &batch, &cfg))
        });
    }
    g.finish();
}

fn bench_reindex(c: &mut Criterion) {
    let coo = rmat(20_000, 400_000, 13);
    let (csr, _) = coo_to_csr(&coo);
    let batch: Vec<u32> = (0..300).collect();
    let out = sample_batch(
        &csr,
        &batch,
        &SamplerConfig {
            fanout: 15,
            layers: 2,
            seed: 1,
            ..Default::default()
        },
    );
    let mut g = c.benchmark_group("reindex");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (k, hop) in out.hops.iter().enumerate() {
        g.bench_with_input(BenchmarkId::new("hop", k + 1), &k, |b, _| {
            b.iter(|| reindex_layer(hop, &out.vidmap, out.boundaries[k], out.boundaries[k + 1]))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sampling, bench_reindex);
criterion_main!(benches);
