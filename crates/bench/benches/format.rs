//! Format-translation microbenchmarks (COO↔CSR/CSC) — the per-batch cost
//! Graph-approach frameworks pay (§III, Fig 5c).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_graph::convert::{coo_to_csc, coo_to_csr, csr_to_coo, csr_to_csc};
use gt_graph::generators::rmat;

fn bench_translation(c: &mut Criterion) {
    let mut g = c.benchmark_group("format_translation");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for edges in [10_000usize, 100_000] {
        let coo = rmat(8_192, edges, 5);
        g.bench_with_input(BenchmarkId::new("coo_to_csr", edges), &edges, |b, _| {
            b.iter(|| coo_to_csr(&coo))
        });
        g.bench_with_input(BenchmarkId::new("coo_to_csc", edges), &edges, |b, _| {
            b.iter(|| coo_to_csc(&coo))
        });
        let (csr, _) = coo_to_csr(&coo);
        g.bench_with_input(BenchmarkId::new("csr_to_coo", edges), &edges, |b, _| {
            b.iter(|| csr_to_coo(&csr))
        });
        g.bench_with_input(BenchmarkId::new("csr_to_csc", edges), &edges, |b, _| {
            b.iter(|| csr_to_csc(&csr))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
