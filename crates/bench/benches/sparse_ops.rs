//! SpMM / SDDMM reference-kernel microbenchmarks across reduce modes and
//! edge ops (the Graph-approach primitives of §III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_graph::convert::coo_to_csr;
use gt_graph::generators::rmat;
use gt_tensor::dense::Matrix;
use gt_tensor::sparse::{sddmm, spmm, spmm_backward, EdgeOp, Reduce};

fn graph_and_features(feat: usize) -> (gt_graph::Csr, Matrix) {
    let coo = rmat(4_096, 40_000, 11);
    let (csr, _) = coo_to_csr(&coo);
    let x = Matrix::from_fn(4_096, feat, |r, c| ((r * 31 + c) % 97) as f32 * 0.01);
    (csr, x)
}

fn bench_spmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmm");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let (csr, x) = graph_and_features(128);
    for reduce in [Reduce::Sum, Reduce::Mean, Reduce::Max] {
        g.bench_with_input(
            BenchmarkId::new("reduce", format!("{reduce:?}")),
            &reduce,
            |b, &r| b.iter(|| spmm(&csr, &x, r)),
        );
    }
    g.bench_function("backward_mean", |b| {
        let grad = Matrix::from_fn(csr.num_vertices(), 128, |r, _| r as f32);
        b.iter(|| spmm_backward(&csr, &grad, 4_096, Reduce::Mean))
    });
    g.finish();
}

fn bench_sddmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("sddmm");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let (csr, x) = graph_and_features(128);
    for op in [EdgeOp::ElemMul, EdgeOp::ElemAdd, EdgeOp::Dot] {
        g.bench_with_input(BenchmarkId::new("op", format!("{op:?}")), &op, |b, &o| {
            b.iter(|| sddmm(&csr, &x, o))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spmm, bench_sddmm);
criterion_main!(benches);
