//! Real-CPU-time comparison of the aggregation/edge-weighting kernels on
//! identical sampled layers (the Fig 15/16 kernels, measured as actual
//! Rust code rather than through the device model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gt_core::data::GraphData;
use gt_core::napa::{NeighborApply, Pull};
use gt_core::prepro::run_prepro;
use gt_sample::SamplerConfig;
use gt_tensor::dense::Matrix;
use gt_tensor::sparse::{EdgeOp, Reduce};
use std::sync::Arc;

fn setup(feat: usize) -> (Arc<gt_sample::LayerGraph>, Matrix) {
    let data = GraphData::synthetic(5_000, 60_000, feat, 4, 7);
    let batch: Vec<u32> = (0..300).collect();
    let pr = run_prepro(
        &data,
        &batch,
        &SamplerConfig {
            fanout: 15,
            layers: 2,
            seed: 3,
            ..Default::default()
        },
    );
    let layer = Arc::clone(&pr.layers[0]);
    (layer, pr.features)
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregation");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for feat in [64usize, 512] {
        let (layer, x) = setup(feat);
        let pull = Pull::new(Arc::clone(&layer), Reduce::Mean);
        g.bench_with_input(BenchmarkId::new("napa_pull", feat), &feat, |b, _| {
            b.iter(|| pull.compute(&x, None))
        });
        g.bench_with_input(BenchmarkId::new("oracle_spmm", feat), &feat, |b, _| {
            b.iter(|| gt_tensor::sparse::spmm(&layer.csr, &x, Reduce::Mean))
        });
    }
    g.finish();
}

fn bench_edge_weighting(c: &mut Criterion) {
    let mut g = c.benchmark_group("edge_weighting");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for feat in [64usize, 512] {
        let (layer, x) = setup(feat);
        let na = NeighborApply::new(Arc::clone(&layer), EdgeOp::ElemMul);
        g.bench_with_input(
            BenchmarkId::new("napa_neighbor_apply", feat),
            &feat,
            |b, _| b.iter(|| na.compute(&x)),
        );
        g.bench_with_input(BenchmarkId::new("oracle_sddmm", feat), &feat, |b, _| {
            b.iter(|| gt_tensor::sparse::sddmm(&layer.csr, &x, EdgeOp::ElemMul))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_aggregation, bench_edge_weighting);
criterion_main!(benches);
