//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment|all> [--scale test|small|medium|N] [--seed S]
//!       [--batch B] [--fanout F] [--layers L] [--threads N]
//!       [--trace-out PATH] [--bench-out PATH] [--checkpoint-dir DIR]
//!       [--crash-at N] [--crash-site mid-journal|mid-checkpoint|after-commit]
//!       [--workers N] [--partition vertex-cut|feature-dim]
//!       [--kill-worker W] [--kill-at N]
//!
//! experiments: fig6 fig8 fig11b fig12 fig14 fig15 fig16 fig17 fig18
//!              fig19 fig20 table1 table2 table3 scalability ablation
//!              threads durability chaos cluster slo serving smoke
//! ```
//!
//! `--threads N` pins the process-wide `gt_par` pool (same effect as
//! `GT_THREADS=N`); results are bit-identical at every width, see
//! `docs/parallelism.md`. The `threads` experiment sweeps pool widths
//! 1/2/4/8 itself and ignores the knob.
//!
//! With `--trace-out`, the run records wall-clock spans and metrics and
//! writes a Chrome trace (load it at <https://ui.perfetto.dev>) plus a
//! metrics summary on stderr; see `docs/telemetry.md`.
//!
//! With `--bench-out`, the run additionally drives the perf probe and
//! writes a schema-stable `BENCH_<exp>.json` report (modeled latency
//! percentiles, throughput, stage breakdowns, env fingerprint) for
//! `benchdiff` to gate against a committed baseline; see
//! `docs/profiling.md`. The `smoke` experiment prints the same probe as
//! a table and is the CI perf gate's workload.
//!
//! `--checkpoint-dir` / `--crash-at` / `--crash-site` apply to the
//! `durability` experiment: serve durably into DIR, optionally dying at
//! an injected crash site (exit code 3); re-running with the same DIR
//! recovers from the journal and finishes bit-identically. See
//! `docs/fault_model.md` §Durability & recovery.
//!
//! The `chaos` experiment (also reachable as `--experiment chaos`) runs
//! seeded fault campaigns: `--seeds N` samples N composite fault plans
//! (`--seeds-file PATH` reads a fixed corpus instead), executes each
//! through serve/crash/recover, and checks the invariant oracle. On a
//! violation the guilty plan is delta-debugged to a minimal schedule,
//! written to `--chaos-out` (default `chaos-minimized.json`), and the
//! process exits 4. `--chaos-replay FILE` re-executes one serialized
//! plan deterministically. See `docs/fault_model.md` §Chaos campaigns.
//!
//! The `slo` experiment (also reachable as `--slo`) overloads the
//! gateway under an injected serve
//! stall until the latency SLO's burn-rate rules fire and the tracer
//! freezes a flight dump, then reconciles the dump against the journal;
//! `--flight-out PATH` writes the dump (a Chrome trace, load it at
//! <https://ui.perfetto.dev>) to disk. The same flag arms the flight
//! recorder on `chaos` runs: every injected crash site dumps its recent
//! span trees to PATH before recovery (last crash wins). All dump bytes
//! are deterministic — bit-identical at every `GT_THREADS` width. See
//! `docs/telemetry.md` §Tracing contexts and §SLOs in virtual time.
//!
//! The `cluster` experiment runs the distributed worker-kill campaign:
//! `--workers N` simulated workers split each batch (`--partition`
//! vertex-cut or feature-dim), and every campaign seed (from
//! `--seeds-file`, or derived from `--seed`) kills one derived worker at
//! one derived batch; the run must detect the death, re-replay the
//! partition from the journal, and finish bit-identical to the
//! fault-free reference, else the process exits 4. `--kill-worker W
//! --kill-at N` runs one directed kill instead, persisting its durable
//! state into `--checkpoint-dir`. With `--bench-out` it writes
//! `BENCH_cluster.json` — per-worker busy/idle/link time, collective
//! time, modeled recovery time, hedge counters, and the fleet skew
//! figures (busy/stage imbalance, straggler attribution), all in
//! virtual time — which is the `cluster-smoke` CI gate's workload. For
//! `cluster`, `--trace-out` writes the *cross-worker* Perfetto trace
//! (the coordinator plus one process per worker, flow-linked, all
//! virtual time) instead of the wall-clock span tree; `--fleet-out`
//! writes the fleet health report (the `/fleetz` page body), and
//! `--serve-metrics PORT` serves `/metrics`, `/healthz`, and `/fleetz`
//! after the campaign, self-scrapes each page, and shuts down (port 0
//! binds an ephemeral port). See `docs/distributed.md`.
//!
//! The `serving` experiment runs the million-user scenario: a seeded
//! open-loop diurnal workload (hot-key skew, flash crowds, three
//! tenants) against the durable gateway with per-tenant quotas, deficit
//! round robin, and the skew-exploiting serving caches enabled. With
//! `--bench-out` it writes `BENCH_serving.json` — cache hit rates,
//! shed/degrade totals, and the p99-vs-load curve, all in virtual time
//! and bit-identical at every `GT_THREADS` width — which is the
//! `serving-smoke` CI gate's workload. See `docs/serving.md`.

use gt_bench::experiments::*;
use gt_bench::ExpConfig;
use gt_datasets::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all> [--scale test|small|medium|<divisor>] \
         [--seed S] [--batch B] [--fanout F] [--layers L] [--threads N] \
         [--trace-out PATH] [--bench-out PATH] [--checkpoint-dir DIR] \
         [--crash-at N] [--crash-site mid-journal|mid-checkpoint|after-commit] \
         [--experiment NAME] [--seeds N] [--seeds-file PATH] \
         [--chaos-replay FILE] [--chaos-out PATH] [--flight-out PATH] [--slo] \
         [--workers N] [--partition vertex-cut|feature-dim] \
         [--kill-worker W] [--kill-at N] [--fleet-out PATH] \
         [--serve-metrics PORT]\n\
         experiments: fig6 fig8 fig11b fig12 fig14 fig15 fig16 fig17 fig18 \
         fig19 fig20 table1 table2 table3 scalability ablation threads \
         durability chaos cluster slo serving smoke"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut cfg = ExpConfig::default();
    let mut trace_out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut durability_opts = durability::DurabilityOpts::default();
    let mut chaos_opts = chaos::ChaosOpts::default();
    let mut cluster_opts = cluster::ClusterOpts::default();
    let mut slo_opts = slo::SloOpts::default();
    let mut serving_opts = serving::ServingOpts::default();
    // The experiment is normally the first positional argument; flag-only
    // invocations (e.g. `repro --chaos-replay plan.json`) name it via
    // `--experiment` or imply `chaos` from a replay file.
    let mut exp = String::new();
    let mut i = 0;
    if !args[0].starts_with('-') {
        exp = args[0].clone();
        i = 1;
    }
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = match args.get(i).map(|s| s.as_str()) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    Some(n) => Scale::Custom(n.parse().unwrap_or_else(|_| usage())),
                    None => usage(),
                };
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(usage_v);
            }
            "--batch" => {
                i += 1;
                cfg.batch = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(usage_v);
            }
            "--fanout" => {
                i += 1;
                cfg.fanout = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(usage_v);
            }
            "--layers" => {
                i += 1;
                cfg.layers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(usage_v);
            }
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(usage_v);
                // The global pool reads GT_THREADS on first use; nothing has
                // touched it yet, so this pins every experiment's pool width.
                std::env::set_var(gt_par::THREADS_ENV, n.to_string());
            }
            "--trace-out" => {
                i += 1;
                trace_out = Some(args.get(i).cloned().unwrap_or_else(usage_v));
            }
            "--bench-out" => {
                i += 1;
                bench_out = Some(args.get(i).cloned().unwrap_or_else(usage_v));
            }
            "--checkpoint-dir" => {
                i += 1;
                durability_opts.dir = Some(args.get(i).cloned().unwrap_or_else(usage_v).into());
            }
            "--crash-at" => {
                i += 1;
                durability_opts.crash_at = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(usage_v),
                );
            }
            "--crash-site" => {
                i += 1;
                durability_opts.crash_site = args
                    .get(i)
                    .and_then(|s| gt_sim::CrashSite::parse(s))
                    .unwrap_or_else(usage_v);
            }
            "--experiment" => {
                i += 1;
                exp = args.get(i).cloned().unwrap_or_else(usage_v);
            }
            "--seeds" => {
                i += 1;
                chaos_opts.seeds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(usage_v);
            }
            "--seeds-file" => {
                i += 1;
                let path: std::path::PathBuf = args.get(i).cloned().unwrap_or_else(usage_v).into();
                chaos_opts.seeds_file = Some(path.clone());
                cluster_opts.seeds_file = Some(path);
            }
            "--workers" => {
                i += 1;
                cluster_opts.workers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(usage_v);
            }
            "--partition" => {
                i += 1;
                cluster_opts.partition = args
                    .get(i)
                    .and_then(|s| gt_core::Partition::parse(s))
                    .unwrap_or_else(usage_v);
            }
            "--kill-worker" => {
                i += 1;
                cluster_opts.kill_worker = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(usage_v),
                );
            }
            "--kill-at" => {
                i += 1;
                cluster_opts.kill_at = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(usage_v),
                );
            }
            "--fleet-out" => {
                i += 1;
                cluster_opts.fleet_out = Some(args.get(i).cloned().unwrap_or_else(usage_v).into());
            }
            "--serve-metrics" => {
                i += 1;
                cluster_opts.serve_metrics = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(usage_v),
                );
            }
            "--chaos-replay" => {
                i += 1;
                chaos_opts.replay = Some(args.get(i).cloned().unwrap_or_else(usage_v).into());
            }
            "--chaos-out" => {
                i += 1;
                chaos_opts.out = Some(args.get(i).cloned().unwrap_or_else(usage_v).into());
            }
            "--flight-out" => {
                i += 1;
                let path: std::path::PathBuf = args.get(i).cloned().unwrap_or_else(usage_v).into();
                chaos_opts.flight_out = Some(path.clone());
                slo_opts.flight_out = Some(path);
            }
            // Shorthand for the overload/breach scenario: `repro --slo`.
            "--slo" => exp = "slo".to_string(),
            _ => usage(),
        }
        i += 1;
    }

    if exp.is_empty() {
        if chaos_opts.replay.is_some() {
            exp = "chaos".to_string();
        } else {
            usage();
        }
    }

    // `slo`, `serving`, and `cluster` serve durably too;
    // `--checkpoint-dir` names their state dir.
    slo_opts.dir = durability_opts.dir.clone();
    serving_opts.dir = durability_opts.dir.clone();
    cluster_opts.dir = durability_opts.dir.clone();

    // The cluster experiment owns `--trace-out`: it writes the
    // cross-worker virtual-time trace itself, so the generic wall-clock
    // span-tree writer below must not overwrite it.
    if exp == "cluster" {
        cluster_opts.trace_out = trace_out.take().map(Into::into);
    }

    if trace_out.is_some() || cluster_opts.serve_metrics.is_some() {
        gt_telemetry::set_global(gt_telemetry::Telemetry::recording());
    }

    println!(
        "GraphTensor-RS repro: {exp} (scale ÷{}, seed {}, batch {}, fanout {}, layers {})",
        cfg.scale.divisor(),
        cfg.seed,
        cfg.batch,
        cfg.fanout,
        cfg.layers
    );

    let run_one = |name: &str, cfg: &ExpConfig| match name {
        "fig6" => fig6::print(cfg),
        "fig8" => fig8::print(cfg),
        "fig11b" => fig11b::print(cfg),
        "fig12" => fig12::print(cfg),
        "fig14" => fig14::print(cfg),
        "fig15" => {
            fig15::print(cfg, fig15::Model::Gcn);
            fig15::print(cfg, fig15::Model::Ngcf);
        }
        "fig16" => fig16::print(cfg),
        "fig17" => fig17::print(cfg),
        "fig18" => fig18::print(cfg),
        "fig19" => fig19::print(cfg),
        "fig20" => fig20::print(cfg),
        "table1" => table1::print(cfg),
        "table2" => table2::print(cfg),
        "table3" => table3::print(),
        "ablation" => ablation::print(cfg),
        "scalability" => scalability::print(cfg),
        "threads" => threads::print(cfg),
        "durability" => durability::print(cfg, &durability_opts),
        "chaos" => chaos::print(cfg, &chaos_opts),
        "cluster" => cluster::print(cfg, &cluster_opts),
        "slo" => slo::print(cfg, &slo_opts),
        "serving" => serving::print(cfg, &serving_opts),
        "smoke" => gt_bench::probe::print(cfg),
        _ => usage(),
    };

    if exp == "all" {
        for name in [
            "table2",
            "table3",
            "fig6",
            "fig8",
            "fig11b",
            "table1",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig12",
            "fig14",
            "fig19",
            "fig20",
            "scalability",
            "ablation",
            "threads",
            "durability",
        ] {
            run_one(name, &cfg);
        }
    } else {
        run_one(&exp, &cfg);
    }

    if let Some(path) = bench_out {
        // `serving` and `cluster` distill their own scenarios; everything
        // else shares the training-loop perf probe.
        let report = if exp == "serving" {
            serving::report(&cfg, &serving_opts)
        } else if exp == "cluster" {
            cluster::report(&cfg, &cluster_opts)
        } else {
            gt_bench::probe::report(&exp, &cfg)
        };
        match std::fs::write(&path, report.to_json_string()) {
            Ok(()) => eprintln!(
                "wrote {} modeled + {} wall metrics to {path} (gate with benchdiff)",
                report.metrics.len(),
                report.wall.len()
            ),
            Err(e) => {
                eprintln!("failed to write bench report to {path}: {e}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = trace_out {
        let telemetry = gt_telemetry::global();
        let trace = telemetry.trace(&format!("repro {exp}"));
        let json = gt_telemetry::write_chrome_json(&[&trace]);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!(
                "wrote {} spans to {path} (open at https://ui.perfetto.dev)",
                trace.events.len()
            ),
            Err(e) => eprintln!("failed to write trace to {path}: {e}"),
        }
        eprint!("{}", gt_telemetry::summary::render(&telemetry.snapshot()));
    }
}

fn usage_v<T>() -> T {
    usage()
}
