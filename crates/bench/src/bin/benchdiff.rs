//! `benchdiff` — compare two `BENCH_<exp>.json` reports and gate on
//! regressions.
//!
//! ```text
//! benchdiff BASELINE CANDIDATE [--tolerance FRACTION] [--wall] [--allow-new]
//! ```
//!
//! Modeled metrics always gate; `--wall` additionally gates the
//! wall-clock family (off by default — those are machine-dependent).
//! `--tolerance` is a relative noise band, default `0.3` (±30%).
//! Modeled metrics only the candidate has are a schema break by default
//! (a stale baseline silently stops covering them); `--allow-new`
//! downgrades them to a warning — vanished metrics stay fatal either way.
//!
//! Exit codes: `0` no regression, `1` regression (or schema break:
//! version/experiment mismatch, vanished or — without `--allow-new` —
//! added metric), `2` usage or I/O error.

use gt_bench::benchjson::{compare, BenchReport};

fn usage() -> ! {
    eprintln!("usage: benchdiff BASELINE CANDIDATE [--tolerance FRACTION] [--wall] [--allow-new]");
    std::process::exit(2);
}

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    text.parse().unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.3;
    let mut wall = false;
    let mut allow_new = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--wall" => wall = true,
            "--allow-new" => allow_new = true,
            p if !p.starts_with("--") => paths.push(p.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let [base_path, cand_path] = paths.as_slice() else {
        usage();
    };

    let base = load(base_path);
    let cand = load(cand_path);
    let diff = compare(&base, &cand, tolerance, wall, allow_new);

    if let Some(why) = &diff.incompatible {
        eprintln!("benchdiff: {why}");
        std::process::exit(1);
    }

    println!(
        "benchdiff: {} vs {} (experiment {:?}, tolerance ±{:.0}%{})",
        base_path,
        cand_path,
        base.experiment,
        tolerance * 100.0,
        if wall { ", wall gated" } else { "" }
    );
    for l in &diff.lines {
        println!(
            "  {:<28} {:>14.1} -> {:>14.1}  ({}{})  {}",
            l.name,
            l.base,
            l.cand,
            if l.ratio.is_nan() {
                "n/a".to_string()
            } else {
                format!("{:.2}x", l.ratio)
            },
            if l.higher_is_better {
                ", higher ok"
            } else {
                ""
            },
            if l.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for name in &diff.missing {
        println!("  {name:<28} MISSING from candidate (schema break)");
    }
    for name in &diff.added {
        let fatal = diff.new_fatal && !name.starts_with("wall:");
        println!(
            "  {name:<28} new in candidate ({})",
            if fatal {
                "schema break; pass --allow-new to accept"
            } else {
                "not gated"
            }
        );
    }

    if diff.regressed() {
        let n = diff.lines.iter().filter(|l| l.regressed).count()
            + diff.missing.len()
            + if diff.new_fatal {
                diff.fatal_added().len()
            } else {
                0
            };
        // Every failing metric with both values, not just a count: a CI
        // log must show the whole damage in one run.
        for line in diff.failure_summary().lines() {
            eprintln!("benchdiff:   {line}");
        }
        eprintln!("benchdiff: {n} regression(s)");
        std::process::exit(1);
    }
    println!("benchdiff: no regressions");
}
