//! SLO burn-rate breach under sustained overload — the flight-recorder
//! acceptance scenario (docs/telemetry.md §SLOs in virtual time).
//!
//! Not a paper figure: this experiment drives the gateway with arrivals
//! far faster than an injected serve stall lets it drain, so the latency
//! SLO burns its error budget, the multi-window rules fire, and the
//! tracer freezes a flight dump at the breach instant. Everything is
//! priced in DES virtual time, so the breach timeline, the alert stream,
//! and the dump bytes are a pure function of `(workload, seed)` —
//! bit-identical across runs and `GT_THREADS` widths, which is what CI's
//! flight-recorder smoke job asserts with a plain `cmp`.

use crate::runner::{print_table, ExpConfig};
use gt_core::config::ModelConfig;
use gt_core::error::GtError;
use gt_core::journal;
use gt_core::serve::{DurabilityConfig, Supervisor};
use gt_core::trainer::GtVariant;
use gt_core::{Gateway, OverloadConfig, TracerConfig};
use gt_sim::FaultPlan;
use gt_telemetry::{dump_outcomes, SloAlert, SloSpec};
use std::path::PathBuf;

/// Overload-scenario knobs (separate from the `Copy` [`ExpConfig`]).
#[derive(Debug, Clone)]
pub struct SloOpts {
    /// Durable-state directory (journal + checkpoint). `None`: a
    /// throwaway directory under the system temp dir, fresh each run.
    pub dir: Option<PathBuf>,
    /// Also write the breach dump here (the tracer's `flight_path`).
    pub flight_out: Option<PathBuf>,
    /// Requests submitted to the gateway, 1 ms apart in virtual time.
    pub requests: usize,
    /// Injected serve stall per batch, virtual µs — the overload source.
    pub stall_us: f64,
    /// The latency objective: completions slower than this are bad.
    pub threshold_us: f64,
}

impl Default for SloOpts {
    fn default() -> Self {
        SloOpts {
            dir: None,
            flight_out: None,
            requests: 24,
            stall_us: 50_000.0,
            threshold_us: 20_000.0,
        }
    }
}

/// What the overloaded run did, in assertable form.
#[derive(Debug)]
pub struct Summary {
    /// Requests submitted.
    pub requests: usize,
    /// `(outcome label, count)` over every traced request.
    pub outcomes: Vec<(String, usize)>,
    /// Every rule transition the SLO engine emitted, in virtual order.
    pub alerts: Vec<SloAlert>,
    /// Final `/healthz`-style state (`ok` or `breach:<rule>`).
    pub slo_state: String,
    /// `(reason, artifact bytes)` per flight dump taken.
    pub dumps: Vec<(String, usize)>,
    /// Traced requests whose `outcome_json` matched the journal record
    /// byte for byte (every journaled batch in the dump must).
    pub reconciled: usize,
}

/// Drive the overloaded gateway to an SLO breach and reconcile the flight
/// dump against the write-ahead journal. `Err` means the driver could not
/// run or the dump *disagreed* with the journal — the one invariant this
/// experiment exists to hold.
pub fn run(cfg: &ExpConfig, opts: &SloOpts) -> Result<Summary, GtError> {
    let spec = gt_datasets::by_name("reddit2").expect("known dataset");
    let data = cfg.build(&spec);
    let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);

    let plan = FaultPlan::new(cfg.seed).with_serve_delay_window(opts.stall_us, 0, None);
    let mut trainer = cfg.graphtensor(GtVariant::Dynamic, model);
    trainer.telemetry = gt_telemetry::Telemetry::recording();
    let mut sup = Supervisor::new(trainer, plan);
    sup.enable_tracing(
        TracerConfig {
            seed: cfg.seed,
            flight_path: opts.flight_out.clone(),
            ..TracerConfig::default()
        },
        Some(SloSpec::latency(opts.threshold_us, 0.9)),
    );
    let dir = opts.dir.clone().unwrap_or_else(|| {
        let d = std::env::temp_dir().join("gt_repro_slo");
        let _ = std::fs::remove_dir_all(&d);
        d
    });
    let durability = DurabilityConfig::new(&dir);
    sup.make_durable(durability.clone())?;

    // Arrivals every 1 ms against a stall tens of ms deep: the queue
    // fills, the gateway sheds and degrades, and the SLO burns.
    let mut g = Gateway::new(
        sup,
        OverloadConfig {
            queue_capacity: 4,
            deadline_us: f64::INFINITY,
            degrade_watermark: 2,
            halve_watermark: 3,
            reduced_fanout: 2,
        },
    );
    let n = cfg.batch.min(data.num_vertices());
    let (nv, seed) = (data.num_vertices(), cfg.seed);
    let stream: Vec<_> = (0u64..)
        .flat_map(|epoch| gt_sample::BatchIter::new(nv, n, seed.wrapping_add(epoch)))
        .take(opts.requests)
        .collect();
    for (i, batch) in stream.iter().enumerate() {
        g.submit(&data, i as f64 * 1000.0, batch);
    }
    g.drain(&data);

    let tracer = g.supervisor.tracer.as_ref().expect("tracing enabled");
    let traces = tracer.recorder().traces();
    let mut outcomes: Vec<(String, usize)> = Vec::new();
    for t in &traces {
        match outcomes.iter_mut().find(|(l, _)| *l == t.outcome) {
            Some((_, c)) => *c += 1,
            None => outcomes.push((t.outcome.clone(), 1)),
        }
    }

    // Reconcile the final ring (a superset of the breach dump) against
    // the journal: the observability surface may never disagree with the
    // durable record.
    let scan = journal::read_journal(durability.journal_path())?;
    let mut journaled = std::collections::BTreeMap::new();
    for rec in &scan.records {
        if journal::record_type(rec) == Some("batch") {
            if let Some(idx) = journal::record_batch_index(rec) {
                journaled.insert(idx, rec.get("outcome").map(|o| o.to_json_string()));
            }
        }
    }
    let ring = tracer.recorder().dump("final");
    let ring_outcomes = dump_outcomes(&ring).map_err(|e| GtError::Io {
        detail: format!("flight dump is not parseable: {e:?}"),
    })?;
    let mut reconciled = 0usize;
    for (batch_index, outcome_json) in &ring_outcomes {
        match journaled.get(batch_index) {
            Some(Some(j)) if j == outcome_json => reconciled += 1,
            other => {
                return Err(GtError::Io {
                    detail: format!(
                        "flight dump disagrees with the journal at batch {batch_index}: \
                         traced {outcome_json}, journaled {other:?}"
                    ),
                })
            }
        }
    }

    Ok(Summary {
        requests: opts.requests,
        outcomes,
        alerts: tracer.alerts().to_vec(),
        slo_state: tracer.slo_state(),
        dumps: tracer
            .dumps()
            .iter()
            .map(|d| (d.reason.clone(), d.artifact.len()))
            .collect(),
        reconciled,
    })
}

/// Print the run. The breach line (`SLO BREACH ...`) and the dump line
/// are what CI's flight-recorder smoke job greps for.
pub fn print(cfg: &ExpConfig, opts: &SloOpts) {
    let s = run(cfg, opts).unwrap_or_else(|e| panic!("slo experiment failed: {e}"));
    let rows: Vec<Vec<String>> = s
        .outcomes
        .iter()
        .map(|(label, count)| vec![label.clone(), count.to_string()])
        .collect();
    print_table(
        &format!(
            "slo: {} requests under a {:.0} µs injected stall ({:.0} µs objective)",
            s.requests, opts.stall_us, opts.threshold_us
        ),
        &["outcome", "requests"],
        &rows,
    );
    for a in &s.alerts {
        println!(
            "  rule {:>6} {} at {:>9.0} µs (burn long {:.2}, short {:.2})",
            a.rule,
            if a.firing { "FIRING " } else { "cleared" },
            a.at_us,
            a.burn_long,
            a.burn_short
        );
    }
    match s.slo_state.as_str() {
        "ok" => println!("  final state: ok (no breach)"),
        state => println!("  SLO BREACH: final state {state}"),
    }
    for (reason, bytes) in &s.dumps {
        println!("  flight dump: {reason} ({bytes} B)");
    }
    if let Some(path) = &opts.flight_out {
        println!("  dump written to {}", path.display());
    }
    println!(
        "  reconciled {} traced request(s) against the journal, byte for byte",
        s.reconciled
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(tag: &str) -> SloOpts {
        let dir = std::env::temp_dir().join(format!("gt_bench_slo_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        SloOpts {
            dir: Some(dir),
            ..Default::default()
        }
    }

    /// The acceptance path: overload breaches, dumps once, and the dump
    /// reconciles exactly with the journal.
    #[test]
    fn overload_breaches_dumps_and_reconciles() {
        let cfg = ExpConfig::test();
        let s = run(&cfg, &opts("breach")).unwrap();
        assert!(s.slo_state.starts_with("breach:"), "{}", s.slo_state);
        assert!(s.alerts.iter().any(|a| a.firing));
        assert_eq!(s.dumps.len(), 1);
        assert!(s.dumps[0].0.starts_with("slo-breach:"));
        assert!(s.reconciled > 0, "served batches must reconcile");
        assert!(s.outcomes.iter().any(|(l, _)| l == "shed"));
    }

    /// The breach dump lands on disk via `--flight-out` and the whole
    /// artifact chain is deterministic run to run.
    #[test]
    fn flight_out_is_written_and_deterministic() {
        let cfg = ExpConfig::test();
        let mut a = opts("det_a");
        a.flight_out = Some(a.dir.clone().unwrap().join("flight.json"));
        let mut b = opts("det_b");
        b.flight_out = Some(b.dir.clone().unwrap().join("flight.json"));
        let sa = run(&cfg, &a).unwrap();
        let sb = run(&cfg, &b).unwrap();
        assert_eq!(sa.alerts, sb.alerts);
        assert_eq!(sa.outcomes, sb.outcomes);
        let da = std::fs::read(a.flight_out.unwrap()).unwrap();
        let db = std::fs::read(b.flight_out.unwrap()).unwrap();
        assert!(!da.is_empty());
        assert_eq!(da, db, "breach dumps diverged across identical runs");
    }
}
