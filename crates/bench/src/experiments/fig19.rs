//! Fig 19 — end-to-end latency (preprocessing + training) across PyG-MT,
//! DGL, SALIENT, Dynamic-GT, and Prepro-GT, normalized to Dynamic-GT.
//!
//! Paper: SALIENT cuts 19.7% (light) / 51.1% (heavy) off Dynamic-GT via
//! pinned transfers; Prepro-GT's service-wide tensor scheduler is another
//! 1.7× beyond that, on average.

use crate::runner::{geomean, print_table, ExpConfig};
use gt_baselines::BaselineKind;
use gt_core::config::ModelConfig;
use gt_core::framework::Framework;
use gt_core::trainer::GtVariant;
use gt_datasets::DatasetSpec;

/// One dataset's end-to-end measurements (µs per batch, steady state).
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Heavy-feature workload?
    pub heavy: bool,
    /// (framework, e2e µs).
    pub e2e: Vec<(String, f64)>,
}

impl Row {
    /// e2e latency of one framework.
    pub fn get(&self, name: &str) -> f64 {
        self.e2e
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    }

    /// Normalized to Dynamic-GT.
    pub fn normalized(&self, name: &str) -> f64 {
        self.get(name) / self.get("Dynamic-GT")
    }
}

/// Run Fig 19 over the given datasets with GCN.
pub fn run(cfg: &ExpConfig, specs: &[DatasetSpec]) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in specs {
        let data = cfg.build(spec);
        let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);
        let mut e2e = Vec::new();
        for kind in [
            BaselineKind::PygMt,
            BaselineKind::Dgl,
            BaselineKind::Salient,
        ] {
            let mut b = cfg.baseline(kind, model.clone());
            let overlap = b.overlaps_batches();
            let reports = cfg.measure(&mut b, &data, 0);
            let mean =
                reports.iter().map(|r| r.e2e_us(overlap)).sum::<f64>() / reports.len() as f64;
            e2e.push((kind.label().to_string(), mean));
        }
        for variant in [GtVariant::Dynamic, GtVariant::Prepro] {
            let mut t = cfg.graphtensor(variant, model.clone());
            let overlap = t.overlaps_batches();
            let reports = cfg.measure(&mut t, &data, 3);
            let mean =
                reports.iter().map(|r| r.e2e_us(overlap)).sum::<f64>() / reports.len() as f64;
            e2e.push((t.name(), mean));
        }
        rows.push(Row {
            dataset: spec.name.to_string(),
            heavy: spec.heavy(),
            e2e,
        });
    }
    rows
}

/// Print both panels.
pub fn print(cfg: &ExpConfig) {
    for (panel, specs) in [
        ("light", gt_datasets::light()),
        ("heavy", gt_datasets::heavy()),
    ] {
        let rows = run(cfg, &specs);
        let names: Vec<String> = rows[0].e2e.iter().map(|(n, _)| n.clone()).collect();
        let mut header = vec!["dataset"];
        header.extend(names.iter().map(|s| s.as_str()));
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut cols = vec![r.dataset.clone()];
                cols.extend(names.iter().map(|n| format!("{:.2}", r.normalized(n))));
                cols
            })
            .collect();
        print_table(
            &format!("Fig 19 ({panel}): end-to-end latency normalized to Dynamic-GT (paper: Prepro-GT ≈1.7x better than SALIENT)"),
            &header,
            &table,
        );
        let prepro: Vec<f64> = rows.iter().map(|r| r.normalized("Prepro-GT")).collect();
        let salient: Vec<f64> = rows.iter().map(|r| r.normalized("SALIENT")).collect();
        println!(
            "  geomean: SALIENT {:.2}, Prepro-GT {:.2} → Prepro-GT/SALIENT gain {:.2}x",
            geomean(&salient),
            geomean(&prepro),
            geomean(&salient) / geomean(&prepro)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_ordering_holds() {
        let mut cfg = ExpConfig::test();
        cfg.batch = 120; // enough work that scheduling differences dominate
        let specs = [gt_datasets::by_name("reddit2").unwrap()];
        let rows = run(&cfg, &specs);
        let r = &rows[0];
        // Prepro-GT is the best end-to-end.
        for other in ["PyG-MT", "DGL", "SALIENT", "Dynamic-GT"] {
            assert!(
                r.get("Prepro-GT") <= r.get(other) * 1.001,
                "Prepro-GT {} !<= {other} {}",
                r.get("Prepro-GT"),
                r.get(other)
            );
        }
        // Non-overlapping PyG-MT cannot beat the best overlapped system.
        assert!(r.get("PyG-MT") > r.get("Prepro-GT"));
    }

    #[test]
    fn salient_pinned_prepro_beats_pageable() {
        // SALIENT's advantage is preprocessing (pinned + overlap); its
        // PyG-derived kernels can still lose on compute, so the pinned
        // claim is asserted on preprocessing directly.
        let mut cfg = ExpConfig::test();
        cfg.batch = 120;
        let spec = gt_datasets::by_name("gowalla").unwrap();
        let data = cfg.build(&spec);
        let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);
        let mut sal = cfg.baseline(BaselineKind::Salient, model.clone());
        let mut t = cfg.graphtensor(GtVariant::Dynamic, model);
        let rs = cfg.measure(&mut sal, &data, 0);
        let rd = cfg.measure(&mut t, &data, 0);
        assert!(
            rs[0].prepro_us() < rd[0].prepro_us(),
            "SALIENT prepro {} !< Dynamic-GT prepro {}",
            rs[0].prepro_us(),
            rd[0].prepro_us()
        );
    }
}
