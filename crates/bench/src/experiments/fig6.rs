//! Fig 6 — challenges in GNN extension frameworks.
//!
//! (a) DL-approach GPU memory footprint, normalized by the input embedding
//!     table (paper: 5.8× on average).
//! (b) Graph-approach SDDMM cache bloat: extra data loaded into SM caches
//!     relative to the unique working set (paper: +81.9% on average).

use crate::runner::{geomean, print_table, ExpConfig};
use gt_baselines::graph_approach::EdgeWiseEdgeWeight;
use gt_baselines::BaselineKind;
use gt_core::framework::Framework;
use gt_core::napa::schedule::edge_wise_cache;
use gt_core::prepro::run_prepro;
use gt_sim::DeviceSpec;
use gt_tensor::sparse::EdgeOp;

/// One dataset's bloat measurements.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Fig 6a: peak device memory / input embedding table bytes.
    pub memory_footprint: f64,
    /// Fig 6b: cache bytes loaded / unique working set − 1.
    pub cache_bloat: f64,
}

/// Measure both subfigures for every Table-II workload.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let dev = DeviceSpec::rtx3090();
    let mut rows = Vec::new();
    for spec in gt_datasets::registry() {
        let data = cfg.build(&spec);
        let batch = cfg.batch_ids(&data);

        // (a) DL-approach (PyG) running NGCF — the edge-weighting path is
        // where DL-approach cannot avoid the bloat (§III).
        let model = gt_core::config::ModelConfig::ngcf(cfg.layers, 64, spec.out_dim);
        let mut pyg = cfg.baseline(BaselineKind::Pyg, model);
        let report = pyg.train_batch(&data, &batch);
        let table_bytes = (report.num_nodes * spec.feature_dim * 4) as f64;
        let memory_footprint = report.sim.memory.peak() as f64 / table_bytes;

        // (b) Graph-approach SDDMM cache loads over the same batch.
        let pr = run_prepro(&data, &batch, &cfg.sampler());
        let row_bytes = (spec.feature_dim * 4) as u64;
        let mut loaded = 0u64;
        let mut unique = 0u64;
        for layer in &pr.layers {
            let cache = edge_wise_cache(layer, row_bytes, dev.num_sms);
            loaded += cache.loaded_bytes();
            unique += cache.unique_rows() as u64 * row_bytes;
        }
        let cache_bloat = if unique == 0 {
            0.0
        } else {
            loaded as f64 / unique as f64 - 1.0
        };

        rows.push(Row {
            dataset: spec.name.to_string(),
            memory_footprint,
            cache_bloat,
        });
    }
    rows
}

/// Print both subfigures.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{:.2}x", r.memory_footprint),
                format!("+{:.1}%", r.cache_bloat * 100.0),
            ]
        })
        .collect();
    print_table(
        "Fig 6: framework challenges (paper: footprint 5.8x avg, cache +81.9% avg)",
        &["dataset", "6a DL mem footprint", "6b Graph cache bloat"],
        &table,
    );
    let gm = geomean(&rows.iter().map(|r| r.memory_footprint).collect::<Vec<_>>());
    let cb = rows.iter().map(|r| r.cache_bloat).sum::<f64>() / rows.len() as f64;
    println!(
        "average: footprint {gm:.2}x (paper 5.8x), cache bloat +{:.1}% (paper +81.9%)",
        cb * 100.0
    );
}

/// The SDDMM kernel whose loads Fig 6b measures — re-exported for benches.
pub fn sddmm_kernel(layer: std::sync::Arc<gt_sample::LayerGraph>) -> EdgeWiseEdgeWeight {
    EdgeWiseEdgeWeight::new(layer, EdgeOp::ElemMul)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl_bloat_and_cache_bloat_are_positive() {
        let cfg = ExpConfig::test();
        let rows = run(&cfg);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(
                r.memory_footprint > 1.0,
                "{}: footprint {} should exceed the table itself",
                r.dataset,
                r.memory_footprint
            );
            assert!(r.cache_bloat >= 0.0, "{}", r.dataset);
        }
        // At least the skewed graphs must show real cache duplication.
        assert!(rows.iter().any(|r| r.cache_bloat > 0.2));
    }
}
