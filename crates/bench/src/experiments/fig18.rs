//! Fig 18 — DKP's impact on the two representative workloads: FLOPs and
//! global-memory accesses of Base-GT (static placement) normalized to
//! Dynamic-GT (paper: 5.4× more FLOPs, 1.4× more global accesses without
//! DKP, averaged over products and wiki-talk).

use crate::runner::{print_table, ExpConfig};
use gt_core::config::ModelConfig;
use gt_core::framework::Framework;
use gt_core::trainer::GtVariant;

/// One (dataset, model) DKP-impact measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Base-GT FLOPs / Dynamic-GT FLOPs.
    pub flops_ratio: f64,
    /// Base-GT global bytes / Dynamic-GT global bytes.
    pub gmem_ratio: f64,
    /// Base-GT modeled GPU latency / Dynamic-GT latency.
    pub gpu_ratio: f64,
    /// Decisions (aggregation-first, combination-first) Dynamic-GT made.
    pub decisions: (usize, usize),
}

/// Measure FLOPs/global-access ratios.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for name in ["products", "wiki-talk"] {
        let spec = gt_datasets::by_name(name).unwrap();
        let data = cfg.build(&spec);
        let batch = cfg.batch_ids(&data);
        for (mname, model) in [
            ("GCN", ModelConfig::gcn(cfg.layers, 64, spec.out_dim)),
            ("NGCF", ModelConfig::ngcf(cfg.layers, 64, spec.out_dim)),
        ] {
            let mut base = cfg.graphtensor(GtVariant::Base, model.clone());
            let rb = base.train_batch(&data, &batch);
            let mut dynamic = cfg.graphtensor(GtVariant::Dynamic, model.clone());
            // Calibrate, then measure a steady batch.
            for _ in 0..3 {
                dynamic.train_batch(&data, &batch);
            }
            let rd = dynamic.train_batch(&data, &batch);
            let sb = rb.sim.total_stats();
            let sd = rd.sim.total_stats();
            rows.push(Row {
                dataset: name.to_string(),
                model: mname.to_string(),
                flops_ratio: sb.flops as f64 / sd.flops.max(1) as f64,
                gmem_ratio: sb.global_bytes() as f64 / sd.global_bytes().max(1) as f64,
                gpu_ratio: rb.gpu_us() / rd.gpu_us().max(1e-9),
                decisions: dynamic.dkp_decisions(),
            });
        }
    }
    rows
}

/// Print the ratios.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.model.clone(),
                format!("{:.2}x", r.flops_ratio),
                format!("{:.2}x", r.gmem_ratio),
                format!("{:.2}x", r.gpu_ratio),
                format!("{}/{}", r.decisions.0, r.decisions.1),
            ]
        })
        .collect();
    print_table(
        "Fig 18: Base-GT work normalized to Dynamic-GT (paper avg: FLOPs 5.4x, global mem 1.4x; \
         here DKP optimizes latency, trading FLOPs for traffic — see EXPERIMENTS.md)",
        &[
            "dataset",
            "model",
            "FLOPs",
            "global mem",
            "latency",
            "AF/CF decisions",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dkp_saves_traffic_on_heavy_features() {
        let cfg = ExpConfig::test();
        let rows = run(&cfg);
        let wiki = rows
            .iter()
            .find(|r| r.dataset == "wiki-talk" && r.model == "GCN")
            .unwrap();
        // Combination-first slashes the memory-bound aggregation's traffic
        // (4353-dim gathers become 64-dim).
        assert!(
            wiki.gmem_ratio > 1.3,
            "no traffic saving on wiki-talk: {}x",
            wiki.gmem_ratio
        );
        // Dynamic actually chose combination-first somewhere.
        assert!(wiki.decisions.1 > 0, "no combination-first decisions");
    }

    #[test]
    fn dynamic_never_slower_than_base() {
        // DKP optimizes modeled latency: it may spend more FLOPs to save
        // memory traffic, but must never lose on latency (it can always
        // fall back to aggregation-first).
        let cfg = ExpConfig::test();
        for r in run(&cfg) {
            assert!(
                r.gpu_ratio > 0.98,
                "{} {}: Dynamic slower than Base ({}x)",
                r.dataset,
                r.model,
                r.gpu_ratio
            );
            assert!(r.flops_ratio.is_finite() && r.flops_ratio > 0.3);
        }
    }
}
