//! The million-user serving scenario (EXPERIMENTS.md "serving"): an
//! open-loop diurnal workload against the multi-tenant cached gateway.
//!
//! Not a paper figure: this experiment composes the serving stack the
//! paper's training pipeline grew into — the seeded workload generator
//! ([`gt_datasets::workload`]), the fair-queue admission gateway with
//! per-tenant token-bucket quotas ([`gt_core::Gateway`]), and the
//! skew-exploiting serving caches ([`gt_core::ServingCaches`]) — and
//! distills one compressed "day" of traffic into BENCH metrics:
//!
//! * cache hit rates (the Zipf hot set and template repeats must pay off),
//! * served/shed/degraded totals, broken down by shed cause and tenant,
//! * offered load vs p99 latency over fixed windows of the day,
//! * the virtual timestamps at which each shed-ladder rung first engaged.
//!
//! The arrival rate is calibrated against a probed service time, so the
//! run sweeps from under- to over-capacity as the diurnal curve rises:
//! the trough is a pass-through, the peak (and the flash-crowd bursts)
//! engage degradation, deadline sheds, and tenant 2's quota. Everything
//! is priced in DES virtual time, so the whole report is a pure function
//! of `(config, seed)` — bit-identical across runs and `GT_THREADS`
//! widths, which is what lets CI gate it with `benchdiff` against a
//! committed `BENCH_serving.json`.

use std::path::PathBuf;
use std::time::Instant;

use crate::benchjson::{BenchConfig, BenchReport, EnvFingerprint, SCHEMA_VERSION};
use crate::runner::{print_table, ExpConfig};
use gt_core::cache::CacheStats;
use gt_core::config::ModelConfig;
use gt_core::error::GtError;
use gt_core::framework::{BatchOutcome, ShedCause};
use gt_core::serve::{DurabilityConfig, Supervisor};
use gt_core::trainer::GtVariant;
use gt_core::{CacheConfig, Completion, Gateway, OverloadConfig, TenancyConfig, TenantQuota};
use gt_datasets::workload::{self, WorkloadSpec};
use gt_sim::{FaultPlan, SystemSpec};

/// The scenario's dataset (the paper's serving-friendly light graph).
const DATASET: &str = "reddit2";

/// Baseline arrivals over the day at gap = `GAP_FACTOR` × service time.
const BASELINE_ARRIVALS: f64 = 360.0;

/// Mean inter-arrival gap as a multiple of the probed service time: just
/// above 1.0, so the diurnal peak (×1.6) and bursts (×3) overload while
/// the trough stays under capacity.
const GAP_FACTOR: f64 = 1.1;

/// Request deadline as a multiple of the probed service time.
const DEADLINE_FACTOR: f64 = 6.0;

/// Fixed windows the day is sliced into for the p99-vs-load curve.
const WINDOWS: usize = 6;

/// Serving-scenario knobs (separate from the `Copy` [`ExpConfig`]).
#[derive(Debug, Clone, Default)]
pub struct ServingOpts {
    /// Durable-state directory (journal + checkpoint). `None`: a
    /// throwaway directory under the system temp dir, fresh each run.
    pub dir: Option<PathBuf>,
}

/// Offered load and tail latency over one fixed slice of the day.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStat {
    /// Requests that arrived in the window, per virtual second.
    pub offered_rps: f64,
    /// Nearest-rank p99 of arrival→completion latency for requests
    /// arriving in the window; the deadline when none were served.
    pub p99_us: f64,
}

/// What the day of traffic did, in assertable form.
#[derive(Debug)]
pub struct Summary {
    /// The generated workload (calibrated gap, derived duration).
    pub spec: WorkloadSpec,
    /// Probed fault-free service time of one batch, virtual µs.
    pub service_us: f64,
    /// The deadline the gateway enforced, virtual µs.
    pub deadline_us: f64,
    /// Every request's resolution, exactly one per arrival.
    pub completions: Vec<Completion>,
    /// Serving-cache totals at end of day.
    pub cache: CacheStats,
    /// Offered load vs p99, one entry per fixed window.
    pub windows: Vec<WindowStat>,
    /// Virtual µs at which the first degraded completion resolved
    /// (`duration_us` when the ladder never engaged).
    pub first_degrade_us: f64,
    /// Virtual µs of the first deadline/queue-full shed (`duration_us`
    /// when none).
    pub first_shed_us: f64,
    /// Virtual µs of the first quota shed (`duration_us` when none).
    pub first_quota_shed_us: f64,
    /// Wall-clock µs the drive loop took (informational only).
    pub wall_us: f64,
}

impl Summary {
    /// Completions that trained (served, possibly degraded).
    pub fn served(&self) -> usize {
        self.completions
            .iter()
            .filter(|c| c.outcome.trained())
            .count()
    }

    /// Completions shed for `cause`.
    pub fn shed_by(&self, cause: ShedCause) -> usize {
        self.completions
            .iter()
            .filter(|c| c.outcome == BatchOutcome::Shed { cause })
            .count()
    }

    /// Completions served degraded (any ladder rung).
    pub fn degraded(&self) -> usize {
        self.completions
            .iter()
            .filter(|c| matches!(c.outcome, BatchOutcome::Degraded { .. }))
            .count()
    }
}

/// Nearest-rank percentile over an unsorted sample.
fn percentile(values: &[f64], p: f64) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    if v.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
    v[idx.min(v.len() - 1)]
}

/// Probe the fault-free virtual service time of one workload-sized batch
/// on this config — the unit the arrival rate and deadline scale from.
fn probe_service_us(cfg: &ExpConfig, data: &gt_core::GraphData, batch_size: usize) -> f64 {
    let spec = gt_datasets::by_name(DATASET).expect("known dataset");
    let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);
    let sup = Supervisor::new(
        cfg.graphtensor(GtVariant::Dynamic, model),
        FaultPlan::new(cfg.seed),
    );
    let mut g = Gateway::new(sup, OverloadConfig::default());
    let batch = gt_sample::BatchIter::new(data.num_vertices(), batch_size, cfg.seed)
        .next()
        .expect("non-empty dataset");
    let mut c = g.submit(data, 0.0, &batch);
    c.extend(g.drain(data));
    assert_eq!(c.len(), 1);
    assert!(c[0].done_us > 0.0, "probe batch must cost virtual time");
    c[0].done_us
}

/// The workload the scenario runs: `default_day` with the gap calibrated
/// to the probed service time and the duration scaled to match.
fn calibrated_spec(cfg: &ExpConfig, service_us: f64) -> WorkloadSpec {
    let mut wl = WorkloadSpec::default_day(cfg.seed);
    wl.mean_gap_us = GAP_FACTOR * service_us;
    wl.duration_us = BASELINE_ARRIVALS * wl.mean_gap_us;
    wl.burst_len_us = wl.duration_us / 20.0;
    wl
}

/// Run one compressed day of traffic through the durable, cached,
/// multi-tenant gateway. `Err` means the durable serving layer failed —
/// the traffic itself cannot fail, only resolve.
pub fn run(cfg: &ExpConfig, opts: &ServingOpts) -> Result<Summary, GtError> {
    let spec = gt_datasets::by_name(DATASET).expect("known dataset");
    let data = cfg.build(&spec);
    let nv = data.num_vertices();
    let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);

    let wl_probe = WorkloadSpec::default_day(cfg.seed);
    let service_us = probe_service_us(cfg, &data, wl_probe.batch_size);
    let wl = calibrated_spec(cfg, service_us);
    let deadline_us = DEADLINE_FACTOR * service_us;
    let arrivals = workload::generate(&wl, nv);

    let mut sup = Supervisor::new(
        cfg.graphtensor(GtVariant::Dynamic, model),
        FaultPlan::new(cfg.seed),
    );
    sup.trainer.telemetry = gt_telemetry::Telemetry::recording();
    sup.enable_caches(CacheConfig {
        embedding_capacity: (nv / 4).max(64),
        subgraph_capacity: 64,
    });
    let dir = opts.dir.clone().unwrap_or_else(|| {
        let d = std::env::temp_dir().join("gt_repro_serving");
        let _ = std::fs::remove_dir_all(&d);
        d
    });
    // Checkpoint sparsely: every committed checkpoint bumps the parameter
    // epoch and retires cached subgraphs, and a serving process that
    // checkpointed every few requests would never keep a warm cache.
    sup.make_durable(DurabilityConfig {
        checkpoint_every: 64,
        ..DurabilityConfig::new(&dir)
    })?;

    let mut g = Gateway::new(
        sup,
        OverloadConfig {
            queue_capacity: 16,
            deadline_us,
            degrade_watermark: 6,
            halve_watermark: 10,
            reduced_fanout: 2,
        },
    );
    // Tenant 2 (a 20% offered share) is quota-capped at half what it
    // offers; tenants 0 and 1 are unlimited and share by deficit round
    // robin.
    let offered_rps = 1e6 / wl.mean_gap_us;
    g.enable_tenancy(TenancyConfig {
        quotas: vec![
            TenantQuota::unlimited(),
            TenantQuota::unlimited(),
            TenantQuota::new(0.5 * 0.2 * offered_rps, 2.0),
        ],
        quantum: wl.batch_size,
    });

    let wall = Instant::now();
    let mut completions: Vec<Completion> = Vec::with_capacity(arrivals.len());
    for a in &arrivals {
        completions.extend(g.submit_from(&data, a.at_us, a.tenant, &a.batch));
    }
    completions.extend(g.drain(&data));
    let wall_us = wall.elapsed().as_secs_f64() * 1e6;
    assert_eq!(
        completions.len(),
        arrivals.len(),
        "every arrival must resolve exactly once"
    );

    // p99-vs-load curve: bucket each request by its *arrival* window (a
    // request's latency belongs to the load level that produced it).
    let win_us = wl.duration_us / WINDOWS as f64;
    let mut offered = [0usize; WINDOWS];
    let mut latencies: Vec<Vec<f64>> = vec![Vec::new(); WINDOWS];
    for (a, c) in arrivals.iter().zip(&completions) {
        let w = ((a.at_us / win_us) as usize).min(WINDOWS - 1);
        offered[w] += 1;
        if c.outcome.trained() {
            latencies[w].push(c.done_us - a.at_us);
        }
    }
    let windows: Vec<WindowStat> = (0..WINDOWS)
        .map(|w| WindowStat {
            offered_rps: offered[w] as f64 * 1e6 / win_us,
            p99_us: if latencies[w].is_empty() {
                deadline_us
            } else {
                percentile(&latencies[w], 99.0)
            },
        })
        .collect();

    // Shed-ladder engagement points: the virtual instant each rung first
    // resolved a request, `duration_us` when a rung never fired.
    let first = |pred: &dyn Fn(&Completion) -> bool| {
        completions
            .iter()
            .filter(|c| pred(c))
            .map(|c| c.done_us)
            .fold(wl.duration_us, f64::min)
    };
    let first_degrade_us = first(&|c| matches!(c.outcome, BatchOutcome::Degraded { .. }));
    let first_shed_us = first(&|c| {
        matches!(
            c.outcome,
            BatchOutcome::Shed {
                cause: ShedCause::DeadlineExpired | ShedCause::QueueFull
            }
        )
    });
    let first_quota_shed_us = first(&|c| {
        c.outcome
            == BatchOutcome::Shed {
                cause: ShedCause::QuotaExceeded,
            }
    });

    let cache = g
        .supervisor
        .cache_stats()
        .expect("caches enabled just above");
    Ok(Summary {
        spec: wl,
        service_us,
        deadline_us,
        completions,
        cache,
        windows,
        first_degrade_us,
        first_shed_us,
        first_quota_shed_us,
        wall_us,
    })
}

/// Run the scenario and distill it into a schema-stable [`BenchReport`]
/// for `repro serving --bench-out` / the `serving-smoke` CI gate.
pub fn report(cfg: &ExpConfig, opts: &ServingOpts) -> BenchReport {
    let s = run(cfg, opts).unwrap_or_else(|e| panic!("serving experiment failed: {e}"));
    let tenants = s.spec.tenant_weights.len();
    let mut metrics: Vec<(String, f64)> = vec![
        // "hit_rate" names benchdiff's higher-is-better direction rule.
        (
            "embedding_cache_hit_rate".into(),
            s.cache.embedding_hit_rate(),
        ),
        (
            "subgraph_cache_hit_rate".into(),
            s.cache.subgraph_hit_rate(),
        ),
        ("cache_saved_us_total".into(), s.cache.saved_us),
        ("service_us".into(), s.service_us),
        ("deadline_us".into(), s.deadline_us),
        ("arrivals_total".into(), s.completions.len() as f64),
        ("served_total".into(), s.served() as f64),
        ("degraded_total".into(), s.degraded() as f64),
        (
            "shed_deadline_total".into(),
            s.shed_by(ShedCause::DeadlineExpired) as f64,
        ),
        (
            "shed_queue_full_total".into(),
            s.shed_by(ShedCause::QueueFull) as f64,
        ),
        (
            "shed_quota_total".into(),
            s.shed_by(ShedCause::QuotaExceeded) as f64,
        ),
        (
            "throughput_served_per_s".into(),
            s.served() as f64 * 1e6 / s.spec.duration_us,
        ),
        ("first_degrade_us".into(), s.first_degrade_us),
        ("first_shed_us".into(), s.first_shed_us),
        ("first_quota_shed_us".into(), s.first_quota_shed_us),
    ];
    for t in 0..tenants {
        let served = s
            .completions
            .iter()
            .filter(|c| c.tenant == t && c.outcome.trained())
            .count();
        let shed = s
            .completions
            .iter()
            .filter(|c| c.tenant == t && matches!(c.outcome, BatchOutcome::Shed { .. }))
            .count();
        metrics.push((format!("tenant{t}_served_total"), served as f64));
        metrics.push((format!("tenant{t}_shed_total"), shed as f64));
    }
    for (w, stat) in s.windows.iter().enumerate() {
        metrics.push((format!("win{w}_offered_rps"), stat.offered_rps));
        metrics.push((format!("win{w}_p99_us"), stat.p99_us));
    }

    let sys = SystemSpec::paper_testbed();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "serving".to_string(),
        config: BenchConfig {
            scale_divisor: cfg.scale.divisor() as u64,
            seed: cfg.seed,
            batch: s.spec.batch_size as u64,
            fanout: cfg.fanout as u64,
            layers: cfg.layers as u64,
            measure_batches: s.completions.len() as u64,
        },
        env: EnvFingerprint {
            threads: gt_par::ThreadPool::global().workers() as u64,
            gpu: sys.gpu.name.to_string(),
            host: sys.host.name.to_string(),
            host_cores: sys.host.cores as u64,
        },
        metrics,
        wall: vec![("wall_drive_us".into(), s.wall_us)],
    }
}

/// Print the day: totals, the p99-vs-load curve, and engagement points.
pub fn print(cfg: &ExpConfig, opts: &ServingOpts) {
    let s = run(cfg, opts).unwrap_or_else(|e| panic!("serving experiment failed: {e}"));
    let rows: Vec<Vec<String>> = s
        .windows
        .iter()
        .enumerate()
        .map(|(w, stat)| {
            vec![
                format!("{w}"),
                format!("{:.1}", stat.offered_rps),
                format!("{:.0}", stat.p99_us),
            ]
        })
        .collect();
    print_table(
        &format!(
            "serving: {} arrivals over {:.1} virtual ms ({:.0} µs service, {:.0} µs deadline)",
            s.completions.len(),
            s.spec.duration_us / 1e3,
            s.service_us,
            s.deadline_us
        ),
        &["window", "offered rps", "p99 µs"],
        &rows,
    );
    println!(
        "  served {} ({} degraded); shed: {} deadline, {} queue-full, {} quota",
        s.served(),
        s.degraded(),
        s.shed_by(ShedCause::DeadlineExpired),
        s.shed_by(ShedCause::QueueFull),
        s.shed_by(ShedCause::QuotaExceeded),
    );
    println!(
        "  caches: embedding hit rate {:.1}%, subgraph hit rate {:.1}%, {:.0} µs saved",
        100.0 * s.cache.embedding_hit_rate(),
        100.0 * s.cache.subgraph_hit_rate(),
        s.cache.saved_us,
    );
    println!(
        "  ladder engaged: degrade at {:.0} µs, shed at {:.0} µs, quota at {:.0} µs \
         (= day end when never)",
        s.first_degrade_us, s.first_shed_us, s.first_quota_shed_us,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(tag: &str) -> ServingOpts {
        let dir = std::env::temp_dir().join(format!("gt_bench_serving_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        ServingOpts { dir: Some(dir) }
    }

    /// The acceptance path: the skewed workload keeps the embedding cache
    /// hot (>50% hit rate), the diurnal peak engages the shed ladder, and
    /// tenant 2 trips its quota — all in one deterministic day.
    #[test]
    fn day_hits_caches_and_engages_the_ladder() {
        let cfg = ExpConfig::test();
        let s = run(&cfg, &opts("day")).unwrap();
        assert!(
            s.cache.embedding_hit_rate() > 0.5,
            "skewed workload must keep the embedding cache hot: {:.3}",
            s.cache.embedding_hit_rate()
        );
        assert!(
            s.cache.subgraph_hit_rate() > 0.0,
            "template repeats must hit the subgraph cache"
        );
        assert!(s.served() > 0, "the trough must serve");
        assert!(
            s.shed_by(ShedCause::DeadlineExpired) + s.shed_by(ShedCause::QueueFull) > 0,
            "the peak must shed"
        );
        assert!(
            s.shed_by(ShedCause::QuotaExceeded) > 0,
            "tenant 2 must trip its quota"
        );
        assert!(
            s.completions
                .iter()
                .all(|c| !matches!(c.outcome, BatchOutcome::Shed { cause: ShedCause::QuotaExceeded } if c.tenant != 2)),
            "only the capped tenant may be quota-shed"
        );
        assert!(
            s.first_degrade_us < s.spec.duration_us,
            "ladder must engage"
        );
        // The p99-vs-load curve covers the day, and the tail grows with
        // load: the deadline bounds queueing, not end-to-end latency, so
        // p99 may exceed it but must spread between trough and peak.
        assert_eq!(s.windows.len(), WINDOWS);
        assert!(s.windows.iter().all(|w| w.p99_us > 0.0));
        assert!(s.windows.iter().all(|w| w.offered_rps > 0.0));
        let p99_min = s.windows.iter().map(|w| w.p99_us).fold(f64::MAX, f64::min);
        let p99_max = s.windows.iter().map(|w| w.p99_us).fold(0.0, f64::max);
        assert!(
            p99_max > p99_min,
            "tail latency must vary with offered load"
        );
    }

    /// The whole report — workload, admission, caches, windows — is a
    /// pure function of the config: bit-identical run to run.
    #[test]
    fn report_is_deterministic() {
        let cfg = ExpConfig::test();
        let a = report(&cfg, &opts("det_a"));
        let b = report(&cfg, &opts("det_b"));
        assert_eq!(a.metrics, b.metrics);
        let back: BenchReport = a.to_json_string().parse().unwrap();
        assert_eq!(back, a);
    }

    /// Checkpoint restore invalidates the caches and the deterministic
    /// replay rebuilds them: a process recovered mid-day reaches the exact
    /// outcomes, parameters, and cache counters of one that never crashed.
    #[test]
    fn recovery_rebuilds_cache_state_and_outcomes() {
        let cfg = ExpConfig::test();
        let spec = gt_datasets::by_name(DATASET).unwrap();
        let data = cfg.build(&spec);
        let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);
        let wl = WorkloadSpec::default_day(cfg.seed);
        let batches: Vec<_> = workload::generate(&wl, data.num_vertices())
            .into_iter()
            .map(|a| a.batch)
            .take(20)
            .collect();
        let fresh = |dir: &std::path::Path| {
            let mut sup = Supervisor::new(
                cfg.graphtensor(GtVariant::Dynamic, model.clone()),
                FaultPlan::new(cfg.seed),
            );
            sup.enable_caches(CacheConfig::default());
            let _ = std::fs::remove_dir_all(dir);
            (sup, DurabilityConfig::new(dir))
        };

        // Reference: serve all 20 batches in one uninterrupted process.
        let dir_a = std::env::temp_dir().join("gt_bench_serving_rec_a");
        let (mut a, dcfg) = fresh(&dir_a);
        a.make_durable(dcfg).unwrap();
        let mut outcomes_a = Vec::new();
        let mut stats_mid = None;
        for (i, b) in batches.iter().enumerate() {
            outcomes_a.push(a.serve_durable(&data, b).unwrap().outcome);
            if i + 1 == 10 {
                stats_mid = a.cache_stats();
            }
        }

        // Crash after 10 batches, rebuild from scratch, recover, resume.
        let dir_b = std::env::temp_dir().join("gt_bench_serving_rec_b");
        let (mut b1, dcfg_b) = fresh(&dir_b);
        b1.make_durable(dcfg_b.clone()).unwrap();
        for b in &batches[..10] {
            b1.serve_durable(&data, b).unwrap();
        }
        drop(b1);
        let (mut b2, _) = fresh(&std::path::PathBuf::from("/nonexistent"));
        let rep = b2.recover(&data, dcfg_b).unwrap();
        assert_eq!(rep.batches_replayed, 10);
        assert_eq!(
            b2.cache_stats(),
            stats_mid,
            "replay must rebuild the exact cache counters"
        );
        let mut outcomes_b: Vec<_> = outcomes_a[..10].to_vec();
        for b in &batches[10..] {
            outcomes_b.push(b2.serve_durable(&data, b).unwrap().outcome);
        }
        assert_eq!(
            outcomes_a, outcomes_b,
            "recovered day must match uninterrupted"
        );
        assert_eq!(
            a.cache_stats(),
            b2.cache_stats(),
            "end-of-day cache state must match too"
        );
    }
}
