//! Table I — the DKP cost model: fitted coefficients and residual error.
//!
//! The paper fits the coefficients by least squares over kernel latencies
//! measured in the first epoch and reports a 12.5% prediction error. Here
//! we calibrate Dynamic-GT on one light and one heavy workload and report
//! the fitted coefficients, the residual MAPE, and each layer's placement
//! decision with its predicted costs.

use crate::runner::{print_table, ExpConfig};
use gt_core::config::ModelConfig;
use gt_core::framework::Framework;
use gt_core::orchestrator::{CostModel, Dims};
use gt_core::prepro::run_prepro;
use gt_core::trainer::GtVariant;
use gt_models::PAPER_HIDDEN;

/// The calibration result.
#[derive(Debug)]
pub struct Result {
    /// Fitted `[c0, c1, c2, c3]`.
    pub coefficients: [f64; 4],
    /// Residual MAPE of the fit (paper: 12.5%).
    pub fit_error: f64,
    /// Number of calibration samples.
    pub samples: usize,
    /// Per-layer decisions: (dataset, layer, dims, af cost, cf cost).
    pub decisions: Vec<(String, usize, Dims, f64, f64)>,
}

/// Calibrate and report.
pub fn run(cfg: &ExpConfig) -> Result {
    // Calibrate on a mix of light and heavy kernels so the fit covers both
    // memory- and compute-bound regimes.
    let spec_light = gt_datasets::by_name("products").unwrap();
    let spec_heavy = gt_datasets::by_name("wiki-talk").unwrap();
    let data_l = cfg.build(&spec_light);
    let data_h = cfg.build(&spec_heavy);
    let mut t = cfg.graphtensor(
        GtVariant::Dynamic,
        ModelConfig::gcn(cfg.layers, 64, spec_light.out_dim),
    );
    t.calibration_batches = 4;
    let bl = cfg.batch_ids(&data_l);
    for _ in 0..2 {
        t.train_batch(&data_l, &bl);
    }
    // Coefficients are fitted per training run (§V-A), so the heavy
    // workload gets its own calibrated trainer; the summary reports the
    // light trainer's fit and each workload's decisions use its own model.
    let mut th = cfg.graphtensor(
        GtVariant::Dynamic,
        ModelConfig::gcn(cfg.layers, 64, spec_heavy.out_dim),
    );
    th.calibration_batches = 4;
    let bh = cfg.batch_ids(&data_h);
    for _ in 0..2 {
        t.train_batch(&data_l, &bl);
        th.train_batch(&data_h, &bh);
    }
    let err = t.cost_model().fit_error().unwrap_or(0.0);
    let coefficients = t.cost_model().coefficients();
    let samples = t.cost_model().num_samples();

    // Decision rows from fresh preprocessing of both datasets, each priced
    // by the trainer calibrated on that workload (as DKP does in practice:
    // coefficients are fitted per training run, §V-A).
    let mut decisions = Vec::new();
    for (spec, data, trainer) in [(&spec_light, &data_l, &t), (&spec_heavy, &data_h, &th)] {
        let pr = run_prepro(data, &cfg.batch_ids(data), &cfg.sampler());
        let mut n_feat = spec.feature_dim;
        for (l, layer) in pr.layers.iter().enumerate() {
            let n_hid = if l + 1 == pr.layers.len() {
                spec.out_dim
            } else {
                PAPER_HIDDEN
            };
            let dims = Dims {
                n_src: layer.num_src,
                n_dst: layer.num_dst,
                n_edges: layer.csr.num_edges(),
                n_feat,
                n_hid,
            };
            let model: &CostModel = trainer.cost_model();
            decisions.push((
                spec.name.to_string(),
                l + 1,
                dims,
                model.cost_aggregation_first(&dims, l > 0),
                model.cost_combination_first(&dims, l > 0),
            ));
            n_feat = n_hid;
        }
    }
    Result {
        coefficients,
        fit_error: err,
        samples,
        decisions,
    }
}

/// Print the calibration summary.
pub fn print(cfg: &ExpConfig) {
    let r = run(cfg);
    println!("\n== Table I: DKP cost model ==");
    println!(
        "fitted coefficients: c0={:.3}us c1={:.3e} c2={:.3e} c3={:.3e} ({} samples)",
        r.coefficients[0], r.coefficients[1], r.coefficients[2], r.coefficients[3], r.samples
    );
    println!(
        "fit residual (MAPE): {:.1}%  (paper reports 12.5%)",
        r.fit_error * 100.0
    );
    let table: Vec<Vec<String>> = r
        .decisions
        .iter()
        .map(|(ds, l, d, af, cf)| {
            vec![
                ds.clone(),
                format!("L{l}"),
                format!("{}x{}→{}", d.n_src, d.n_feat, d.n_hid),
                format!("{af:.0}us"),
                format!("{cf:.0}us"),
                if cf < af { "comb-first" } else { "agg-first" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "per-layer predicted costs and decisions",
        &[
            "dataset",
            "layer",
            "shape",
            "agg-first",
            "comb-first",
            "choice",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_converges_with_low_error() {
        let cfg = ExpConfig::test();
        let r = run(&cfg);
        assert!(r.samples >= 6);
        assert!(
            r.fit_error < 0.40,
            "fit error {:.1}% too high (paper 12.5%)",
            r.fit_error * 100.0
        );
        // The active-set fit keeps rates non-negative; on launch-dominated
        // tiny kernels it may pin individual terms to zero, but something
        // must carry the signal.
        assert!(
            r.coefficients.iter().all(|&c| c >= 0.0),
            "{:?}",
            r.coefficients
        );
        assert!(
            r.coefficients[1..].iter().any(|&c| c > 0.0),
            "all work rates zero: {:?}",
            r.coefficients
        );
    }

    #[test]
    fn heavy_layer1_prefers_combination_first() {
        let cfg = ExpConfig::test();
        let r = run(&cfg);
        let wiki_l1 = r
            .decisions
            .iter()
            .find(|(ds, l, ..)| ds == "wiki-talk" && *l == 1)
            .unwrap();
        assert!(
            wiki_l1.4 < wiki_l1.3,
            "wiki-talk L1 should prefer combination-first ({} !< {})",
            wiki_l1.4,
            wiki_l1.3
        );
    }
}
