//! Durable serving — crash-consistent checkpoints and the write-ahead
//! outcome journal under an unkind fault plan (docs/fault_model.md
//! §Durability & recovery).
//!
//! Not a paper figure: this experiment exercises the robustness layer the
//! serving stack adds on top of the paper's pipeline. It serves a batch
//! stream durably, optionally killing the process at an injected crash
//! site (`--crash-at N`, `--crash-site mid-journal|mid-checkpoint|
//! after-commit`); re-running with the same `--checkpoint-dir` recovers
//! from the journal, resumes at the exact batch index, and finishes with
//! parameters bit-identical to an uninterrupted run.

use crate::runner::{print_table, ExpConfig};
use gt_core::config::ModelConfig;
use gt_core::error::GtError;
use gt_core::journal;
use gt_core::serve::{DurabilityConfig, Supervisor};
use gt_core::trainer::GtVariant;
use gt_sim::{CrashSite, FaultPlan};
use gt_tensor::checkpoint;
use std::path::PathBuf;

/// Durability knobs (separate from the `Copy` [`ExpConfig`]).
#[derive(Debug, Clone)]
pub struct DurabilityOpts {
    /// Where the journal and checkpoint live. `None`: a throwaway
    /// directory under the system temp dir (fresh each run).
    pub dir: Option<PathBuf>,
    /// Inject a crash while serving this batch index.
    pub crash_at: Option<usize>,
    /// Which durability-protocol site the crash hits.
    pub crash_site: CrashSite,
    /// Batches in the serving stream.
    pub batches: usize,
}

impl Default for DurabilityOpts {
    fn default() -> Self {
        DurabilityOpts {
            dir: None,
            crash_at: None,
            crash_site: CrashSite::MidJournal,
            batches: 12,
        }
    }
}

/// What one durable serving run did.
#[derive(Debug)]
pub struct Summary {
    /// Batches replayed from the journal before serving new work.
    pub replayed: usize,
    /// Batches served by this process (after any replay).
    pub served: usize,
    /// `(outcome label, count)` over the whole journaled history.
    pub outcomes: Vec<(String, usize)>,
    /// Records in the journal after the run.
    pub journal_records: usize,
    /// Journal size in bytes.
    pub journal_bytes: u64,
    /// Final checkpoint size in bytes.
    pub checkpoint_bytes: u64,
    /// Final checkpoint fingerprint ([`checkpoint::image_crc`]).
    pub image_crc: u32,
}

/// Serve `opts.batches` batches durably (recovering first if the journal
/// already exists). An injected crash surfaces as
/// [`GtError::InjectedCrash`] with the on-disk state a killed process
/// leaves behind.
pub fn run(cfg: &ExpConfig, opts: &DurabilityOpts) -> Result<Summary, GtError> {
    let spec = gt_datasets::by_name("reddit2").expect("known dataset");
    let data = cfg.build(&spec);
    let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);

    let mut plan = FaultPlan::new(cfg.seed)
        .with_transfer_failure(0.3)
        .with_transient_memory_pressure(1e-6, 0.15);
    // Appended last so the other rules roll identically without it —
    // that is what makes crashed+recovered comparable to uncrashed.
    if let Some(batch) = opts.crash_at {
        plan = plan.with_crash_at(batch, opts.crash_site);
    }
    let mut server = Supervisor::new(cfg.graphtensor(GtVariant::Dynamic, model), plan);

    let dir = opts.dir.clone().unwrap_or_else(|| {
        let d = std::env::temp_dir().join("gt_repro_durability");
        let _ = std::fs::remove_dir_all(&d);
        d
    });
    let durability = DurabilityConfig::new(&dir);
    let mut start = 0usize;
    if durability.journal_path().exists() {
        start = server.recover(&data, durability.clone())?.batches_replayed;
    } else {
        server.make_durable(durability.clone())?;
    }

    // BatchIter yields one epoch; chain reseeded epochs so the stream is
    // as long as the run needs while staying deterministic.
    let n = cfg.batch.min(data.num_vertices());
    let (nv, seed) = (data.num_vertices(), cfg.seed);
    let stream = (0u64..)
        .flat_map(|epoch| gt_sample::BatchIter::new(nv, n, seed.wrapping_add(epoch)))
        .take(opts.batches)
        .skip(start);
    let mut served = 0usize;
    for batch in stream {
        server.serve_durable(&data, &batch)?;
        served += 1;
    }
    server.checkpoint_now()?;

    let scan = journal::read_journal(durability.journal_path())?;
    let mut outcomes: Vec<(String, usize)> = Vec::new();
    for rec in &scan.records {
        if journal::record_type(rec) != Some("batch") {
            continue;
        }
        let label = rec
            .get("outcome")
            .and_then(|o| o.get("outcome"))
            .and_then(|l| l.as_str())
            .unwrap_or("?")
            .to_string();
        match outcomes.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1,
            None => outcomes.push((label, 1)),
        }
    }
    let image = std::fs::read(durability.checkpoint_path())?;
    Ok(Summary {
        replayed: start,
        served,
        outcomes,
        journal_records: scan.records.len(),
        journal_bytes: scan.valid_len,
        checkpoint_bytes: image.len() as u64,
        image_crc: checkpoint::image_crc(&image),
    })
}

/// Print the run; an injected crash exits with code 3 so drivers (CI) can
/// assert it fired, then re-invoke to recover.
pub fn print(cfg: &ExpConfig, opts: &DurabilityOpts) {
    match run(cfg, opts) {
        Ok(s) => {
            let rows: Vec<Vec<String>> = s
                .outcomes
                .iter()
                .map(|(label, count)| vec![label.clone(), count.to_string()])
                .collect();
            print_table(
                &format!(
                    "durability: {} replayed + {} served batches (journal {} records / {} B)",
                    s.replayed, s.served, s.journal_records, s.journal_bytes
                ),
                &["outcome", "batches"],
                &rows,
            );
            println!(
                "  final checkpoint: {} B, fingerprint {:#010x}",
                s.checkpoint_bytes, s.image_crc
            );
        }
        Err(GtError::InjectedCrash { site }) => {
            println!(
                "durability: KILLED by injected {} crash — re-run with the same \
                 --checkpoint-dir to recover",
                site.label()
            );
            std::process::exit(3);
        }
        Err(e) => panic!("durability experiment failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(dir: &std::path::Path, batches: usize) -> DurabilityOpts {
        DurabilityOpts {
            dir: Some(dir.to_path_buf()),
            batches,
            ..Default::default()
        }
    }

    /// The repro-level crash/recover cycle: crash mid-stream, re-run with
    /// the same dir, and land on the exact final checkpoint an uncrashed
    /// run produces.
    #[test]
    fn crash_and_recover_matches_uncrashed() {
        let cfg = ExpConfig::test();
        let base = std::env::temp_dir().join("gt_bench_durability");
        let _ = std::fs::remove_dir_all(&base);
        let (clean_dir, crash_dir) = (base.join("clean"), base.join("crash"));

        let clean = run(&cfg, &opts(&clean_dir, 6)).unwrap();
        assert_eq!(clean.served, 6);
        assert!(clean.journal_records >= 6);

        let mut crashing = opts(&crash_dir, 6);
        crashing.crash_at = Some(3);
        crashing.crash_site = CrashSite::AfterCommit;
        match run(&cfg, &crashing) {
            Err(GtError::InjectedCrash { site }) => assert_eq!(site, CrashSite::AfterCommit),
            other => panic!("expected injected crash, got {other:?}"),
        }
        let recovered = run(&cfg, &crashing).unwrap();
        assert_eq!(recovered.replayed, 4);
        assert_eq!(recovered.served, 2);
        assert_eq!(recovered.image_crc, clean.image_crc);
        assert_eq!(recovered.outcomes, clean.outcomes);
        let clean_img = std::fs::read(DurabilityConfig::new(&clean_dir).checkpoint_path()).unwrap();
        let rec_img = std::fs::read(DurabilityConfig::new(&crash_dir).checkpoint_path()).unwrap();
        assert_eq!(
            clean_img, rec_img,
            "final checkpoints must be bit-identical"
        );
        std::fs::remove_dir_all(&base).ok();
    }
}
