//! Fig 12a — end-to-end latency decomposition under serialized
//! preprocessing: GNN compute (FWP+BWP) is only ~15.8% of the total; light
//! feature graphs are sampling-bound, heavy ones are lookup/transfer-bound.

use crate::runner::{pct, print_table, ExpConfig};
use gt_core::framework::Framework;
use gt_core::trainer::GtVariant;
use gt_sim::Phase;

/// One dataset's decomposition (all values in µs).
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Heavy-feature workload?
    pub heavy: bool,
    /// Sampling stage wall time.
    pub sampling_us: f64,
    /// Reindexing stage wall time.
    pub reindex_us: f64,
    /// Embedding-lookup stage wall time.
    pub lookup_us: f64,
    /// Transfer stage wall time.
    pub transfer_us: f64,
    /// GPU FWP+BWP modeled time.
    pub gpu_us: f64,
}

impl Row {
    /// Total end-to-end latency (serialized stages + compute).
    pub fn total_us(&self) -> f64 {
        self.sampling_us + self.reindex_us + self.lookup_us + self.transfer_us + self.gpu_us
    }

    /// Fraction spent preprocessing (paper: 84.2% on average).
    pub fn prepro_fraction(&self) -> f64 {
        1.0 - self.gpu_us / self.total_us()
    }
}

/// Wall-clock span of one phase within a schedule.
fn span(schedule: &gt_sim::Schedule, phase: Phase) -> f64 {
    let start = schedule
        .events
        .iter()
        .filter(|e| e.phase == phase)
        .map(|e| e.start_us)
        .fold(f64::INFINITY, f64::min);
    let end = schedule.phase_finish_us(phase);
    if start.is_finite() {
        end - start
    } else {
        0.0
    }
}

/// Measure the serialized decomposition (Dynamic-GT, serial prepro) per
/// workload.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in gt_datasets::registry() {
        let data = cfg.build(&spec);
        let batch = cfg.batch_ids(&data);
        let model = gt_core::config::ModelConfig::gcn(cfg.layers, 64, spec.out_dim);
        let mut t = cfg.graphtensor(GtVariant::Dynamic, model);
        // Warm past calibration so the GPU time is the steady-state one.
        for _ in 0..3 {
            t.train_batch(&data, &batch);
        }
        let r = t.train_batch(&data, &batch);
        let s = r.prepro.as_ref().expect("serial prepro schedule");
        rows.push(Row {
            dataset: spec.name.to_string(),
            heavy: spec.heavy(),
            sampling_us: span(s, Phase::Sampling),
            reindex_us: span(s, Phase::Reindex),
            lookup_us: span(s, Phase::Lookup),
            transfer_us: span(s, Phase::Transfer),
            gpu_us: r.gpu_us(),
        });
    }
    rows
}

/// Print the decomposition.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let t = r.total_us();
            vec![
                r.dataset.clone(),
                pct(r.sampling_us / t),
                pct(r.reindex_us / t),
                pct(r.lookup_us / t),
                pct(r.transfer_us / t),
                pct(r.gpu_us / t),
            ]
        })
        .collect();
    print_table(
        "Fig 12a: end-to-end decomposition, serialized prepro (paper: compute ≈15.8%)",
        &["dataset", "S", "R", "K", "T", "FWP+BWP"],
        &table,
    );
    let avg = rows.iter().map(|r| r.prepro_fraction()).sum::<f64>() / rows.len() as f64;
    println!("average preprocessing share: {} (paper 84.2%)", pct(avg));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocessing_dominates() {
        let cfg = ExpConfig::test();
        let rows = run(&cfg);
        let avg = rows.iter().map(|r| r.prepro_fraction()).sum::<f64>() / rows.len() as f64;
        assert!(avg > 0.5, "prepro share only {avg}");
    }

    #[test]
    fn heavy_graphs_are_lookup_transfer_bound() {
        let cfg = ExpConfig::test();
        let rows = run(&cfg);
        // Average K+T share must be higher for heavy than light workloads.
        let share = |r: &Row| (r.lookup_us + r.transfer_us) / r.total_us();
        let heavy: Vec<f64> = rows.iter().filter(|r| r.heavy).map(share).collect();
        let light: Vec<f64> = rows.iter().filter(|r| !r.heavy).map(share).collect();
        let h = heavy.iter().sum::<f64>() / heavy.len() as f64;
        let l = light.iter().sum::<f64>() / light.len() as f64;
        assert!(h > l, "heavy K+T {h} !> light K+T {l}");
    }
}
