//! Fig 16 — training-latency decomposition for the two representative
//! workloads (products = light, wiki-talk = heavy): aggregation, edge
//! weighting, combination, sparse→dense conversion, format translation.

use crate::runner::{pct, print_table, ExpConfig};
use gt_baselines::BaselineKind;
use gt_core::config::ModelConfig;
use gt_core::framework::Framework;
use gt_core::trainer::GtVariant;
use gt_sim::Phase;

/// Decomposition of one (framework, model, dataset) run, in µs.
#[derive(Debug, Clone)]
pub struct Row {
    /// Framework name.
    pub framework: String,
    /// Model name ("GCN"/"NGCF").
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// (phase, µs) for the five Fig 16 phases.
    pub phases: Vec<(Phase, f64)>,
}

impl Row {
    /// Total across the decomposed phases.
    pub fn total_us(&self) -> f64 {
        self.phases.iter().map(|(_, us)| us).sum()
    }

    /// µs of one phase.
    pub fn phase_us(&self, p: Phase) -> f64 {
        self.phases
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, us)| *us)
            .unwrap_or(0.0)
    }

    /// Fraction of one phase.
    pub fn share(&self, p: Phase) -> f64 {
        self.phase_us(p) / self.total_us()
    }
}

const PHASES: [Phase; 5] = [
    Phase::Aggregation,
    Phase::EdgeWeighting,
    Phase::Combination,
    Phase::Sparse2Dense,
    Phase::FormatTranslation,
];

/// Measure the decomposition for both representative workloads.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for name in ["products", "wiki-talk"] {
        let spec = gt_datasets::by_name(name).unwrap();
        let data = cfg.build(&spec);
        let batch = cfg.batch_ids(&data);
        for (mname, model) in [
            ("GCN", ModelConfig::gcn(cfg.layers, 64, spec.out_dim)),
            ("NGCF", ModelConfig::ngcf(cfg.layers, 64, spec.out_dim)),
        ] {
            for kind in [BaselineKind::Dgl, BaselineKind::Pyg] {
                let mut b = cfg.baseline(kind, model.clone());
                let r = b.train_batch(&data, &batch);
                rows.push(Row {
                    framework: kind.label().to_string(),
                    model: mname.to_string(),
                    dataset: name.to_string(),
                    phases: PHASES.iter().map(|&p| (p, r.phase_us(p))).collect(),
                });
            }
            let mut t = cfg.graphtensor(GtVariant::Base, model.clone());
            let r = t.train_batch(&data, &batch);
            rows.push(Row {
                framework: "Base-GT".to_string(),
                model: mname.to_string(),
                dataset: name.to_string(),
                phases: PHASES.iter().map(|&p| (p, r.phase_us(p))).collect(),
            });
        }
    }
    rows
}

/// Print the decomposition.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.model.clone(),
                r.framework.clone(),
                pct(r.share(Phase::Aggregation)),
                pct(r.share(Phase::EdgeWeighting)),
                pct(r.share(Phase::Combination)),
                pct(r.share(Phase::Sparse2Dense)),
                pct(r.share(Phase::FormatTranslation)),
                format!("{:.0}us", r.total_us()),
            ]
        })
        .collect();
    print_table(
        "Fig 16: latency decomposition (paper: DGL GCN products ≈64.5% translation; PyG NGCF heavy ≈32.3% s2d)",
        &["dataset", "model", "framework", "aggr", "edgew", "comb", "s2d", "fmt", "total"],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        run(&ExpConfig::test())
    }

    #[test]
    fn dgl_translation_dominates_light_gcn() {
        let rows = rows();
        let dgl = rows
            .iter()
            .find(|r| r.framework == "DGL" && r.model == "GCN" && r.dataset == "products")
            .unwrap();
        assert!(
            dgl.share(Phase::FormatTranslation) > 0.3,
            "translation share {} too small",
            dgl.share(Phase::FormatTranslation)
        );
        // Heavy features amortize the translation (§VI-A).
        let heavy = rows
            .iter()
            .find(|r| r.framework == "DGL" && r.model == "GCN" && r.dataset == "wiki-talk")
            .unwrap();
        assert!(heavy.share(Phase::FormatTranslation) < dgl.share(Phase::FormatTranslation));
    }

    #[test]
    fn pyg_ngcf_pays_sparse2dense() {
        let rows = rows();
        let pyg = rows
            .iter()
            .find(|r| r.framework == "PyG" && r.model == "NGCF" && r.dataset == "wiki-talk")
            .unwrap();
        assert!(pyg.share(Phase::Sparse2Dense) > 0.1);
    }

    #[test]
    fn base_gt_has_no_overhead_phases() {
        for r in rows().iter().filter(|r| r.framework == "Base-GT") {
            assert_eq!(r.phase_us(Phase::Sparse2Dense), 0.0);
            assert_eq!(r.phase_us(Phase::FormatTranslation), 0.0);
        }
    }
}
