//! Chaos campaigns — seeded composite fault plans driven through the
//! durable serving stack and checked by an invariant oracle, with
//! automatic fault-schedule shrinking on violation
//! (docs/fault_model.md §Chaos campaigns).
//!
//! Where the `durability` experiment injects *one* crash at a chosen
//! site, a chaos campaign samples whole [`FaultPlan`]s — crashes at any
//! batch and site, storage faults (torn writes, short reads, ENOSPC,
//! single-bit flips) in the journal or checkpoint bytes, stalls, memory
//! pressure, delayed batch delivery — and runs each plan through
//! `serve_durable` + `recover` against a fault-free reference run of the
//! same workload. The oracle demands that every plan resolves to one of:
//!
//! * **clean** — recovered state bit-identical to the reference: same
//!   final checkpoint bytes, exactly one journaled outcome per batch and
//!   each equal to the reference outcome, quarantine identical, replay
//!   telemetry counters exactly matching the journaled outcomes, and the
//!   number of recovery cycles bounded by the plan's durability-fault
//!   count;
//! * **detected** — a bit flip surfaced as a *typed*
//!   [`GtError::CorruptJournal`] or was healed by the documented
//!   torn-tail truncation policy (acceptable only for plans that contain
//!   a journal bit-flip rule — firmware lying about committed bytes is
//!   the one fault class where detection, not transparency, is the
//!   contract);
//! * anything else is a **violation**.
//!
//! On the first violation the campaign delta-debugs the guilty plan with
//! [`gt_sim::shrink`] — dropping rules, rebasing windows, weakening fault
//! kinds while the violation still reproduces — and writes the minimized
//! plan as JSON (`--chaos-out`). `repro --chaos-replay <file>` re-executes
//! a serialized plan deterministically: same verdict, same digest, at any
//! `GT_THREADS` width.

use crate::runner::{print_table, ExpConfig};
use gt_core::config::ModelConfig;
use gt_core::error::GtError;
use gt_core::journal;
use gt_core::serve::{DurabilityConfig, RecoveryReport, Supervisor};
use gt_core::trainer::GtVariant;
use gt_core::TracerConfig;
use gt_sim::{ChaosConfig, FaultKind, FaultPlan, IoFault, IoTarget};
use gt_tensor::{chaosio, crc32::crc32};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Campaign knobs (separate from the `Copy` [`ExpConfig`]).
#[derive(Debug, Clone)]
pub struct ChaosOpts {
    /// Plans sampled per campaign when no seeds file is given; seed `i`
    /// of the campaign is `cfg.seed + i`.
    pub seeds: usize,
    /// Read campaign seeds (one integer per line, `#` comments) from this
    /// file instead of deriving them from `--seed`.
    pub seeds_file: Option<PathBuf>,
    /// Re-execute one serialized [`FaultPlan`] (JSON) instead of sampling.
    pub replay: Option<PathBuf>,
    /// Where the minimized plan is written when the oracle is violated.
    pub out: Option<PathBuf>,
    /// Batches in the serving stream (also the fault-sampling window).
    pub batches: usize,
    /// Arm the flight recorder on the faulted run and write its dump here
    /// on every injected crash site (last crash wins).
    pub flight_out: Option<PathBuf>,
    /// Test-only: plant a resume off-by-one after the first recovery, the
    /// kind of recovery-path bug the oracle + shrinker must catch.
    pub sabotage: bool,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        ChaosOpts {
            seeds: 16,
            seeds_file: None,
            replay: None,
            out: None,
            batches: 8,
            flight_out: None,
            sabotage: false,
        }
    }
}

/// How one plan resolved against the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Recovered state bit-identical to the fault-free reference.
    Clean,
    /// Corruption surfaced as a typed error or a documented heal.
    Detected(String),
    /// An invariant broke silently — the bug class chaos exists to find.
    Violation(String),
}

impl Verdict {
    /// Short label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::Detected(_) => "detected",
            Verdict::Violation(_) => "violation",
        }
    }
}

/// What one plan's execution looked like.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The oracle's verdict.
    pub verdict: Verdict,
    /// CRC-32 over the reference run's final checkpoint bytes and outcome
    /// sequence — the workload fingerprint a deterministic replay must
    /// reproduce at any thread count.
    pub digest: u32,
    /// Crash/recover cycles the faulted run went through.
    pub recoveries: usize,
}

/// One campaign's totals.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Plans executed (stops at the first violation).
    pub plans: usize,
    /// Plans that resolved bit-identical to the reference.
    pub clean: usize,
    /// Plans whose corruption was detected/healed as documented.
    pub detected: usize,
    /// `(seed, detail)` of the violating plan, if any.
    pub violation: Option<(u64, String)>,
    /// The shrunk violating plan and where its JSON was written.
    pub minimized: Option<(FaultPlan, PathBuf)>,
}

fn fresh_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicUsize = AtomicUsize::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gt_chaos_{}_{n}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Removes a throwaway durable-state directory on every exit path (the
/// shrinker runs hundreds of plans; leaked directories would pile up).
struct DirCleanup(PathBuf);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// `recover` with the plan's short-read faults armed: a short read is
/// transient, so the driver retries the recovery — bounded by the number
/// of armed faults (each attempt consumes at most one).
fn recover_with_retries(
    server: &mut Supervisor,
    data: &gt_core::data::GraphData,
    durability: &DurabilityConfig,
    short_reads: &mut Vec<(IoTarget, IoFault)>,
) -> Result<RecoveryReport, GtError> {
    let budget = short_reads.len() + 1;
    let _guard = chaosio::arm(&std::mem::take(short_reads));
    let mut attempt = 0;
    loop {
        match server.recover(data, durability.clone()) {
            Err(GtError::Io { detail }) if detail.contains("short read") && attempt < budget => {
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Counter names keyed by the outcome label they must exactly track.
const OUTCOME_COUNTERS: &[(&str, &str)] = &[
    ("succeeded", "gt_serve_succeeded_total"),
    ("recovered", "gt_serve_recovered_total"),
    ("degraded", "gt_serve_degraded_total"),
    ("quarantined", "gt_serve_quarantined_total"),
    ("shed", "gt_serve_shed_total"),
];

/// Run one plan through the full fault/recover/verify cycle.
///
/// `Err` means the driver itself could not run (environment trouble);
/// every behavior of the system under test folds into the returned
/// [`Verdict`].
pub fn run_plan(
    cfg: &ExpConfig,
    plan: &FaultPlan,
    opts: &ChaosOpts,
) -> Result<PlanReport, GtError> {
    let spec = gt_datasets::by_name("reddit2").expect("known dataset");
    let data = cfg.build(&spec);
    let make_server = |plan: FaultPlan| {
        let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);
        Supervisor::new(cfg.graphtensor(GtVariant::Dynamic, model), plan)
    };
    // The faulted run (and only it) carries the flight recorder when
    // asked: every injected crash site freezes a dump to `flight_out`
    // before the error surfaces, so the last crash's context is on disk
    // for post-mortem even though the campaign keeps going.
    let arm_flight = |server: &mut Supervisor| {
        if let Some(path) = &opts.flight_out {
            server.enable_tracing(
                TracerConfig {
                    flight_path: Some(path.clone()),
                    ..TracerConfig::default()
                },
                None,
            );
        }
    };

    // The batch stream, materialized and permuted by the plan's
    // delivery-delay rules. Both runs serve the identical permuted order:
    // delayed delivery shapes the workload, it is not a durability fault.
    let n = cfg.batch.min(data.num_vertices());
    let (nv, seed) = (data.num_vertices(), cfg.seed);
    let stream: Vec<_> = (0u64..)
        .flat_map(|epoch| gt_sample::BatchIter::new(nv, n, seed.wrapping_add(epoch)))
        .take(opts.batches)
        .collect();
    let order = gt_sim::delivery_order(plan, opts.batches);

    // ---- reference run: same workload, durability faults neutralized --
    let ref_dir = fresh_dir("ref");
    let _ref_cleanup = DirCleanup(ref_dir.clone());
    let ref_durability = DurabilityConfig::new(&ref_dir);
    let mut reference = make_server(plan.without_durability_rules());
    reference.make_durable(ref_durability.clone())?;
    for &i in &order {
        reference.serve_durable(&data, &stream[i])?;
    }
    reference.checkpoint_now()?;
    let ref_outcomes =
        journaled_outcomes(&ref_durability, opts.batches)?.map_err(|d| GtError::Io {
            detail: format!("reference run journaled inconsistent outcomes: {d}"),
        })?;
    let ref_checkpoint = std::fs::read(ref_durability.checkpoint_path())?;
    let digest = {
        let mut bytes = ref_checkpoint.clone();
        bytes.extend(ref_outcomes.join(",").into_bytes());
        crc32(&bytes)
    };
    let report = |verdict: Verdict, recoveries: usize| {
        Ok(PlanReport {
            verdict,
            digest,
            recoveries,
        })
    };
    let journal_bitflip = plan.rules().iter().any(|r| {
        matches!(
            r.kind,
            FaultKind::Io {
                target: IoTarget::Journal,
                fault: IoFault::BitFlip { .. },
            }
        )
    });

    // ---- faulted run: serve, die, recover, repeat ----------------------
    let dir = fresh_dir("run");
    let _run_cleanup = DirCleanup(dir.clone());
    let durability = DurabilityConfig::new(&dir);
    let mut short_reads: Vec<(IoTarget, IoFault)> = plan
        .rules()
        .iter()
        .filter_map(|r| match r.kind {
            FaultKind::Io {
                target,
                fault: IoFault::ShortRead,
            } => Some((target, IoFault::ShortRead)),
            _ => None,
        })
        .collect();
    let mut server = make_server(plan.clone());
    arm_flight(&mut server);
    server.make_durable(durability.clone())?;
    let mut pos = 0usize; // position in the delivery order
    let mut recoveries = 0usize;
    let max_recoveries = plan.durability_rule_count() + 3;
    let mut sabotaged = false;
    while pos < opts.batches {
        match server.serve_durable(&data, &stream[order[pos]]) {
            Ok(_) => pos += 1,
            Err(e) => {
                // Any error out of the durable path models process death:
                // rebuild the supervisor and recover from disk, exactly
                // what a restarted process would do.
                recoveries += 1;
                if recoveries > max_recoveries {
                    return report(
                        Verdict::Violation(format!(
                            "recovery not bounded: cycle {recoveries} for a plan with {} \
                             durability rules (last error: {e})",
                            plan.durability_rule_count()
                        )),
                        recoveries,
                    );
                }
                // Crash-site kills and journal faults surface as
                // InjectedCrash/Io; a fault on the *checkpoint* write
                // comes back wrapped in the tensor layer's error type.
                // All of them model process death; anything else is the
                // system misbehaving.
                let injected_checkpoint_fault =
                    matches!(e, GtError::Tensor(_)) && e.to_string().contains("injected ");
                if !matches!(e, GtError::InjectedCrash { .. } | GtError::Io { .. })
                    && !injected_checkpoint_fault
                {
                    return report(
                        Verdict::Violation(format!("serve_durable surfaced {e}")),
                        recoveries,
                    );
                }
                server = make_server(plan.clone());
                arm_flight(&mut server);
                match recover_with_retries(&mut server, &data, &durability, &mut short_reads) {
                    Ok(rec) => pos = rec.batches_replayed,
                    Err(GtError::CorruptJournal { offset, detail }) => {
                        return report(
                            if journal_bitflip {
                                Verdict::Detected(format!(
                                    "bit flip caught as CorruptJournal at offset {offset}: {detail}"
                                ))
                            } else {
                                Verdict::Violation(format!(
                                    "CorruptJournal without a bit-flip rule: {detail}"
                                ))
                            },
                            recoveries,
                        );
                    }
                    Err(e) => {
                        return report(
                            Verdict::Violation(format!("recovery failed: {e}")),
                            recoveries,
                        );
                    }
                }
                if opts.sabotage && !sabotaged {
                    // The planted bug: resume one batch past the replayed
                    // prefix, silently dropping a delivery.
                    sabotaged = true;
                    pos += 1;
                }
            }
        }
    }
    server.checkpoint_now()?;
    drop(server);

    // ---- final verification: a fresh process replays everything --------
    let telemetry = gt_telemetry::Telemetry::recording();
    let mut verifier = make_server(plan.clone());
    verifier.trainer.telemetry = telemetry.clone();
    let recovered = match recover_with_retries(&mut verifier, &data, &durability, &mut short_reads)
    {
        Ok(rec) => rec,
        Err(GtError::CorruptJournal { offset, detail }) => {
            return report(
                if journal_bitflip {
                    Verdict::Detected(format!(
                        "bit flip caught as CorruptJournal at offset {offset}: {detail}"
                    ))
                } else {
                    Verdict::Violation(format!("CorruptJournal without a bit-flip rule: {detail}"))
                },
                recoveries,
            );
        }
        Err(e) => {
            return report(
                Verdict::Violation(format!("verification recovery failed: {e}")),
                recoveries,
            );
        }
    };
    if recovered.torn_tail_dropped {
        // The serving loop truncated every real torn tail before resuming
        // and all appends after the last fault were clean, so a torn tail
        // here can only be a flipped bit masquerading as a torn append —
        // the documented heal for trailing corruption.
        return report(
            if journal_bitflip {
                Verdict::Detected(
                    "bit flip healed by torn-tail truncation on verification".to_string(),
                )
            } else {
                Verdict::Violation(
                    "verification found a torn tail after a completed run".to_string(),
                )
            },
            recoveries,
        );
    }

    // Invariant: no committed outcome lost, none duplicated, each equal
    // to the reference outcome for its batch index.
    let outcomes = match journaled_outcomes(&durability, opts.batches)? {
        Ok(o) => o,
        Err(detail) => return report(Verdict::Violation(detail), recoveries),
    };
    if recovered.batches_replayed != opts.batches {
        return report(
            Verdict::Violation(format!(
                "verification replayed {} of {} batches",
                recovered.batches_replayed, opts.batches
            )),
            recoveries,
        );
    }
    if let Some(idx) = (0..opts.batches).find(|&i| outcomes[i] != ref_outcomes[i]) {
        return report(
            Verdict::Violation(format!(
                "outcome diverged at batch {idx}: journaled {}, reference {}",
                outcomes[idx], ref_outcomes[idx]
            )),
            recoveries,
        );
    }

    // Invariant: quarantine reconstructed bit-for-bit.
    if verifier.quarantine != reference.quarantine {
        return report(
            Verdict::Violation(format!(
                "quarantine diverged: {} records recovered, {} in reference",
                verifier.quarantine.len(),
                reference.quarantine.len()
            )),
            recoveries,
        );
    }

    // Invariant: replay telemetry counters exactly match the journaled
    // outcomes — the monitoring surface may never disagree with the
    // durable record.
    let snapshot = telemetry.snapshot();
    for &(label, counter) in OUTCOME_COUNTERS {
        let journaled = outcomes
            .iter()
            .filter(|o| outcome_label(o) == label)
            .count() as u64;
        let counted = snapshot.counter(counter);
        if counted != journaled {
            return report(
                Verdict::Violation(format!(
                    "counter {counter} = {counted} but the journal holds {journaled} \
                     '{label}' outcomes"
                )),
                recoveries,
            );
        }
    }

    // Invariant: the recovered checkpoint is bit-identical to the
    // fault-free reference (recovery re-exported it from replayed
    // parameters, healing any corrupted image on the way).
    let checkpoint = std::fs::read(durability.checkpoint_path())?;
    if checkpoint != ref_checkpoint {
        return report(
            Verdict::Violation(format!(
                "final checkpoint diverged from reference ({} vs {} bytes, crc {:#010x} vs \
                 {:#010x})",
                checkpoint.len(),
                ref_checkpoint.len(),
                crc32(&checkpoint),
                crc32(&ref_checkpoint)
            )),
            recoveries,
        );
    }

    report(Verdict::Clean, recoveries)
}

/// The journaled outcome JSON per batch index. Outer `Err` is driver
/// trouble; inner `Err` is an oracle violation (missing, duplicate, or
/// out-of-range batch record).
#[allow(clippy::type_complexity)]
fn journaled_outcomes(
    durability: &DurabilityConfig,
    batches: usize,
) -> Result<Result<Vec<String>, String>, GtError> {
    let scan = journal::read_journal(durability.journal_path())?;
    let mut outcomes: Vec<Option<String>> = vec![None; batches];
    for rec in &scan.records {
        if journal::record_type(rec) != Some("batch") {
            continue;
        }
        let Some(idx) = journal::record_batch_index(rec) else {
            return Ok(Err("batch record without batch_index".to_string()));
        };
        if idx >= batches {
            return Ok(Err(format!(
                "journaled batch index {idx} out of range (stream has {batches})"
            )));
        }
        if outcomes[idx].is_some() {
            return Ok(Err(format!("batch {idx} journaled twice")));
        }
        outcomes[idx] = rec.get("outcome").map(|o| o.to_json_string());
    }
    let mut flat = Vec::with_capacity(batches);
    for (idx, o) in outcomes.into_iter().enumerate() {
        match o {
            Some(o) => flat.push(o),
            None => {
                return Ok(Err(format!(
                    "committed outcome for batch {idx} missing from the journal"
                )))
            }
        }
    }
    Ok(Ok(flat))
}

fn outcome_label(outcome_json: &str) -> String {
    gt_telemetry::json::parse(outcome_json)
        .ok()
        .and_then(|j| j.get("outcome").and_then(|l| l.as_str().map(String::from)))
        .unwrap_or_default()
}

/// Run a whole campaign: sample a plan per seed, execute it, and stop at
/// the first violation — shrinking the guilty plan to a minimal
/// reproducer and serializing it to `opts.out`.
pub fn run_campaign(cfg: &ExpConfig, opts: &ChaosOpts) -> Result<CampaignSummary, GtError> {
    let seeds: Vec<u64> = match &opts.seeds_file {
        Some(path) => read_seeds(path)?,
        None => (0..opts.seeds as u64)
            .map(|i| cfg.seed.wrapping_add(i))
            .collect(),
    };
    let chaos_cfg = ChaosConfig {
        batches: opts.batches,
        ..Default::default()
    };
    let mut summary = CampaignSummary {
        plans: 0,
        clean: 0,
        detected: 0,
        violation: None,
        minimized: None,
    };
    for seed in seeds {
        let plan = gt_sim::sample_plan(seed, &chaos_cfg);
        let rep = run_plan(cfg, &plan, opts)?;
        summary.plans += 1;
        match rep.verdict {
            Verdict::Clean => summary.clean += 1,
            Verdict::Detected(_) => summary.detected += 1,
            Verdict::Violation(detail) => {
                summary.violation = Some((seed, detail));
                summary.minimized = Some(shrink_and_write(cfg, &plan, opts));
                return Ok(summary);
            }
        }
    }
    Ok(summary)
}

/// Delta-debug `plan` down to a minimal schedule that still violates the
/// oracle, and write it as JSON for `repro --chaos-replay`.
fn shrink_and_write(cfg: &ExpConfig, plan: &FaultPlan, opts: &ChaosOpts) -> (FaultPlan, PathBuf) {
    let minimized = gt_sim::shrink(
        plan,
        |candidate| {
            matches!(
                run_plan(cfg, candidate, opts),
                Ok(PlanReport {
                    verdict: Verdict::Violation(_),
                    ..
                })
            )
        },
        200,
    );
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("chaos-minimized.json"));
    let json = gt_sim::plan_to_json(&minimized).to_json_string();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("failed to write minimized plan to {}: {e}", path.display());
    }
    (minimized, path)
}

/// Re-execute a serialized plan. Deterministic: the same file yields the
/// same verdict and digest on every run, at every `GT_THREADS` width.
pub fn run_replay(cfg: &ExpConfig, path: &Path, opts: &ChaosOpts) -> Result<PlanReport, GtError> {
    let text = std::fs::read_to_string(path)?;
    let parse_err = |detail: String| GtError::Io { detail };
    let json = gt_telemetry::json::parse(&text)
        .map_err(|e| parse_err(format!("{}: not JSON: {e:?}", path.display())))?;
    let plan = gt_sim::plan_from_json(&json)
        .map_err(|e| parse_err(format!("{}: not a fault plan: {e}", path.display())))?;
    run_plan(cfg, &plan, opts)
}

pub(crate) fn read_seeds(path: &Path) -> Result<Vec<u64>, GtError> {
    let text = std::fs::read_to_string(path)?;
    let mut seeds = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        seeds.push(line.parse().map_err(|_| GtError::Io {
            detail: format!("{}:{}: not a seed: {line:?}", path.display(), lineno + 1),
        })?);
    }
    if seeds.is_empty() {
        return Err(GtError::Io {
            detail: format!("{}: no seeds", path.display()),
        });
    }
    Ok(seeds)
}

/// Print a replay or campaign; exits 4 when the oracle is violated so CI
/// can tell an invariant break (4) from an injected crash (3).
pub fn print(cfg: &ExpConfig, opts: &ChaosOpts) {
    if let Some(path) = &opts.replay {
        let rep =
            run_replay(cfg, path, opts).unwrap_or_else(|e| panic!("chaos replay failed: {e}"));
        println!(
            "chaos replay {}: {} (digest {:#010x}, {} recoveries)",
            path.display(),
            rep.verdict.label(),
            rep.digest,
            rep.recoveries
        );
        if let Verdict::Violation(detail) | Verdict::Detected(detail) = &rep.verdict {
            println!("  {detail}");
        }
        print_flight_out(opts);
        if matches!(rep.verdict, Verdict::Violation(_)) {
            std::process::exit(4);
        }
        return;
    }
    let summary = run_campaign(cfg, opts).unwrap_or_else(|e| panic!("chaos campaign failed: {e}"));
    print_table(
        &format!(
            "chaos: {} plans × {} batches (oracle: bit-identical recovery)",
            summary.plans, opts.batches
        ),
        &["verdict", "plans"],
        &[
            vec!["clean".to_string(), summary.clean.to_string()],
            vec!["detected".to_string(), summary.detected.to_string()],
            vec![
                "violation".to_string(),
                usize::from(summary.violation.is_some()).to_string(),
            ],
        ],
    );
    print_flight_out(opts);
    if let Some((seed, detail)) = &summary.violation {
        println!("  seed {seed} VIOLATED the oracle: {detail}");
        if let Some((plan, path)) = &summary.minimized {
            println!(
                "  minimized to {} rule(s), written to {} — reproduce with: \
                 repro chaos --chaos-replay {}",
                plan.len(),
                path.display(),
                path.display()
            );
        }
        std::process::exit(4);
    }
}

/// Where the last crash's flight dump landed, if the recorder was armed.
fn print_flight_out(opts: &ChaosOpts) {
    if let Some(path) = &opts.flight_out {
        if path.exists() {
            println!("  flight dump (last crash site): {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::CrashSite;

    fn opts(batches: usize) -> ChaosOpts {
        ChaosOpts {
            batches,
            ..Default::default()
        }
    }

    /// Single-crash plans recover bit-identically — the durability
    /// contract restated through the chaos oracle.
    #[test]
    fn crash_plans_resolve_clean() {
        let cfg = ExpConfig::test();
        for site in [
            CrashSite::MidJournal,
            CrashSite::MidCheckpoint,
            CrashSite::AfterCommit,
        ] {
            let plan = FaultPlan::new(11)
                .with_transfer_failure(0.3)
                .with_crash_at(3, site);
            let rep = run_plan(&cfg, &plan, &opts(6)).unwrap();
            assert_eq!(rep.verdict, Verdict::Clean, "site {site:?}");
            assert_eq!(rep.recoveries, 1, "site {site:?}");
        }
    }

    /// With the flight recorder armed, every injected crash freezes its
    /// context to disk before the campaign recovers and moves on.
    #[test]
    fn crash_plans_write_flight_dumps_when_asked() {
        let cfg = ExpConfig::test();
        let dir = std::env::temp_dir().join("gt_chaos_flight");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut o = opts(6);
        o.flight_out = Some(dir.join("flight.json"));
        let plan = FaultPlan::new(11).with_crash_at(3, CrashSite::MidJournal);
        let rep = run_plan(&cfg, &plan, &o).unwrap();
        assert_eq!(
            rep.verdict,
            Verdict::Clean,
            "tracing must not perturb the oracle"
        );
        let text = std::fs::read_to_string(dir.join("flight.json")).unwrap();
        assert!(
            text.contains("crash:mid-journal"),
            "dump names the crash site"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Storage faults below the durability layer either stay invisible
    /// (write faults retried after recovery) or resolve as documented
    /// detections (journal bit flips).
    #[test]
    fn storage_fault_plans_satisfy_the_oracle() {
        let cfg = ExpConfig::test();
        for fault in [IoFault::TornWrite, IoFault::Enospc] {
            let plan = FaultPlan::new(5).with_io_fault(2, IoTarget::Journal, fault);
            let rep = run_plan(&cfg, &plan, &opts(6)).unwrap();
            assert_eq!(rep.verdict, Verdict::Clean, "fault {fault:?}");
            assert_eq!(rep.recoveries, 1, "fault {fault:?}");
        }
        // A checkpoint bit flip is healed by recovery's re-export: the
        // journal carries the CRC of the true image, not the lie on disk.
        let plan = FaultPlan::new(5)
            .with_crash_at(4, CrashSite::AfterCommit)
            .with_io_fault(3, IoTarget::Checkpoint, IoFault::BitFlip { bit: 17 });
        assert_eq!(
            run_plan(&cfg, &plan, &opts(6)).unwrap().verdict,
            Verdict::Clean
        );
        // A write fault on the *periodic* checkpoint (due every 8th
        // batch) surfaces through the tensor layer, not as GtError::Io;
        // the driver must still treat it as process death and the last
        // good checkpoint + journal must carry the run to a clean finish.
        let plan = FaultPlan::new(5).with_io_fault(7, IoTarget::Checkpoint, IoFault::Enospc);
        let rep = run_plan(&cfg, &plan, &opts(8)).unwrap();
        assert_eq!(rep.verdict, Verdict::Clean, "periodic checkpoint ENOSPC");
        assert_eq!(rep.recoveries, 1, "periodic checkpoint ENOSPC");
        // A journal bit flip may heal as a torn tail or surface as
        // CorruptJournal — but never pass silently corrupted.
        let plan = FaultPlan::new(5)
            .with_io_fault(2, IoTarget::Journal, IoFault::BitFlip { bit: 70 })
            .with_crash_at(4, CrashSite::AfterCommit);
        let rep = run_plan(&cfg, &plan, &opts(6)).unwrap();
        assert!(
            !matches!(rep.verdict, Verdict::Violation(_)),
            "journal bit flip must resolve clean or detected, got {:?}",
            rep.verdict
        );
    }

    /// A short campaign over sampled composite plans: every plan must
    /// satisfy the oracle.
    #[test]
    fn sampled_campaign_has_no_violations() {
        let cfg = ExpConfig::test();
        let mut o = opts(6);
        o.seeds = 5;
        let summary = run_campaign(&cfg, &o).unwrap();
        assert_eq!(summary.plans, 5);
        assert_eq!(
            summary.violation, None,
            "minimized: {:?}",
            summary.minimized
        );
        assert_eq!(summary.clean + summary.detected, 5);
    }

    /// The acceptance scenario: a planted recovery bug (resume
    /// off-by-one) is caught by the oracle, shrunk to a minimal plan, and
    /// the serialized reproducer replays to the same violation.
    #[test]
    fn sabotaged_recovery_is_caught_shrunk_and_replayable() {
        let cfg = ExpConfig::test();
        let mut o = opts(6);
        o.sabotage = true;
        // A noisy composite plan; only the crash is needed to expose the
        // planted bug, and the shrinker must find that out by itself.
        let plan = FaultPlan::new(23)
            .with_transfer_failure(0.4)
            .with_transient_memory_pressure(1e-6, 0.2)
            .with_io_fault(4, IoTarget::Journal, IoFault::TornWrite)
            .with_crash_at(2, CrashSite::MidJournal);
        let rep = run_plan(&cfg, &plan, &o).unwrap();
        let Verdict::Violation(detail) = &rep.verdict else {
            panic!("sabotage not caught: {:?}", rep.verdict);
        };
        assert!(!detail.is_empty());

        let minimized = gt_sim::shrink(
            &plan,
            |p| {
                matches!(
                    run_plan(&cfg, p, &o),
                    Ok(PlanReport {
                        verdict: Verdict::Violation(_),
                        ..
                    })
                )
            },
            120,
        );
        assert_eq!(
            minimized.len(),
            1,
            "minimal cause is one rule: {minimized:?}"
        );
        let replay = run_plan(&cfg, &minimized, &o).unwrap();
        assert!(matches!(replay.verdict, Verdict::Violation(_)));

        // Round-trip through the JSON artifact and re-execute: verdict
        // and digest are deterministic.
        let json = gt_sim::plan_to_json(&minimized).to_json_string();
        let parsed = gt_sim::plan_from_json(&gt_telemetry::json::parse(&json).unwrap()).unwrap();
        let again = run_plan(&cfg, &parsed, &o).unwrap();
        assert_eq!(again.verdict, replay.verdict);
        assert_eq!(again.digest, replay.digest);

        // Without the sabotage the same minimized plan is clean — the
        // bug was in the (planted) recovery path, not the plan.
        o.sabotage = false;
        assert_eq!(run_plan(&cfg, &parsed, &o).unwrap().verdict, Verdict::Clean);
    }

    /// Delivery reordering shapes the workload for both runs: a plan
    /// that only delays batches is clean with zero recoveries.
    #[test]
    fn delivery_delays_are_workload_not_faults() {
        let cfg = ExpConfig::test();
        let plan = FaultPlan::new(9).with_delivery_delay(1, 2);
        let rep = run_plan(&cfg, &plan, &opts(6)).unwrap();
        assert_eq!(rep.verdict, Verdict::Clean);
        assert_eq!(rep.recoveries, 0);
    }
}
