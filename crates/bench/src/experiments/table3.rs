//! Table III — qualitative comparison across GNN frameworks.
//!
//! Rows for the frameworks implemented in this repo (PyG, GNNAdvisor, DGL,
//! ROC, GraphTensor) come from their live
//! [`gt_core::framework::FrameworkTraits`]; the frameworks the paper cites
//! but this repo does not implement (NeuGraph, FlexGraph, FeatGraph, G3)
//! are reproduced as the paper states them.

use crate::runner::print_table;
use gt_baselines::BaselineKind;
use gt_core::config::ModelConfig;
use gt_core::framework::{Framework, FrameworkTraits};
use gt_core::trainer::GtVariant;
use gt_sim::SystemSpec;

/// One Table-III row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Framework name.
    pub name: String,
    /// "DL", "Graph", or "Ours".
    pub group: &'static str,
    /// The trait flags.
    pub traits: FrameworkTraits,
    /// Whether this row is measured from a live implementation.
    pub implemented: bool,
}

/// Assemble all rows.
pub fn run() -> Vec<Row> {
    let model = ModelConfig::gcn(2, 64, 4);
    let sys = SystemSpec::paper_testbed();
    let mut rows = Vec::new();
    for (kind, group) in [
        (BaselineKind::Pyg, "DL"),
        (BaselineKind::GnnAdvisor, "DL"),
        (BaselineKind::Dgl, "Graph"),
        (BaselineKind::Roc, "Graph"),
    ] {
        let b = gt_baselines::Baseline::new(kind, model.clone(), sys.clone());
        rows.push(Row {
            name: b.name(),
            group,
            traits: b.traits(),
            implemented: true,
        });
    }
    // Paper-stated rows for frameworks not implemented here.
    let stated = |name: &str, group, fmt, mb, ft, cb, po| Row {
        name: name.to_string(),
        group,
        traits: FrameworkTraits {
            initial_format: fmt,
            memory_bloat: mb,
            format_translation: ft,
            cache_bloat: cb,
            prepro_overhead: po,
        },
        implemented: false,
    };
    rows.insert(1, stated("NeuGraph", "DL", "CSR", true, false, true, 'O'));
    rows.insert(3, stated("FlexGraph", "DL", "CSR", true, false, true, 'O'));
    rows.push(stated("FeatGraph", "Graph", "COO", false, true, true, 'D'));
    rows.push(stated("G3", "Graph", "COO", false, true, true, 'O'));
    let gt = gt_core::trainer::GraphTensor::new(GtVariant::Prepro, model, sys);
    rows.push(Row {
        name: "GraphTensor".to_string(),
        group: "Ours",
        traits: gt.traits(),
        implemented: true,
    });
    rows
}

fn mark(b: bool) -> &'static str {
    if b {
        "O"
    } else {
        "X"
    }
}

/// Print the table.
pub fn print() {
    let rows = run();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.group.to_string(),
                format!("{}{}", r.name, if r.implemented { " *" } else { "" }),
                r.traits.initial_format.to_string(),
                mark(r.traits.memory_bloat).to_string(),
                mark(r.traits.format_translation).to_string(),
                mark(r.traits.cache_bloat).to_string(),
                r.traits.prepro_overhead.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table III: framework comparison (O = suffers, X = free, D = partial; * = implemented & measured in this repo)",
        &["group", "framework", "format", "mem bloat", "fmt trans", "cache bloat", "prepro"],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graphtensor_is_the_only_all_clear_row() {
        let rows = run();
        let gt = rows.iter().find(|r| r.name == "GraphTensor").unwrap();
        assert!(!gt.traits.memory_bloat);
        assert!(!gt.traits.format_translation);
        assert!(!gt.traits.cache_bloat);
        assert_eq!(gt.traits.prepro_overhead, 'X');
        for r in rows.iter().filter(|r| r.name != "GraphTensor") {
            let clean = !r.traits.memory_bloat
                && !r.traits.format_translation
                && !r.traits.cache_bloat
                && r.traits.prepro_overhead == 'X';
            assert!(!clean, "{} should not be all-clear", r.name);
        }
    }

    #[test]
    fn nine_rows_like_the_paper() {
        assert_eq!(run().len(), 9);
    }
}
