//! Fig 11b — motivation for DKP: per-layer input-tensor size change when
//! the combination runs before the aggregation.
//!
//! The metric is the total data volume the (aggregation, combination) pair
//! processes: aggregation-first touches `E·F + n_dst·F` elements; running
//! the combination first touches `n_src·F + E·H`. The paper finds
//! wiki-talk's layers shrink by 31.7% on average while other layers can
//! prefer the conventional order.

use crate::runner::{pct, print_table, ExpConfig};
use gt_core::orchestrator::Dims;
use gt_core::prepro::run_prepro;
use gt_models::PAPER_HIDDEN;

/// One layer's reduction measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// GNN layer index (execution order).
    pub layer: usize,
    /// The layer's dimensionality.
    pub dims: Dims,
    /// Relative input-volume change of combination-first (positive =
    /// smaller).
    pub reduction: f64,
}

/// Input elements processed by the pair under each order.
fn volumes(d: &Dims) -> (f64, f64) {
    let agg_first = (d.n_edges * d.n_feat + d.n_dst * d.n_feat) as f64;
    let comb_first = (d.n_src * d.n_feat + d.n_edges * d.n_hid) as f64;
    (agg_first, comb_first)
}

/// Measure per-layer reductions for every workload.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in gt_datasets::registry() {
        let data = cfg.build(&spec);
        let batch = cfg.batch_ids(&data);
        let pr = run_prepro(&data, &batch, &cfg.sampler());
        let mut n_feat = spec.feature_dim;
        for (l, layer) in pr.layers.iter().enumerate() {
            let n_hid = if l + 1 == pr.layers.len() {
                spec.out_dim
            } else {
                PAPER_HIDDEN
            };
            let dims = Dims {
                n_src: layer.num_src,
                n_dst: layer.num_dst,
                n_edges: layer.csr.num_edges(),
                n_feat,
                n_hid,
            };
            let (af, cf) = volumes(&dims);
            rows.push(Row {
                dataset: spec.name.to_string(),
                layer: l + 1,
                dims,
                reduction: 1.0 - cf / af,
            });
            n_feat = n_hid;
        }
    }
    rows
}

/// Print the per-layer reductions.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("L{}", r.layer),
                format!("{}→{}", r.dims.n_feat, r.dims.n_hid),
                pct(r.reduction),
            ]
        })
        .collect();
    print_table(
        "Fig 11b: input-volume reduction of combination-first (paper: wiki-talk ≈31.7% avg; others mixed)",
        &["dataset", "layer", "width", "reduction"],
        &table,
    );
    let wiki: Vec<f64> = rows
        .iter()
        .filter(|r| r.dataset == "wiki-talk")
        .map(|r| r.reduction)
        .collect();
    let avg = wiki.iter().sum::<f64>() / wiki.len().max(1) as f64;
    println!("wiki-talk average: {} (paper ≈31.7%)", pct(avg));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_first_layers_reduce_light_last_layers_grow() {
        let cfg = ExpConfig::test();
        let rows = run(&cfg);
        // Heavy features (4353 → 64) shrink hugely at layer 1. The exact
        // ratio depends on the sampled subgraph's E/n_src ratio, which
        // wobbles with the sampler stream — assert a margin well clear of
        // that noise rather than a knife-edge 0.5.
        let wiki1 = rows
            .iter()
            .find(|r| r.dataset == "wiki-talk" && r.layer == 1)
            .unwrap();
        assert!(wiki1.reduction > 0.4, "got {}", wiki1.reduction);
        // products layer 2 (64 → 47) barely reduces width but multiplies
        // rows — combination-first should NOT reduce the volume much.
        let prod2 = rows
            .iter()
            .find(|r| r.dataset == "products" && r.layer == 2)
            .unwrap();
        assert!(prod2.reduction < wiki1.reduction);
    }

    #[test]
    fn every_layer_measured() {
        let cfg = ExpConfig::test();
        let rows = run(&cfg);
        assert_eq!(rows.len(), 10 * cfg.layers);
    }
}
