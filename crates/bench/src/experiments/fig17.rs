//! Fig 17 — NAPA's impact: memory footprint (a) and cache loads (b) of
//! Base-GT relative to the competing approaches.
//!
//! Paper: NAPA cuts the FWP/BWP memory footprint by 81.8% on average (no
//! sparse→dense copies) and the data loaded into caches by 44.8%
//! (feature-wise scheduling).

use crate::runner::{pct, print_table, ExpConfig};
use gt_baselines::BaselineKind;
use gt_core::config::ModelConfig;
use gt_core::framework::Framework;
use gt_core::trainer::GtVariant;

/// One dataset's NAPA-impact measurements.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Peak device memory: DL-approach (PyG) run, bytes.
    pub dl_peak: u64,
    /// Peak device memory: Base-GT run, bytes.
    pub napa_peak: u64,
    /// Cache bytes loaded: edge-wise (DGL) run.
    pub edgewise_cache: u64,
    /// Cache bytes loaded: Base-GT run.
    pub napa_cache: u64,
}

impl Row {
    /// Footprint reduction (paper: 81.8% avg). Only the kernel working set
    /// beyond the input tensors counts — inputs are identical either way.
    pub fn footprint_reduction(&self, input_bytes: u64) -> f64 {
        let dl = self.dl_peak.saturating_sub(input_bytes) as f64;
        let napa = self.napa_peak.saturating_sub(input_bytes) as f64;
        if dl <= 0.0 {
            return 0.0;
        }
        1.0 - napa / dl
    }

    /// Cache-load reduction (paper: 44.8% avg).
    pub fn cache_reduction(&self) -> f64 {
        1.0 - self.napa_cache as f64 / self.edgewise_cache.max(1) as f64
    }
}

/// Input tensor bytes for a dataset batch (features + structures).
fn input_bytes(r: &gt_core::framework::BatchReport, feat_dim: usize) -> u64 {
    (r.num_nodes * feat_dim * 4) as u64
}

/// Measure Fig 17 on the light-feature workloads (as the paper does).
pub fn run(cfg: &ExpConfig) -> Vec<(Row, f64, f64)> {
    let mut out = Vec::new();
    for spec in gt_datasets::light() {
        let data = cfg.build(&spec);
        let batch = cfg.batch_ids(&data);
        // NGCF exercises both aggregation and weighting paths.
        let model = ModelConfig::ngcf(cfg.layers, 64, spec.out_dim);

        let mut pyg = cfg.baseline(BaselineKind::Pyg, model.clone());
        let rp = pyg.train_batch(&data, &batch);
        let mut dgl = cfg.baseline(BaselineKind::Dgl, model.clone());
        let rd = dgl.train_batch(&data, &batch);
        let mut gt = cfg.graphtensor(GtVariant::Base, model);
        let rg = gt.train_batch(&data, &batch);

        let row = Row {
            dataset: spec.name.to_string(),
            dl_peak: rp.sim.memory.peak(),
            napa_peak: rg.sim.memory.peak(),
            edgewise_cache: rd.sim.total_stats().cache_loaded_bytes,
            napa_cache: rg.sim.total_stats().cache_loaded_bytes,
        };
        let ib = input_bytes(&rg, spec.feature_dim);
        let fr = row.footprint_reduction(ib);
        let cr = row.cache_reduction();
        out.push((row, fr, cr));
    }
    out
}

/// Print the reductions.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(r, fr, cr)| vec![r.dataset.clone(), pct(*fr), pct(*cr)])
        .collect();
    print_table(
        "Fig 17: NAPA impact on light graphs (paper: footprint −81.8%, cache −44.8%)",
        &["dataset", "17a footprint reduction", "17b cache reduction"],
        &table,
    );
    let f = rows.iter().map(|(_, fr, _)| fr).sum::<f64>() / rows.len() as f64;
    let c = rows.iter().map(|(_, _, cr)| cr).sum::<f64>() / rows.len() as f64;
    println!(
        "average: footprint −{} (paper −81.8%), cache −{} (paper −44.8%)",
        pct(f),
        pct(c)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn napa_reduces_both_metrics() {
        let cfg = ExpConfig::test();
        for (row, fr, cr) in run(&cfg) {
            assert!(fr > 0.5, "{}: footprint reduction only {fr}", row.dataset);
            assert!(cr > 0.0, "{}: no cache reduction ({cr})", row.dataset);
            assert!(row.napa_peak <= row.dl_peak);
            assert!(row.napa_cache <= row.edgewise_cache);
        }
    }
}
