//! Scalability: why preprocessing matters at all (§II-B, §VI-A, Table III).
//!
//! "It is also crucial for scalability, as frameworks without preprocessing
//! must store the entire graph in GPU memory." This experiment computes,
//! at the *paper's* full dataset sizes, the device memory a full-graph
//! (no-sampling) trainer needs versus the per-batch working set of the
//! sampling path, against the RTX 3090's 24 GB.

use crate::runner::{print_table, ExpConfig};
use gt_sim::DeviceSpec;

/// One dataset's scalability verdict at paper scale.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Device bytes a full-graph trainer needs (paper-scale).
    pub full_graph_bytes: u64,
    /// Fits the RTX 3090?
    pub fits: bool,
    /// Sampled per-batch working set (batch 300, fanout 15, 2 hops — an
    /// upper bound of 300·16² nodes times the feature row).
    pub sampled_bytes: u64,
}

/// Compute the verdicts analytically from the paper's Table II sizes.
pub fn run(_cfg: &ExpConfig) -> Vec<Row> {
    let dev = DeviceSpec::rtx3090();
    let hidden = 64u64;
    gt_datasets::registry()
        .into_iter()
        .map(|spec| {
            let v = spec.vertices as u64;
            let e = spec.edges as u64;
            let f = spec.feature_dim as u64;
            let full = v * f * 4 + 2 * (e * 4 + (v + 1) * 4) + 2 * v * hidden * 4;
            // Sampling bound: 300 seeds × (fanout+1)² nodes.
            let sampled_nodes = 300u64 * 16 * 16;
            let sampled = sampled_nodes.min(v) * f * 4;
            Row {
                dataset: spec.name.to_string(),
                full_graph_bytes: full,
                fits: full <= dev.device_mem_bytes,
                sampled_bytes: sampled,
            }
        })
        .collect()
}

/// Print the verdicts.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{:.1}GB", r.full_graph_bytes as f64 / 1e9),
                if r.fits { "fits" } else { "OOM" }.to_string(),
                format!("{:.0}MB", r.sampled_bytes as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        "Scalability at paper scale vs RTX 3090 (24GB): full-graph vs sampled working set",
        &["dataset", "full-graph need", "verdict", "sampled batch"],
        &table,
    );
    let oom = rows.iter().filter(|r| !r.fits).count();
    println!(
        "{oom}/{} full datasets exceed device memory without sampling; every sampled batch fits.",
        rows.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_graphs_need_sampling() {
        let rows = run(&ExpConfig::test());
        // papers (111M vertices) and the 4353-dim SNAP graphs cannot train
        // full-graph on 24 GB.
        for name in ["papers", "wiki-talk", "livejournal", "roadnet-ca"] {
            let r = rows.iter().find(|r| r.dataset == name).unwrap();
            assert!(!r.fits, "{name} unexpectedly fits");
        }
        // Every sampled batch fits comfortably.
        for r in &rows {
            assert!(r.sampled_bytes < 24 * (1 << 30), "{}", r.dataset);
            assert!(r.sampled_bytes < r.full_graph_bytes);
        }
    }

    #[test]
    fn some_small_graph_fits() {
        let rows = run(&ExpConfig::test());
        assert!(
            rows.iter().any(|r| r.fits),
            "at least reddit2-sized graphs should fit full-graph"
        );
    }
}
