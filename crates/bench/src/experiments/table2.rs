//! Table II — workload characteristics: full-graph shape, sampled-graph
//! shape, lookup output size, and task output dimension, regenerated at
//! the configured scale with the paper's numbers printed for reference.

use crate::runner::{print_table, ExpConfig};
use gt_core::prepro::run_prepro;

/// One workload's measured characteristics.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Generated full-graph vertices.
    pub vertices: usize,
    /// Generated full-graph edges.
    pub edges: usize,
    /// Feature dimension (paper-exact).
    pub feature_dim: usize,
    /// Sampled unique vertices per batch.
    pub sampled_vertices: usize,
    /// Sampled edges per batch (all hops).
    pub sampled_edges: usize,
    /// Destination vertices across hops.
    pub dst_vertices: usize,
    /// Lookup output size in bytes.
    pub output_bytes: u64,
    /// Task output dimension (paper-exact).
    pub out_dim: usize,
}

impl Row {
    /// Sampled edges per vertex (paper: 1.3–4.9).
    pub fn edges_per_vertex(&self) -> f64 {
        self.sampled_edges as f64 / self.sampled_vertices.max(1) as f64
    }
}

/// Measure all ten workloads.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in gt_datasets::registry() {
        let data = cfg.build(&spec);
        let batch = cfg.batch_ids(&data);
        let pr = run_prepro(&data, &batch, &cfg.sampler());
        let sampled_edges: usize = pr.layers.iter().map(|l| l.csr.num_edges()).sum();
        // Dst vertices = id space of the second-to-last boundary (every
        // node that is a destination in some hop).
        let dst_vertices = pr.boundaries[pr.boundaries.len() - 2];
        rows.push(Row {
            dataset: spec.name.to_string(),
            vertices: data.num_vertices(),
            edges: data.graph.num_edges(),
            feature_dim: spec.feature_dim,
            sampled_vertices: pr.new_to_orig.len(),
            sampled_edges,
            dst_vertices,
            output_bytes: pr.work.total_feature_bytes,
            out_dim: spec.out_dim,
        });
    }
    rows
}

/// Print the table.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{}", r.vertices),
                format!("{}", r.edges),
                format!("{}", r.feature_dim),
                format!("{}", r.sampled_vertices),
                format!("{}", r.sampled_edges),
                format!("{}", r.dst_vertices),
                format!("{:.1}", r.edges_per_vertex()),
                format!("{:.1}MB", r.output_bytes as f64 / 1e6),
                format!("{}", r.out_dim),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Table II at scale ÷{} (paper sampled edges/vertex: 1.3-4.9; feature/out dims exact)",
            match cfg.scale {
                gt_datasets::Scale::Test => 2000,
                gt_datasets::Scale::Small => 200,
                gt_datasets::Scale::Medium => 20,
                gt_datasets::Scale::Custom(d) => d,
            }
        ),
        &[
            "dataset", "vertices", "edges", "feat", "s.vert", "s.edges", "s.dst", "e/v",
            "out size", "out dim",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_graphs_have_low_even_degree() {
        let cfg = ExpConfig::test();
        for r in run(&cfg) {
            let epv = r.edges_per_vertex();
            let bound = (cfg.layers * (cfg.fanout + 1)) as f64;
            assert!(
                epv >= 1.0 && epv <= bound,
                "{}: edges/vertex {epv} out of range (bound {bound})",
                r.dataset
            );
            assert!(r.dst_vertices <= r.sampled_vertices);
            assert_eq!(
                r.output_bytes,
                (r.sampled_vertices * r.feature_dim * 4) as u64
            );
        }
    }

    #[test]
    fn dims_are_paper_exact() {
        let cfg = ExpConfig::test();
        let rows = run(&cfg);
        let wiki = rows.iter().find(|r| r.dataset == "wiki-talk").unwrap();
        assert_eq!(wiki.feature_dim, 4353);
        assert_eq!(wiki.out_dim, 2);
        let products = rows.iter().find(|r| r.dataset == "products").unwrap();
        assert_eq!(products.feature_dim, 100);
        assert_eq!(products.out_dim, 47);
    }
}
