//! Distributed cluster campaign — worker-kill bit-identity over a seed
//! corpus plus modeled cluster metrics for the perf gate
//! (docs/distributed.md).
//!
//! Every campaign run serves the same workload twice through the
//! [`ClusterSupervisor`]: once fault-free and once with a seeded
//! `WorkerKill` at a derived (worker, batch). The oracle demands the
//! killed run detect the death, re-replay its partition from the
//! journal, and finish with byte-identical parameters and journaled
//! outcome stream — the distributed restatement of the single-node
//! durability contract. On a violation the process exits 4, same as the
//! chaos campaign.
//!
//! With `--bench-out` the experiment distills the fault-free run (plus
//! one canonical kill) into a schema-stable `BENCH_cluster.json`:
//! per-worker busy/idle/link time, collective time, modeled recovery
//! time, hedge launch/win counters, and the [`FleetReport`]'s skew
//! figures (busy imbalance, worst stage imbalance, straggler
//! attribution). All metrics are DES virtual time, bit-identical at
//! every `GT_THREADS` width and worker count sweep, so CI gates them
//! with `benchdiff` against a committed baseline.
//!
//! Every run also records the cross-worker Perfetto trace
//! (`--trace-out`) and the rendered fleet health text (`--fleet-out`,
//! also mounted at `/fleetz` with `--serve-metrics`); both are pure
//! virtual-time artifacts CI `cmp`s across thread widths.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::benchjson::{BenchConfig, BenchReport, EnvFingerprint, SCHEMA_VERSION};
use crate::runner::{print_table, ExpConfig};
use gt_core::config::ModelConfig;
use gt_core::error::GtError;
use gt_core::journal;
use gt_core::serve::{DurabilityConfig, Supervisor};
use gt_core::tracing::TracerConfig;
use gt_core::trainer::GtVariant;
use gt_core::{ClusterConfig, ClusterSummary, ClusterSupervisor, Partition};
use gt_profile::{fleet, FleetObserver, FleetReport, FleetTotals};
use gt_sim::{ClusterSpec, FaultPlan, SystemSpec};
use gt_telemetry::http::MetricsServer;

/// Campaign knobs (separate from the `Copy` [`ExpConfig`]).
#[derive(Debug, Clone)]
pub struct ClusterOpts {
    /// Workers in the simulated cluster.
    pub workers: usize,
    /// How work is split across workers.
    pub partition: Partition,
    /// Batches in the serving stream.
    pub batches: usize,
    /// Directed kill: which worker dies (with `kill_at`); overrides the
    /// seeded campaign.
    pub kill_worker: Option<usize>,
    /// Directed kill: the batch at which the worker dies.
    pub kill_at: Option<usize>,
    /// Launch speculative backups for straggling workers.
    pub hedging: bool,
    /// Read campaign seeds (one integer per line, `#` comments) from this
    /// file instead of deriving them from `--seed`.
    pub seeds_file: Option<PathBuf>,
    /// Seeds sampled when no seeds file is given; seed `i` is
    /// `cfg.seed + i`.
    pub seeds: usize,
    /// Persist the canonical killed run's durable state (journal +
    /// recovered checkpoint) here so CI can `cmp` checkpoints across
    /// worker counts and `GT_THREADS` widths.
    pub dir: Option<PathBuf>,
    /// Arm the request tracer on every run: cross-worker trace spans
    /// accumulate and cluster events (recoveries, hedge wins) freeze
    /// flight dumps. Purely observational — on by default, and the
    /// oracle holds with it on or off.
    pub tracing: bool,
    /// Write the fault-free reference's rendered fleet health report
    /// (the `/fleetz` page) here.
    pub fleet_out: Option<PathBuf>,
    /// Write the fault-free reference's cross-worker Perfetto trace
    /// (coordinator + one process per worker, flow-linked) here.
    pub trace_out: Option<PathBuf>,
    /// Serve `/metrics`, `/healthz`, and the fleet report at `/fleetz`
    /// on this port after the campaign, self-scrape both pages, and
    /// shut down (port 0 binds an ephemeral port).
    pub serve_metrics: Option<u16>,
}

impl Default for ClusterOpts {
    fn default() -> Self {
        ClusterOpts {
            workers: 4,
            partition: Partition::VertexCut,
            batches: 6,
            kill_worker: None,
            kill_at: None,
            hedging: true,
            seeds_file: None,
            seeds: 8,
            dir: None,
            tracing: true,
            fleet_out: None,
            trace_out: None,
            serve_metrics: None,
        }
    }
}

/// One cluster run: modeled summary plus the bit-comparable artifacts.
#[derive(Debug)]
pub struct Run {
    /// Modeled virtual-time summary.
    pub summary: ClusterSummary,
    /// Serialized final model parameters.
    pub params: Vec<u8>,
    /// Journaled `(batch_index, outcome JSON)` stream.
    pub stream: Vec<(usize, String)>,
    /// Distilled fleet health (per-worker utilization, stage imbalance,
    /// straggler attribution).
    pub fleet: FleetReport,
    /// Serialized cross-worker Perfetto trace (virtual time only).
    pub trace_json: String,
    /// Flight-dump reasons frozen during the run (`cluster-recovery:*`,
    /// `hedge-won:*`); empty when tracing is off. Dumps frozen before a
    /// rebuild-and-replay recovery die with the old supervisor, exactly
    /// as a real process death loses its in-memory ring.
    pub dump_reasons: Vec<String>,
}

/// One campaign's totals.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Killed runs executed (stops at the first violation).
    pub runs: usize,
    /// Runs bit-identical to the fault-free reference.
    pub clean: usize,
    /// `(seed, detail)` of the violating run, if any.
    pub violation: Option<(u64, String)>,
    /// The fault-free reference run's modeled summary.
    pub reference: ClusterSummary,
    /// The reference run's rendered fleet health report (the `/fleetz`
    /// page body).
    pub fleet_text: String,
    /// The reference run's cross-worker Perfetto trace JSON.
    pub trace_json: String,
}

fn fresh_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicUsize = AtomicUsize::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gt_cluster_{}_{n}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Removes a throwaway durable-state directory on every exit path.
struct DirCleanup(PathBuf);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The base fault plan every run shares: a persistent straggler on the
/// last worker's first core, so the hedging path is exercised and the
/// report's hedge counters are live numbers. The core index is outside
/// the inner trainer's own simulator for any multi-worker cluster, so
/// the straggler prices cluster stages without touching the numerics.
fn base_plan(cfg: &ExpConfig, opts: &ClusterOpts, spec: &ClusterSpec) -> FaultPlan {
    let plan = FaultPlan::new(cfg.seed);
    if opts.workers < 2 {
        return plan; // a 1-worker cluster can neither hedge nor adopt
    }
    let cores = spec.workers[0].host.cores;
    plan.with_straggler((opts.workers - 1) * cores, 64.0)
}

/// Drive one cluster over the workload into `dir`; checkpoint at the end.
fn run_once(
    cfg: &ExpConfig,
    opts: &ClusterOpts,
    plan: FaultPlan,
    dir: &Path,
) -> Result<Run, GtError> {
    let spec = gt_datasets::by_name("reddit2").expect("known dataset");
    let data = cfg.build(&spec);
    let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);
    let exp = *cfg;
    let factory = move || {
        Supervisor::new(
            exp.graphtensor(GtVariant::Dynamic, model.clone()),
            plan.clone(),
        )
    };
    let mut cluster_cfg =
        ClusterConfig::new(ClusterSpec::paper_testbed(opts.workers), opts.partition);
    cluster_cfg.hedging = opts.hedging;
    let mut cs = ClusterSupervisor::new(factory, cluster_cfg);
    cs.make_durable(DurabilityConfig::new(dir))?;
    if opts.tracing {
        cs.enable_tracing(TracerConfig::default());
    }

    let n = cfg.batch.min(data.num_vertices());
    let (nv, seed) = (data.num_vertices(), cfg.seed);
    let stream: Vec<_> = (0u64..)
        .flat_map(|epoch| gt_sample::BatchIter::new(nv, n, seed.wrapping_add(epoch)))
        .take(opts.batches)
        .collect();

    // Drive by the serving index, not call count: a crash recovered
    // after journal commit folds its batch in during replay.
    let mut observer = FleetObserver::new();
    let mut spins = 0usize;
    while cs.supervisor.batches_served() < opts.batches {
        spins += 1;
        if spins > 8 * opts.batches {
            return Err(GtError::Io {
                detail: format!(
                    "cluster made no progress after {spins} serve calls \
                     ({} of {} batches)",
                    cs.supervisor.batches_served(),
                    opts.batches
                ),
            });
        }
        let i = cs.supervisor.batches_served();
        let report = cs.serve_batch(&data, &stream[i])?;
        // Fold the batch into the fleet observer only when this call
        // priced it: a trained batch leaves its per-worker schedules in
        // `last_schedules`; replay-folded or untrained batches don't.
        let priced =
            cs.supervisor.batches_served() == i + 1 && report.is_some_and(|r| r.outcome.trained());
        if priced {
            observer.observe_batch(i, cs.last_schedules());
        }
    }
    cs.supervisor.checkpoint_now()?;

    let summary = cs.summary();
    let totals = FleetTotals {
        clock_us: summary.clock_us,
        collective_us: summary.collective_us,
        recovery_virtual_us: summary.recovery_virtual_us,
        hedges_launched: summary.hedges_launched,
        hedges_won: summary.hedges_won,
        false_suspicions: summary.false_suspicions,
        recoveries: summary.recoveries,
        worker_busy_us: summary.worker_busy_us.clone(),
        worker_idle_us: summary.worker_idle_us.clone(),
        worker_link_us: summary.worker_link_us.clone(),
    };
    let fleet = FleetReport::build(&observer, &totals);
    let trace_json = gt_telemetry::write_chrome_json(&cs.cluster_traces());
    let dump_reasons = cs
        .supervisor
        .tracer
        .as_ref()
        .map(|t| t.dumps().iter().map(|d| d.reason.clone()).collect())
        .unwrap_or_default();

    let durability = DurabilityConfig::new(dir);
    let scan = journal::read_journal(durability.journal_path())?;
    let stream = scan
        .records
        .iter()
        .filter(|r| journal::record_type(r) == Some("batch"))
        .map(|r| {
            (
                journal::record_batch_index(r).unwrap_or(usize::MAX),
                r.get("outcome")
                    .map(|o| o.to_json_string())
                    .unwrap_or_default(),
            )
        })
        .collect();
    Ok(Run {
        summary,
        params: std::fs::read(durability.checkpoint_path())?,
        stream,
        fleet,
        trace_json,
        dump_reasons,
    })
}

/// The fault-free reference run in a throwaway directory.
fn reference_run(cfg: &ExpConfig, opts: &ClusterOpts) -> Result<Run, GtError> {
    let spec = ClusterSpec::paper_testbed(opts.workers);
    let dir = fresh_dir("ref");
    let _cleanup = DirCleanup(dir.clone());
    run_once(cfg, opts, base_plan(cfg, opts, &spec), &dir)
}

/// A killed run in `dir` (or a throwaway) compared against `reference`;
/// `Ok(Ok(summary))` is clean, `Ok(Err(detail))` an oracle violation.
#[allow(clippy::type_complexity)]
fn killed_run(
    cfg: &ExpConfig,
    opts: &ClusterOpts,
    reference: &Run,
    worker: usize,
    kill_at: usize,
    dir: Option<&Path>,
) -> Result<Result<ClusterSummary, String>, GtError> {
    let spec = ClusterSpec::paper_testbed(opts.workers);
    let plan = base_plan(cfg, opts, &spec).with_worker_kill(kill_at, worker);
    let (dir, _cleanup) = match dir {
        Some(d) => {
            let _ = std::fs::remove_dir_all(d);
            (d.to_path_buf(), None)
        }
        None => {
            let d = fresh_dir("kill");
            (d.clone(), Some(DirCleanup(d)))
        }
    };
    let run = run_once(cfg, opts, plan, &dir)?;
    if run.params != reference.params {
        return Ok(Err(format!(
            "kill worker {worker} at batch {kill_at}: recovered checkpoint diverged \
             from the fault-free reference ({} vs {} bytes)",
            run.params.len(),
            reference.params.len()
        )));
    }
    if run.stream != reference.stream {
        return Ok(Err(format!(
            "kill worker {worker} at batch {kill_at}: journaled outcome stream \
             diverged ({} vs {} records)",
            run.stream.len(),
            reference.stream.len()
        )));
    }
    if run.summary.recoveries == 0 {
        return Ok(Err(format!(
            "kill worker {worker} at batch {kill_at}: the kill was never detected \
             (0 recoveries)"
        )));
    }
    Ok(Ok(run.summary))
}

/// Derive a (worker, kill batch) from a campaign seed.
fn kill_site(seed: u64, opts: &ClusterOpts) -> (usize, usize) {
    // splitmix64 finalizer: decorrelates consecutive corpus seeds.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let worker = (z % opts.workers as u64) as usize;
    let kill_at = ((z >> 16) % opts.batches as u64) as usize;
    (worker, kill_at)
}

/// Run the campaign: one fault-free reference, then a killed run per
/// seed, each demanded bit-identical. Stops at the first violation.
pub fn run_campaign(cfg: &ExpConfig, opts: &ClusterOpts) -> Result<CampaignSummary, GtError> {
    let reference = reference_run(cfg, opts)?;
    let mut summary = CampaignSummary {
        runs: 0,
        clean: 0,
        violation: None,
        reference: reference.summary.clone(),
        fleet_text: fleet::render(&reference.fleet),
        trace_json: reference.trace_json.clone(),
    };
    if let (Some(worker), Some(kill_at)) = (opts.kill_worker, opts.kill_at) {
        // Directed single kill (`--kill-worker W --kill-at N`).
        summary.runs = 1;
        match killed_run(cfg, opts, &reference, worker, kill_at, opts.dir.as_deref())? {
            Ok(_) => summary.clean = 1,
            Err(detail) => summary.violation = Some((cfg.seed, detail)),
        }
        return Ok(summary);
    }
    let seeds: Vec<u64> = match &opts.seeds_file {
        Some(path) => super::chaos::read_seeds(path)?,
        None => (0..opts.seeds as u64)
            .map(|i| cfg.seed.wrapping_add(i))
            .collect(),
    };
    for (i, &seed) in seeds.iter().enumerate() {
        let (worker, kill_at) = kill_site(seed, opts);
        // The last seed's durable state lands in `--checkpoint-dir` so CI
        // can compare recovered checkpoints across sweeps.
        let dir = if i + 1 == seeds.len() {
            opts.dir.as_deref()
        } else {
            None
        };
        summary.runs += 1;
        match killed_run(cfg, opts, &reference, worker, kill_at, dir)? {
            Ok(_) => summary.clean += 1,
            Err(detail) => {
                summary.violation = Some((seed, detail));
                return Ok(summary);
            }
        }
    }
    Ok(summary)
}

/// Distill the cluster into a schema-stable [`BenchReport`] for
/// `repro cluster --bench-out` / the `cluster-smoke` CI gate: the
/// fault-free run's modeled metrics plus one canonical kill's recovery
/// cost. Everything is virtual time — bit-identical at any
/// `GT_THREADS`.
pub fn report(cfg: &ExpConfig, opts: &ClusterOpts) -> BenchReport {
    let wall = Instant::now();
    let reference =
        reference_run(cfg, opts).unwrap_or_else(|e| panic!("cluster experiment failed: {e}"));
    let s = &reference.summary;
    let (worker, kill_at) = (opts.workers - 1, opts.batches / 2);
    let killed = killed_run(cfg, opts, &reference, worker, kill_at, None)
        .unwrap_or_else(|e| panic!("cluster kill run failed: {e}"))
        .unwrap_or_else(|detail| panic!("cluster kill run violated the oracle: {detail}"));
    let wall_us = wall.elapsed().as_secs_f64() * 1e6;

    let mut metrics: Vec<(String, f64)> = vec![
        ("cluster_clock_us".into(), s.clock_us),
        ("collective_us".into(), s.collective_us),
        ("hedges_launched_total".into(), s.hedges_launched as f64),
        ("hedges_won_total".into(), s.hedges_won as f64),
        (
            "hedge_win_rate".into(),
            if s.hedges_launched == 0 {
                0.0
            } else {
                s.hedges_won as f64 / s.hedges_launched as f64
            },
        ),
        ("false_suspicions_total".into(), s.false_suspicions as f64),
        ("recovery_virtual_us".into(), killed.recovery_virtual_us),
        ("recoveries_total".into(), killed.recoveries as f64),
        (
            "fleet_busy_imbalance".into(),
            reference.fleet.busy_imbalance,
        ),
        (
            "fleet_worst_stage_imbalance".into(),
            reference.fleet.worst_imbalance.map_or(0.0, |(_, r)| r),
        ),
        (
            "fleet_straggler_batches".into(),
            reference.fleet.attribution.first().map_or(0, |a| a.2) as f64,
        ),
    ];
    for w in 0..s.workers {
        metrics.push((format!("worker{w}_busy_us"), s.worker_busy_us[w]));
        metrics.push((format!("worker{w}_idle_us"), s.worker_idle_us[w]));
        metrics.push((format!("worker{w}_link_us"), s.worker_link_us[w]));
    }

    let sys = SystemSpec::paper_testbed();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "cluster".to_string(),
        config: BenchConfig {
            scale_divisor: cfg.scale.divisor() as u64,
            seed: cfg.seed,
            batch: cfg.batch as u64,
            fanout: cfg.fanout as u64,
            layers: cfg.layers as u64,
            measure_batches: opts.batches as u64,
        },
        env: EnvFingerprint {
            threads: gt_par::ThreadPool::global().workers() as u64,
            gpu: sys.gpu.name.to_string(),
            host: sys.host.name.to_string(),
            host_cores: sys.host.cores as u64,
        },
        metrics,
        wall: vec![("wall_campaign_us".into(), wall_us)],
    }
}

/// Print the campaign; exits 4 when the bit-identity oracle is violated
/// (same convention as the chaos campaign).
pub fn print(cfg: &ExpConfig, opts: &ClusterOpts) {
    let summary =
        run_campaign(cfg, opts).unwrap_or_else(|e| panic!("cluster campaign failed: {e}"));
    let s = &summary.reference;
    print_table(
        &format!(
            "cluster: {} workers ({}), {} kills × {} batches (oracle: bit-identical recovery)",
            opts.workers,
            opts.partition.label(),
            summary.runs,
            opts.batches
        ),
        &["verdict", "runs"],
        &[
            vec!["clean".to_string(), summary.clean.to_string()],
            vec![
                "violation".to_string(),
                usize::from(summary.violation.is_some()).to_string(),
            ],
        ],
    );
    let rows: Vec<Vec<String>> = (0..s.workers)
        .map(|w| {
            vec![
                format!("worker{w}"),
                format!("{:.1}", s.worker_busy_us[w]),
                format!("{:.1}", s.worker_idle_us[w]),
            ]
        })
        .collect();
    print_table(
        &format!(
            "fault-free modeled time: clock {:.1}µs, collectives {:.1}µs, \
             hedges {}/{} won",
            s.clock_us, s.collective_us, s.hedges_won, s.hedges_launched
        ),
        &["worker", "busy µs", "idle µs"],
        &rows,
    );
    if let Some(dir) = &opts.dir {
        println!(
            "  recovered durable state (journal + checkpoint): {}",
            dir.display()
        );
    }
    println!("fleet health (reference run):");
    for line in summary.fleet_text.lines() {
        println!("  {line}");
    }
    if let Some(path) = &opts.fleet_out {
        match std::fs::write(path, &summary.fleet_text) {
            Ok(()) => println!("  wrote fleet report to {}", path.display()),
            Err(e) => {
                eprintln!("failed to write fleet report to {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        match std::fs::write(path, &summary.trace_json) {
            Ok(()) => println!(
                "  wrote cross-worker trace to {} (open at https://ui.perfetto.dev)",
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write cluster trace to {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if let Some(port) = opts.serve_metrics {
        serve_and_scrape(port, &summary.fleet_text);
    }
    if let Some((seed, detail)) = &summary.violation {
        println!("  seed {seed} VIOLATED the oracle: {detail}");
        std::process::exit(4);
    }
}

/// Mount the fleet report at `/fleetz` next to `/metrics`, self-scrape
/// both pages, and shut down — the CI fleet-smoke job's proof that the
/// labeled exposition and the fleet page actually render over HTTP.
fn serve_and_scrape(port: u16, fleet_text: &str) {
    let server = MetricsServer::start(port, gt_telemetry::global())
        .unwrap_or_else(|e| panic!("failed to bind metrics server on port {port}: {e}"));
    server.set_page("/fleetz", fleet_text);
    let addr = server.addr();
    for path in ["/metrics", "/fleetz"] {
        let body = scrape(server.port(), path);
        println!(
            "  self-scrape {path}: 200 OK ({} bytes) at {addr}",
            body.len()
        );
    }
    let metrics = scrape(server.port(), "/metrics");
    assert!(
        metrics.contains("gt_build_info{"),
        "labeled series must render in the exposition:\n{metrics}"
    );
    println!("  labeled series render in /metrics (gt_build_info)");
    let fleetz = scrape(server.port(), "/fleetz");
    assert_eq!(fleetz, fleet_text, "/fleetz must serve the fleet report");
    println!("  /fleetz serves the fleet report byte-for-byte");
    server.shutdown();
}

/// Minimal HTTP GET against the local metrics server; panics unless the
/// response is a 200 and returns the body.
fn scrape(port: u16, path: &str) -> String {
    let mut conn = TcpStream::connect(("127.0.0.1", port))
        .unwrap_or_else(|e| panic!("connect 127.0.0.1:{port}: {e}"));
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("malformed response for {path}: {response}"));
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "GET {path} must answer 200, got: {head}"
    );
    body.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(workers: usize) -> ClusterOpts {
        ClusterOpts {
            workers,
            batches: 4,
            seeds: 2,
            ..Default::default()
        }
    }

    /// The seeded campaign over a small corpus is clean: every derived
    /// (worker, batch) kill recovers bit-identically.
    #[test]
    fn seeded_kill_campaign_is_clean() {
        let cfg = ExpConfig::test();
        for workers in [1usize, 2] {
            let summary = run_campaign(&cfg, &opts(workers)).unwrap();
            assert_eq!(summary.runs, 2, "{workers} workers");
            assert_eq!(
                summary.violation, None,
                "{workers} workers: campaign must be clean"
            );
            assert_eq!(summary.clean, 2, "{workers} workers");
        }
    }

    /// A directed kill (`--kill-worker`/`--kill-at`) runs exactly one
    /// comparison and is clean.
    #[test]
    fn directed_kill_is_clean() {
        let cfg = ExpConfig::test();
        let mut o = opts(2);
        o.kill_worker = Some(1);
        o.kill_at = Some(2);
        let summary = run_campaign(&cfg, &o).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.violation, None);
    }

    /// Tracing is purely observational: a traced and an untraced
    /// reference produce byte-identical parameters and journal streams,
    /// and a traced kill freezes a `cluster-recovery:<w>` flight dump
    /// while still matching the fault-free reference bit-for-bit.
    #[test]
    fn flight_dumps_do_not_perturb_the_oracle() {
        let cfg = ExpConfig::test();
        // 3 workers so the base straggler plan actually hedges (a
        // 2-worker cluster never can) and the hedge-won dump fires.
        let o = opts(3);
        let traced = reference_run(&cfg, &o).unwrap();
        let mut quiet = o.clone();
        quiet.tracing = false;
        let untraced = reference_run(&cfg, &quiet).unwrap();
        assert_eq!(
            traced.params, untraced.params,
            "tracing perturbed the checkpoint bytes"
        );
        assert_eq!(
            traced.stream, untraced.stream,
            "tracing perturbed the journal stream"
        );
        assert!(untraced.dump_reasons.is_empty());
        // The fault-free reference hedges (base plan straggler), so its
        // dumps are exactly the hedge wins — never a recovery.
        assert!(
            !traced.dump_reasons.is_empty()
                && traced
                    .dump_reasons
                    .iter()
                    .all(|r| r.starts_with("hedge-won:")),
            "unexpected fault-free dumps: {:?}",
            traced.dump_reasons
        );

        let spec = ClusterSpec::paper_testbed(o.workers);
        let plan = base_plan(&cfg, &o, &spec).with_worker_kill(2, 1);
        let dir = fresh_dir("dumps");
        let _cleanup = DirCleanup(dir.clone());
        let killed = run_once(&cfg, &o, plan, &dir).unwrap();
        assert_eq!(
            killed.params, traced.params,
            "dump froze mid-recovery state"
        );
        assert_eq!(killed.stream, traced.stream);
        assert!(
            killed
                .dump_reasons
                .iter()
                .any(|r| r.starts_with("cluster-recovery:")),
            "kill must freeze a recovery dump: {:?}",
            killed.dump_reasons
        );
    }

    /// The reference run's fleet report and cross-worker trace are
    /// deterministic, observe every trained batch, and span one Perfetto
    /// process per worker plus the coordinator, flow-linked.
    #[test]
    fn fleet_report_and_cluster_trace_are_deterministic() {
        let cfg = ExpConfig::test();
        // 3 workers: the smallest fleet whose median makespan the base
        // straggler can exceed — a 2-worker cluster can never hedge.
        let o = opts(3);
        let a = reference_run(&cfg, &o).unwrap();
        let b = reference_run(&cfg, &o).unwrap();
        assert_eq!(fleet::render(&a.fleet), fleet::render(&b.fleet));
        assert_eq!(a.trace_json, b.trace_json);
        assert_eq!(a.fleet.batches, o.batches, "every trained batch observed");
        assert_eq!(a.fleet.workers.len(), o.workers);
        assert!(
            a.fleet.totals.hedges_launched > 0,
            "the base straggler plan must exercise hedging"
        );
        for process in ["\"cluster\"", "\"worker 0\"", "\"worker 1\""] {
            assert!(
                a.trace_json.contains(process),
                "trace missing process {process}"
            );
        }
        assert!(
            a.trace_json.contains("\"ph\":\"s\"") && a.trace_json.contains("\"ph\":\"f\""),
            "trace must contain cross-process flow arrows"
        );
    }

    /// The bench report is deterministic and survives a JSON round-trip
    /// — the property the `cluster-smoke` gate's cross-width diff rests
    /// on.
    #[test]
    fn report_is_deterministic() {
        let cfg = ExpConfig::test();
        let o = opts(2);
        let a = report(&cfg, &o);
        let b = report(&cfg, &o);
        assert_eq!(a.metrics, b.metrics);
        assert!(a
            .metrics
            .iter()
            .any(|(n, v)| n == "recovery_virtual_us" && *v > 0.0));
        let back: BenchReport = a.to_json_string().parse().unwrap();
        assert_eq!(back, a);
    }
}
