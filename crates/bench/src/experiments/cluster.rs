//! Distributed cluster campaign — worker-kill bit-identity over a seed
//! corpus plus modeled cluster metrics for the perf gate
//! (docs/distributed.md).
//!
//! Every campaign run serves the same workload twice through the
//! [`ClusterSupervisor`]: once fault-free and once with a seeded
//! `WorkerKill` at a derived (worker, batch). The oracle demands the
//! killed run detect the death, re-replay its partition from the
//! journal, and finish with byte-identical parameters and journaled
//! outcome stream — the distributed restatement of the single-node
//! durability contract. On a violation the process exits 4, same as the
//! chaos campaign.
//!
//! With `--bench-out` the experiment distills the fault-free run (plus
//! one canonical kill) into a schema-stable `BENCH_cluster.json`:
//! per-worker busy/idle, collective time, modeled recovery time, hedge
//! launch/win counters. All metrics are DES virtual time, bit-identical
//! at every `GT_THREADS` width and worker count sweep, so CI gates them
//! with `benchdiff` against a committed baseline.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::benchjson::{BenchConfig, BenchReport, EnvFingerprint, SCHEMA_VERSION};
use crate::runner::{print_table, ExpConfig};
use gt_core::config::ModelConfig;
use gt_core::error::GtError;
use gt_core::journal;
use gt_core::serve::{DurabilityConfig, Supervisor};
use gt_core::trainer::GtVariant;
use gt_core::{ClusterConfig, ClusterSummary, ClusterSupervisor, Partition};
use gt_sim::{ClusterSpec, FaultPlan, SystemSpec};

/// Campaign knobs (separate from the `Copy` [`ExpConfig`]).
#[derive(Debug, Clone)]
pub struct ClusterOpts {
    /// Workers in the simulated cluster.
    pub workers: usize,
    /// How work is split across workers.
    pub partition: Partition,
    /// Batches in the serving stream.
    pub batches: usize,
    /// Directed kill: which worker dies (with `kill_at`); overrides the
    /// seeded campaign.
    pub kill_worker: Option<usize>,
    /// Directed kill: the batch at which the worker dies.
    pub kill_at: Option<usize>,
    /// Launch speculative backups for straggling workers.
    pub hedging: bool,
    /// Read campaign seeds (one integer per line, `#` comments) from this
    /// file instead of deriving them from `--seed`.
    pub seeds_file: Option<PathBuf>,
    /// Seeds sampled when no seeds file is given; seed `i` is
    /// `cfg.seed + i`.
    pub seeds: usize,
    /// Persist the canonical killed run's durable state (journal +
    /// recovered checkpoint) here so CI can `cmp` checkpoints across
    /// worker counts and `GT_THREADS` widths.
    pub dir: Option<PathBuf>,
}

impl Default for ClusterOpts {
    fn default() -> Self {
        ClusterOpts {
            workers: 4,
            partition: Partition::VertexCut,
            batches: 6,
            kill_worker: None,
            kill_at: None,
            hedging: true,
            seeds_file: None,
            seeds: 8,
            dir: None,
        }
    }
}

/// One cluster run: modeled summary plus the bit-comparable artifacts.
#[derive(Debug)]
pub struct Run {
    /// Modeled virtual-time summary.
    pub summary: ClusterSummary,
    /// Serialized final model parameters.
    pub params: Vec<u8>,
    /// Journaled `(batch_index, outcome JSON)` stream.
    pub stream: Vec<(usize, String)>,
}

/// One campaign's totals.
#[derive(Debug)]
pub struct CampaignSummary {
    /// Killed runs executed (stops at the first violation).
    pub runs: usize,
    /// Runs bit-identical to the fault-free reference.
    pub clean: usize,
    /// `(seed, detail)` of the violating run, if any.
    pub violation: Option<(u64, String)>,
    /// The fault-free reference run's modeled summary.
    pub reference: ClusterSummary,
}

fn fresh_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicUsize = AtomicUsize::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gt_cluster_{}_{n}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Removes a throwaway durable-state directory on every exit path.
struct DirCleanup(PathBuf);

impl Drop for DirCleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The base fault plan every run shares: a persistent straggler on the
/// last worker's first core, so the hedging path is exercised and the
/// report's hedge counters are live numbers. The core index is outside
/// the inner trainer's own simulator for any multi-worker cluster, so
/// the straggler prices cluster stages without touching the numerics.
fn base_plan(cfg: &ExpConfig, opts: &ClusterOpts, spec: &ClusterSpec) -> FaultPlan {
    let plan = FaultPlan::new(cfg.seed);
    if opts.workers < 2 {
        return plan; // a 1-worker cluster can neither hedge nor adopt
    }
    let cores = spec.workers[0].host.cores;
    plan.with_straggler((opts.workers - 1) * cores, 64.0)
}

/// Drive one cluster over the workload into `dir`; checkpoint at the end.
fn run_once(
    cfg: &ExpConfig,
    opts: &ClusterOpts,
    plan: FaultPlan,
    dir: &Path,
) -> Result<Run, GtError> {
    let spec = gt_datasets::by_name("reddit2").expect("known dataset");
    let data = cfg.build(&spec);
    let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);
    let exp = *cfg;
    let factory = move || {
        Supervisor::new(
            exp.graphtensor(GtVariant::Dynamic, model.clone()),
            plan.clone(),
        )
    };
    let mut cluster_cfg =
        ClusterConfig::new(ClusterSpec::paper_testbed(opts.workers), opts.partition);
    cluster_cfg.hedging = opts.hedging;
    let mut cs = ClusterSupervisor::new(factory, cluster_cfg);
    cs.make_durable(DurabilityConfig::new(dir))?;

    let n = cfg.batch.min(data.num_vertices());
    let (nv, seed) = (data.num_vertices(), cfg.seed);
    let stream: Vec<_> = (0u64..)
        .flat_map(|epoch| gt_sample::BatchIter::new(nv, n, seed.wrapping_add(epoch)))
        .take(opts.batches)
        .collect();

    // Drive by the serving index, not call count: a crash recovered
    // after journal commit folds its batch in during replay.
    let mut spins = 0usize;
    while cs.supervisor.batches_served() < opts.batches {
        spins += 1;
        if spins > 8 * opts.batches {
            return Err(GtError::Io {
                detail: format!(
                    "cluster made no progress after {spins} serve calls \
                     ({} of {} batches)",
                    cs.supervisor.batches_served(),
                    opts.batches
                ),
            });
        }
        let i = cs.supervisor.batches_served();
        cs.serve_batch(&data, &stream[i])?;
    }
    cs.supervisor.checkpoint_now()?;

    let durability = DurabilityConfig::new(dir);
    let scan = journal::read_journal(durability.journal_path())?;
    let stream = scan
        .records
        .iter()
        .filter(|r| journal::record_type(r) == Some("batch"))
        .map(|r| {
            (
                journal::record_batch_index(r).unwrap_or(usize::MAX),
                r.get("outcome")
                    .map(|o| o.to_json_string())
                    .unwrap_or_default(),
            )
        })
        .collect();
    Ok(Run {
        summary: cs.summary(),
        params: std::fs::read(durability.checkpoint_path())?,
        stream,
    })
}

/// The fault-free reference run in a throwaway directory.
fn reference_run(cfg: &ExpConfig, opts: &ClusterOpts) -> Result<Run, GtError> {
    let spec = ClusterSpec::paper_testbed(opts.workers);
    let dir = fresh_dir("ref");
    let _cleanup = DirCleanup(dir.clone());
    run_once(cfg, opts, base_plan(cfg, opts, &spec), &dir)
}

/// A killed run in `dir` (or a throwaway) compared against `reference`;
/// `Ok(Ok(summary))` is clean, `Ok(Err(detail))` an oracle violation.
#[allow(clippy::type_complexity)]
fn killed_run(
    cfg: &ExpConfig,
    opts: &ClusterOpts,
    reference: &Run,
    worker: usize,
    kill_at: usize,
    dir: Option<&Path>,
) -> Result<Result<ClusterSummary, String>, GtError> {
    let spec = ClusterSpec::paper_testbed(opts.workers);
    let plan = base_plan(cfg, opts, &spec).with_worker_kill(kill_at, worker);
    let (dir, _cleanup) = match dir {
        Some(d) => {
            let _ = std::fs::remove_dir_all(d);
            (d.to_path_buf(), None)
        }
        None => {
            let d = fresh_dir("kill");
            (d.clone(), Some(DirCleanup(d)))
        }
    };
    let run = run_once(cfg, opts, plan, &dir)?;
    if run.params != reference.params {
        return Ok(Err(format!(
            "kill worker {worker} at batch {kill_at}: recovered checkpoint diverged \
             from the fault-free reference ({} vs {} bytes)",
            run.params.len(),
            reference.params.len()
        )));
    }
    if run.stream != reference.stream {
        return Ok(Err(format!(
            "kill worker {worker} at batch {kill_at}: journaled outcome stream \
             diverged ({} vs {} records)",
            run.stream.len(),
            reference.stream.len()
        )));
    }
    if run.summary.recoveries == 0 {
        return Ok(Err(format!(
            "kill worker {worker} at batch {kill_at}: the kill was never detected \
             (0 recoveries)"
        )));
    }
    Ok(Ok(run.summary))
}

/// Derive a (worker, kill batch) from a campaign seed.
fn kill_site(seed: u64, opts: &ClusterOpts) -> (usize, usize) {
    // splitmix64 finalizer: decorrelates consecutive corpus seeds.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let worker = (z % opts.workers as u64) as usize;
    let kill_at = ((z >> 16) % opts.batches as u64) as usize;
    (worker, kill_at)
}

/// Run the campaign: one fault-free reference, then a killed run per
/// seed, each demanded bit-identical. Stops at the first violation.
pub fn run_campaign(cfg: &ExpConfig, opts: &ClusterOpts) -> Result<CampaignSummary, GtError> {
    let reference = reference_run(cfg, opts)?;
    let mut summary = CampaignSummary {
        runs: 0,
        clean: 0,
        violation: None,
        reference: reference.summary.clone(),
    };
    if let (Some(worker), Some(kill_at)) = (opts.kill_worker, opts.kill_at) {
        // Directed single kill (`--kill-worker W --kill-at N`).
        summary.runs = 1;
        match killed_run(cfg, opts, &reference, worker, kill_at, opts.dir.as_deref())? {
            Ok(_) => summary.clean = 1,
            Err(detail) => summary.violation = Some((cfg.seed, detail)),
        }
        return Ok(summary);
    }
    let seeds: Vec<u64> = match &opts.seeds_file {
        Some(path) => super::chaos::read_seeds(path)?,
        None => (0..opts.seeds as u64)
            .map(|i| cfg.seed.wrapping_add(i))
            .collect(),
    };
    for (i, &seed) in seeds.iter().enumerate() {
        let (worker, kill_at) = kill_site(seed, opts);
        // The last seed's durable state lands in `--checkpoint-dir` so CI
        // can compare recovered checkpoints across sweeps.
        let dir = if i + 1 == seeds.len() {
            opts.dir.as_deref()
        } else {
            None
        };
        summary.runs += 1;
        match killed_run(cfg, opts, &reference, worker, kill_at, dir)? {
            Ok(_) => summary.clean += 1,
            Err(detail) => {
                summary.violation = Some((seed, detail));
                return Ok(summary);
            }
        }
    }
    Ok(summary)
}

/// Distill the cluster into a schema-stable [`BenchReport`] for
/// `repro cluster --bench-out` / the `cluster-smoke` CI gate: the
/// fault-free run's modeled metrics plus one canonical kill's recovery
/// cost. Everything is virtual time — bit-identical at any
/// `GT_THREADS`.
pub fn report(cfg: &ExpConfig, opts: &ClusterOpts) -> BenchReport {
    let wall = Instant::now();
    let reference =
        reference_run(cfg, opts).unwrap_or_else(|e| panic!("cluster experiment failed: {e}"));
    let s = &reference.summary;
    let (worker, kill_at) = (opts.workers - 1, opts.batches / 2);
    let killed = killed_run(cfg, opts, &reference, worker, kill_at, None)
        .unwrap_or_else(|e| panic!("cluster kill run failed: {e}"))
        .unwrap_or_else(|detail| panic!("cluster kill run violated the oracle: {detail}"));
    let wall_us = wall.elapsed().as_secs_f64() * 1e6;

    let mut metrics: Vec<(String, f64)> = vec![
        ("cluster_clock_us".into(), s.clock_us),
        ("collective_us".into(), s.collective_us),
        ("hedges_launched_total".into(), s.hedges_launched as f64),
        ("hedges_won_total".into(), s.hedges_won as f64),
        (
            "hedge_win_rate".into(),
            if s.hedges_launched == 0 {
                0.0
            } else {
                s.hedges_won as f64 / s.hedges_launched as f64
            },
        ),
        ("false_suspicions_total".into(), s.false_suspicions as f64),
        ("recovery_virtual_us".into(), killed.recovery_virtual_us),
        ("recoveries_total".into(), killed.recoveries as f64),
    ];
    for w in 0..s.workers {
        metrics.push((format!("worker{w}_busy_us"), s.worker_busy_us[w]));
        metrics.push((format!("worker{w}_idle_us"), s.worker_idle_us[w]));
    }

    let sys = SystemSpec::paper_testbed();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "cluster".to_string(),
        config: BenchConfig {
            scale_divisor: cfg.scale.divisor() as u64,
            seed: cfg.seed,
            batch: cfg.batch as u64,
            fanout: cfg.fanout as u64,
            layers: cfg.layers as u64,
            measure_batches: opts.batches as u64,
        },
        env: EnvFingerprint {
            threads: gt_par::ThreadPool::global().workers() as u64,
            gpu: sys.gpu.name.to_string(),
            host: sys.host.name.to_string(),
            host_cores: sys.host.cores as u64,
        },
        metrics,
        wall: vec![("wall_campaign_us".into(), wall_us)],
    }
}

/// Print the campaign; exits 4 when the bit-identity oracle is violated
/// (same convention as the chaos campaign).
pub fn print(cfg: &ExpConfig, opts: &ClusterOpts) {
    let summary =
        run_campaign(cfg, opts).unwrap_or_else(|e| panic!("cluster campaign failed: {e}"));
    let s = &summary.reference;
    print_table(
        &format!(
            "cluster: {} workers ({}), {} kills × {} batches (oracle: bit-identical recovery)",
            opts.workers,
            opts.partition.label(),
            summary.runs,
            opts.batches
        ),
        &["verdict", "runs"],
        &[
            vec!["clean".to_string(), summary.clean.to_string()],
            vec![
                "violation".to_string(),
                usize::from(summary.violation.is_some()).to_string(),
            ],
        ],
    );
    let rows: Vec<Vec<String>> = (0..s.workers)
        .map(|w| {
            vec![
                format!("worker{w}"),
                format!("{:.1}", s.worker_busy_us[w]),
                format!("{:.1}", s.worker_idle_us[w]),
            ]
        })
        .collect();
    print_table(
        &format!(
            "fault-free modeled time: clock {:.1}µs, collectives {:.1}µs, \
             hedges {}/{} won",
            s.clock_us, s.collective_us, s.hedges_won, s.hedges_launched
        ),
        &["worker", "busy µs", "idle µs"],
        &rows,
    );
    if let Some(dir) = &opts.dir {
        println!(
            "  recovered durable state (journal + checkpoint): {}",
            dir.display()
        );
    }
    if let Some((seed, detail)) = &summary.violation {
        println!("  seed {seed} VIOLATED the oracle: {detail}");
        std::process::exit(4);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(workers: usize) -> ClusterOpts {
        ClusterOpts {
            workers,
            batches: 4,
            seeds: 2,
            ..Default::default()
        }
    }

    /// The seeded campaign over a small corpus is clean: every derived
    /// (worker, batch) kill recovers bit-identically.
    #[test]
    fn seeded_kill_campaign_is_clean() {
        let cfg = ExpConfig::test();
        for workers in [1usize, 2] {
            let summary = run_campaign(&cfg, &opts(workers)).unwrap();
            assert_eq!(summary.runs, 2, "{workers} workers");
            assert_eq!(
                summary.violation, None,
                "{workers} workers: campaign must be clean"
            );
            assert_eq!(summary.clean, 2, "{workers} workers");
        }
    }

    /// A directed kill (`--kill-worker`/`--kill-at`) runs exactly one
    /// comparison and is clean.
    #[test]
    fn directed_kill_is_clean() {
        let cfg = ExpConfig::test();
        let mut o = opts(2);
        o.kill_worker = Some(1);
        o.kill_at = Some(2);
        let summary = run_campaign(&cfg, &o).unwrap();
        assert_eq!(summary.runs, 1);
        assert_eq!(summary.violation, None);
    }

    /// The bench report is deterministic and survives a JSON round-trip
    /// — the property the `cluster-smoke` gate's cross-width diff rests
    /// on.
    #[test]
    fn report_is_deterministic() {
        let cfg = ExpConfig::test();
        let o = opts(2);
        let a = report(&cfg, &o);
        let b = report(&cfg, &o);
        assert_eq!(a.metrics, b.metrics);
        assert!(a
            .metrics
            .iter()
            .any(|(n, v)| n == "recovery_virtual_us" && *v > 0.0));
        let back: BenchReport = a.to_json_string().parse().unwrap();
        assert_eq!(back, a);
    }
}
