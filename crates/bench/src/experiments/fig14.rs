//! Fig 14 — hash-table lock contention in naive pipelined preprocessing,
//! and its relaxation.
//!
//! With the subtask pipeline but naive locking, the paper attributes 47.4%
//! of preprocessing time to contention among S subtasks and 39.0% to S↔R
//! contention; splitting S into algorithm/hash parts and serializing only
//! the hash updates (Fig 14c) removes most of it.

use crate::runner::{pct, print_table, ExpConfig};
use gt_core::prepro::run_prepro;
use gt_core::scheduler::{schedule_prepro, PreproStrategy};
use gt_sim::{Phase, SystemSpec};

/// Contention measurements for one dataset.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Naive pipeline: lock wait inside S subtasks / total busy time.
    pub s_contention: f64,
    /// Naive pipeline: lock wait of R subtasks (racing S) / total busy.
    pub sr_contention: f64,
    /// Naive pipelined makespan (µs).
    pub naive_us: f64,
    /// Relaxed pipelined makespan (µs).
    pub relaxed_us: f64,
}

/// Measure contention for every workload.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let sys = SystemSpec::paper_testbed();
    let mut rows = Vec::new();
    for spec in gt_datasets::registry() {
        let data = cfg.build(&spec);
        let batch = cfg.batch_ids(&data);
        let pr = run_prepro(&data, &batch, &cfg.sampler());
        let naive = schedule_prepro(&pr.work, &sys, PreproStrategy::Pipelined);
        let relaxed = schedule_prepro(&pr.work, &sys, PreproStrategy::PipelinedRelaxed);
        let busy: f64 = naive
            .events
            .iter()
            .map(|e| e.end_us - e.start_us + e.lock_wait_us)
            .sum();
        let s_wait: f64 = naive
            .events
            .iter()
            .filter(|e| e.phase == Phase::Sampling)
            .map(|e| e.lock_wait_us)
            .sum();
        let r_wait: f64 = naive
            .events
            .iter()
            .filter(|e| e.phase == Phase::Reindex)
            .map(|e| e.lock_wait_us)
            .sum();
        rows.push(Row {
            dataset: spec.name.to_string(),
            s_contention: s_wait / busy,
            sr_contention: r_wait / busy,
            naive_us: naive.makespan_us,
            relaxed_us: relaxed.makespan_us,
        });
    }
    rows
}

/// Print the contention analysis.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                pct(r.s_contention),
                pct(r.sr_contention),
                format!("{:.0}us", r.naive_us),
                format!("{:.0}us", r.relaxed_us),
                format!("{:.2}x", r.naive_us / r.relaxed_us),
            ]
        })
        .collect();
    print_table(
        "Fig 14: hash-table contention (paper: S-S 47.4%, S-R 39.0% of prepro time)",
        &[
            "dataset", "S-S wait", "S-R wait", "naive", "relaxed", "speedup",
        ],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_locking_shows_contention_relaxing_removes_it() {
        let mut cfg = ExpConfig::test();
        cfg.batch = 120; // contention needs enough sampled work per hop
        let rows = run(&cfg);
        for r in &rows {
            assert!(
                r.s_contention + r.sr_contention > 0.05,
                "{}: naive pipeline shows no contention ({} + {})",
                r.dataset,
                r.s_contention,
                r.sr_contention
            );
            assert!(
                r.relaxed_us <= r.naive_us,
                "{}: relaxed {} slower than naive {}",
                r.dataset,
                r.relaxed_us,
                r.naive_us
            );
        }
    }
}
