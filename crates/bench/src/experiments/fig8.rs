//! Fig 8 — degree distribution of original vs preprocessed (sampled)
//! graphs: sampled graphs have ~3.4× lower average degree and a much
//! tighter distribution, motivating feature-wise scheduling (§IV-B).

use crate::runner::{print_table, ExpConfig};
use gt_core::prepro::run_prepro;
use gt_graph::{Coo, DegreeStats};

/// One dataset's degree comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Mean in-degree of the full graph.
    pub orig_mean: f64,
    /// Degree standard deviation of the full graph.
    pub orig_std: f64,
    /// Mean degree of the sampled (batch) graph.
    pub sampled_mean: f64,
    /// Degree standard deviation of the sampled graph.
    pub sampled_std: f64,
    /// Sampled-graph degree CDF points (for Fig 8b/8c curves).
    pub sampled_cdf: Vec<(usize, f64)>,
}

impl Row {
    /// orig/sampled mean-degree ratio (paper: 3.4× on average).
    pub fn ratio(&self) -> f64 {
        self.orig_mean / self.sampled_mean.max(1e-9)
    }
}

/// Measure degree statistics for every workload.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in gt_datasets::registry() {
        let data = cfg.build(&spec);
        let orig = DegreeStats::of_csr_nonisolated(&data.graph);

        let batch = cfg.batch_ids(&data);
        let pr = run_prepro(&data, &batch, &cfg.sampler());
        // Union of all hops in new-id space = "the preprocessed graph".
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for layer in &pr.layers {
            for (d, srcs) in layer.csr.iter() {
                for &s in srcs {
                    src.push(s);
                    dst.push(d);
                }
            }
        }
        let n = pr.new_to_orig.len();
        let coo = Coo::new(n, src, dst);
        let (csr, _) = gt_graph::convert::coo_to_csr(&coo);
        let sampled = DegreeStats::of_csr_nonisolated(&csr);

        rows.push(Row {
            dataset: spec.name.to_string(),
            orig_mean: orig.mean,
            orig_std: orig.std_dev,
            sampled_mean: sampled.mean,
            sampled_std: sampled.std_dev,
            sampled_cdf: sampled.cdf(),
        });
    }
    rows
}

/// Print Fig 8a plus CDF extracts for one light and one heavy graph.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                format!("{:.1} ± {:.1}", r.orig_mean, r.orig_std),
                format!("{:.1} ± {:.1}", r.sampled_mean, r.sampled_std),
                format!("{:.1}x", r.ratio()),
            ]
        })
        .collect();
    print_table(
        "Fig 8a: avg degree, original vs sampled (paper: 3.4x lower, near-even)",
        &["dataset", "original", "sampled", "ratio"],
        &table,
    );
    let avg: f64 = rows.iter().map(|r| r.ratio()).sum::<f64>() / rows.len() as f64;
    println!("average degree ratio: {avg:.1}x (paper 3.4x)");
    for name in ["products", "wiki-talk"] {
        if let Some(r) = rows.iter().find(|r| r.dataset == name) {
            let pts: Vec<String> = [0.5, 0.9, 0.99]
                .iter()
                .map(|&q| {
                    let k = r
                        .sampled_cdf
                        .iter()
                        .find(|(_, p)| *p >= q)
                        .map(|(k, _)| *k)
                        .unwrap_or(0);
                    format!("P{:.0}≤{k}", q * 100.0)
                })
                .collect();
            println!(
                "Fig 8b/c ({name}) sampled-degree quantiles: {}",
                pts.join(" ")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_flattens_degrees() {
        let cfg = ExpConfig::test();
        let rows = run(&cfg);
        // Power-law originals must be far more skewed than sampled graphs.
        let products = rows.iter().find(|r| r.dataset == "products").unwrap();
        // The sampled union spans `layers` hops; each hop adds at most
        // fanout+1 in-edges per destination.
        let bound = (cfg.layers * (cfg.fanout + 1)) as f64;
        assert!(
            products.sampled_mean <= bound,
            "sampled mean {} exceeds {bound}",
            products.sampled_mean
        );
        assert!(products.orig_std > products.sampled_std);
        assert!(products.ratio() > 1.0);
    }

    #[test]
    fn cdf_terminates_at_one() {
        let cfg = ExpConfig::test();
        for r in run(&cfg) {
            let last = r.sampled_cdf.last().unwrap().1;
            assert!((last - 1.0).abs() < 1e-9, "{}", r.dataset);
        }
    }
}
