//! Threads scaling — wall-clock speedup of the S/R/K preprocessing
//! stages on the `gt_par` pool, with the bit-identity contract checked
//! at every width.
//!
//! Unlike the figure modules, which price work on the *modeled* 12-core
//! host, this experiment times the real host-side implementation: the
//! same batch is preprocessed on pools of 1, 2, 4, and 8 workers and
//! the measured wall-clock is reported relative to the 1-worker run.
//! Every multi-worker result is also compared field-by-field against
//! the serial one — the pool's determinism contract (docs/parallelism.md)
//! says they must be bit-identical, not merely equivalent.

use crate::runner::{print_table, ExpConfig};
use gt_core::data::GraphData;
use gt_core::prepro::{run_prepro_with_pool, PreproResult};
use gt_par::ThreadPool;
use std::time::Instant;

/// Pool widths swept by the experiment.
pub const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// One pool width's measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Pool width (worker count).
    pub threads: usize,
    /// Mean wall-clock of one batch's S+R+K (µs).
    pub prepro_us: f64,
    /// Speedup over the 1-worker run.
    pub speedup: f64,
    /// Whether every output matched the 1-worker run bit-for-bit.
    pub identical: bool,
}

/// The synthetic large graph the sweep preprocesses. Sized so the
/// 1-worker run takes long enough to time meaningfully at `Scale::Small`
/// while staying unit-test sized at `Scale::Test`.
fn build_data(cfg: &ExpConfig) -> GraphData {
    let d = cfg.scale.divisor();
    let nv = (4_000_000 / d).max(500);
    let ne = (80_000_000 / d).max(10_000);
    GraphData::synthetic(nv, ne, 64, 8, cfg.seed)
}

fn outputs_match(a: &PreproResult, b: &PreproResult) -> bool {
    a.new_to_orig == b.new_to_orig
        && a.boundaries == b.boundaries
        && a.features == b.features
        && a.layers.len() == b.layers.len()
        && a.layers.iter().zip(&b.layers).all(|(x, y)| {
            x.csr == y.csr && x.csc == y.csc && x.num_dst == y.num_dst && x.num_src == y.num_src
        })
}

/// Sweep pool widths over one batch of the synthetic graph.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let data = build_data(cfg);
    let batch = cfg.batch_ids(&data);
    let scfg = cfg.sampler();
    let reps = cfg.measure_batches.max(1);

    let mut reference: Option<PreproResult> = None;
    let mut base_us = 0.0;
    let mut rows = Vec::new();
    for &threads in &WIDTHS {
        let pool = ThreadPool::leaked(threads);
        // Warm up once (first touch of the feature table and allocator).
        let mut result = run_prepro_with_pool(&data, &batch, &scfg, pool);
        let start = Instant::now();
        for _ in 0..reps {
            result = run_prepro_with_pool(&data, &batch, &scfg, pool);
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let identical = match &reference {
            None => true,
            Some(r) => outputs_match(r, &result),
        };
        if reference.is_none() {
            reference = Some(result);
            base_us = us;
        }
        rows.push(Row {
            threads,
            prepro_us: us,
            speedup: base_us / us,
            identical,
        });
    }
    rows
}

/// Print the scaling sweep.
pub fn print(cfg: &ExpConfig) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < *WIDTHS.last().unwrap() {
        println!(
            "note: host exposes {cores} core(s); widths beyond that are \
             oversubscribed and cannot show wall-clock speedup"
        );
    }
    let rows = run(cfg);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.threads),
                format!("{:.0}us", r.prepro_us),
                format!("{:.2}x", r.speedup),
                if r.identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "threads: S/R/K wall-clock scaling on the gt_par pool (vs 1 worker)",
        &["threads", "prepro", "speedup", "bit-identical"],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_bit_identical_at_every_width() {
        let cfg = ExpConfig::test();
        let rows = run(&cfg);
        assert_eq!(rows.len(), WIDTHS.len());
        for r in &rows {
            assert!(
                r.identical,
                "{} workers produced different outputs than 1 worker",
                r.threads
            );
            assert!(r.prepro_us > 0.0);
        }
    }
}
