//! Fig 15 — GNN training (GPU kernel) latency across frameworks,
//! normalized to Base-GT: light-feature graphs (a) and heavy (b), for GCN
//! and NGCF.
//!
//! Like the paper, the static baselines are run in both the default
//! aggregation-first order and the hand-programmed combination-first order
//! (where valid); the reported value is their average, with the two
//! individual latencies kept as the error bar.

use crate::runner::{geomean, print_table, ExpConfig};
use gt_baselines::BaselineKind;
use gt_core::config::ModelConfig;
use gt_core::data::GraphData;
use gt_core::trainer::GtVariant;
use gt_datasets::DatasetSpec;

/// Which model a Fig 15 panel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Graph convolutional network (no edge weighting).
    Gcn,
    /// Neural graph collaborative filtering (edge weighting).
    Ngcf,
}

impl Model {
    fn config(self, layers: usize, out_dim: usize) -> ModelConfig {
        match self {
            Model::Gcn => ModelConfig::gcn(layers, 64, out_dim),
            Model::Ngcf => ModelConfig::ngcf(layers, 64, out_dim),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Model::Gcn => "GCN",
            Model::Ngcf => "NGCF",
        }
    }
}

/// One framework's measurement on one dataset.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Mean GPU latency, µs (avg of both orders for static baselines).
    pub mean_us: f64,
    /// (min, max) over the two static orders — the error bar.
    pub range_us: (f64, f64),
    /// Out-of-memory? (PyG/GNNAdvisor NGCF on livejournal in the paper.)
    pub oom: bool,
}

/// One dataset row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Heavy-feature workload?
    pub heavy: bool,
    /// DGL, PyG, GNNAdvisor, Base-GT, Dynamic-GT (in that order).
    pub cells: Vec<(String, Cell)>,
}

fn measure_baseline(
    cfg: &ExpConfig,
    kind: BaselineKind,
    model: &ModelConfig,
    data: &GraphData,
) -> Cell {
    let mut lats = Vec::new();
    let mut oom = false;
    let orders: &[bool] = if model.edge.is_some() {
        &[false] // combination-first is invalid under edge weighting
    } else {
        &[false, true]
    };
    for &comb_first in orders {
        let mut b = cfg.baseline(kind, model.clone());
        b.comb_first = comb_first;
        let reports = cfg.measure(&mut b, data, 0);
        oom |= reports.iter().any(|r| r.oom.is_some());
        lats.push(reports.iter().map(|r| r.gpu_us()).sum::<f64>() / reports.len() as f64);
    }
    let min = lats.iter().copied().fold(f64::INFINITY, f64::min);
    let max = lats.iter().copied().fold(0.0, f64::max);
    Cell {
        mean_us: lats.iter().sum::<f64>() / lats.len() as f64,
        range_us: (min, max),
        oom,
    }
}

fn measure_gt(cfg: &ExpConfig, variant: GtVariant, model: &ModelConfig, data: &GraphData) -> Cell {
    let mut t = cfg.graphtensor(variant, model.clone());
    // Warm through DKP calibration (3 batches) for Dynamic.
    let warmup = if variant == GtVariant::Base { 0 } else { 3 };
    let reports = cfg.measure(&mut t, data, warmup);
    let mean = reports.iter().map(|r| r.gpu_us()).sum::<f64>() / reports.len() as f64;
    Cell {
        mean_us: mean,
        range_us: (mean, mean),
        oom: reports.iter().any(|r| r.oom.is_some()),
    }
}

/// Run one panel (model) over the given datasets.
pub fn run(cfg: &ExpConfig, model: Model, specs: &[DatasetSpec]) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in specs {
        let data = cfg.build(spec);
        let mc = model.config(cfg.layers, spec.out_dim);
        let mut cells = Vec::new();
        for kind in [
            BaselineKind::Dgl,
            BaselineKind::Pyg,
            BaselineKind::GnnAdvisor,
        ] {
            cells.push((
                kind.label().to_string(),
                measure_baseline(cfg, kind, &mc, &data),
            ));
        }
        cells.push((
            "Base-GT".into(),
            measure_gt(cfg, GtVariant::Base, &mc, &data),
        ));
        cells.push((
            "Dynamic-GT".into(),
            measure_gt(cfg, GtVariant::Dynamic, &mc, &data),
        ));
        rows.push(Row {
            dataset: spec.name.to_string(),
            heavy: spec.heavy(),
            cells,
        });
    }
    rows
}

/// Normalized latency of framework `name` in a row (Base-GT = 1.0).
pub fn normalized(row: &Row, name: &str) -> f64 {
    let base = row
        .cells
        .iter()
        .find(|(n, _)| n == "Base-GT")
        .map(|(_, c)| c.mean_us)
        .expect("Base-GT measured");
    row.cells
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| c.mean_us / base)
        .unwrap_or(f64::NAN)
}

/// Print both panels for one model.
pub fn print(cfg: &ExpConfig, model: Model) {
    for (panel, specs) in [
        ("15a light", gt_datasets::light()),
        ("15b heavy", gt_datasets::heavy()),
    ] {
        let rows = run(cfg, model, &specs);
        let names: Vec<String> = rows[0].cells.iter().map(|(n, _)| n.clone()).collect();
        let mut header = vec!["dataset"];
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        header.extend(name_refs.iter());
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut cols = vec![r.dataset.clone()];
                for (n, c) in &r.cells {
                    if c.oom {
                        cols.push("OOM".into());
                    } else {
                        cols.push(format!("{:.2}", normalized(r, n)));
                    }
                }
                cols
            })
            .collect();
        print_table(
            &format!(
                "Fig {panel}: {} training latency normalized to Base-GT (paper: DGL≈1.5-1.6x, Dynamic-GT <1)",
                model.label()
            ),
            &header,
            &table,
        );
        for n in &names {
            let ratios: Vec<f64> = rows
                .iter()
                .filter(|r| !r.cells.iter().any(|(nn, c)| nn == n && c.oom))
                .map(|r| normalized(r, n))
                .collect();
            print!("  {n}: {:.2}x  ", geomean(&ratios));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_shapes_hold_on_light_graphs() {
        let cfg = ExpConfig::test();
        let specs = [gt_datasets::by_name("products").unwrap()];
        let rows = run(&cfg, Model::Gcn, &specs);
        let r = &rows[0];
        // DGL pays translation → worse than Base-GT.
        assert!(
            normalized(r, "DGL") > 1.1,
            "DGL {} not slower than Base-GT",
            normalized(r, "DGL")
        );
        // Dynamic-GT at least matches Base-GT.
        assert!(normalized(r, "Dynamic-GT") <= 1.05);
    }

    #[test]
    fn ngcf_punishes_dl_approach() {
        let cfg = ExpConfig::test();
        let specs = [gt_datasets::by_name("reddit2").unwrap()];
        let rows = run(&cfg, Model::Ngcf, &specs);
        let r = &rows[0];
        // Sparse2Dense on the weighting path makes PyG worse than Base-GT.
        assert!(
            normalized(r, "PyG") > 1.1,
            "PyG {} not slower on NGCF",
            normalized(r, "PyG")
        );
    }

    #[test]
    fn dynamic_gt_wins_on_heavy_features() {
        let cfg = ExpConfig::test();
        let specs = [gt_datasets::by_name("wiki-talk").unwrap()];
        let rows = run(&cfg, Model::Gcn, &specs);
        let r = &rows[0];
        assert!(
            normalized(r, "Dynamic-GT") < 0.9,
            "Dynamic-GT {} should beat Base-GT on 4353-dim features",
            normalized(r, "Dynamic-GT")
        );
    }
}
