//! Ablation studies beyond the paper's figures — each isolates one design
//! choice DESIGN.md calls out.
//!
//! * **fanout sweep** — how sampling fanout trades preprocessing/compute
//!   cost against per-batch coverage;
//! * **device sensitivity** — DKP decisions and framework ordering on an
//!   A100-class device (higher bandwidth : compute ratio) vs the RTX 3090;
//! * **cache-capacity ablation** — cache bloat under the infinite-capacity
//!   model (the paper's definition) vs a finite per-SM LRU;
//! * **sampling priority** — unique-random (paper default) vs
//!   degree-weighted importance sampling.

use crate::runner::{print_table, ExpConfig};
use gt_core::config::ModelConfig;
use gt_core::framework::Framework;
use gt_core::napa::schedule::{edge_wise_cache, feature_wise_cache};
use gt_core::prepro::run_prepro;
use gt_core::trainer::GtVariant;
use gt_sample::Priority;
use gt_sim::{DeviceSpec, LruCacheSim};

/// Fanout sweep on one light workload: Prepro-GT end-to-end vs coverage.
pub fn fanout_sweep(cfg: &ExpConfig) -> Vec<(usize, usize, f64, f64)> {
    let spec = gt_datasets::by_name("products").unwrap();
    let data = cfg.build(&spec);
    let mut rows = Vec::new();
    for fanout in [2usize, 5, 10, 15, 25] {
        let mut c = *cfg;
        c.fanout = fanout;
        let mut t = c.graphtensor(
            GtVariant::Prepro,
            ModelConfig::gcn(c.layers, 64, spec.out_dim),
        );
        let reports = c.measure(&mut t, &data, 3);
        let nodes = reports[0].num_nodes;
        let prepro = reports[0].prepro_us();
        let gpu = reports[0].gpu_us();
        rows.push((fanout, nodes, prepro, gpu));
    }
    rows
}

/// DKP decisions and Base/Dynamic ratio on two devices.
pub fn device_sensitivity(cfg: &ExpConfig) -> Vec<(String, String, f64, (usize, usize))> {
    let spec = gt_datasets::by_name("wiki-talk").unwrap();
    let data = cfg.build(&spec);
    let batch = cfg.batch_ids(&data);
    let mut rows = Vec::new();
    for dev in [DeviceSpec::rtx3090(), DeviceSpec::a100()] {
        let model = ModelConfig::gcn(cfg.layers, 64, spec.out_dim);
        let mut base = cfg.graphtensor(GtVariant::Base, model.clone());
        base.sys.gpu = dev.clone();
        let rb = base.train_batch(&data, &batch);
        let mut dynamic = cfg.graphtensor(GtVariant::Dynamic, model);
        dynamic.sys.gpu = dev.clone();
        for _ in 0..3 {
            dynamic.train_batch(&data, &batch);
        }
        let rd = dynamic.train_batch(&data, &batch);
        rows.push((
            dev.name.to_string(),
            "wiki-talk GCN".to_string(),
            rb.gpu_us() / rd.gpu_us().max(1e-9),
            dynamic.dkp_decisions(),
        ));
    }
    rows
}

/// Cache bloat under infinite vs LRU caches for both schedulers.
pub fn cache_ablation(cfg: &ExpConfig) -> Vec<(String, u64, u64, u64, u64)> {
    let spec = gt_datasets::by_name("reddit2").unwrap();
    let data = cfg.build(&spec);
    let batch = cfg.batch_ids(&data);
    let pr = run_prepro(&data, &batch, &cfg.sampler());
    let dev = DeviceSpec::rtx3090();
    let row_bytes = (spec.feature_dim * 4) as u64;
    let mut rows = Vec::new();
    for (name, edge_wise) in [("feature-wise", false), ("edge-wise", true)] {
        let mut inf = 0u64;
        let mut small = 0u64;
        let mut tiny = 0u64;
        let mut tiny_hits = 0.0f64;
        for layer in &pr.layers {
            inf += if edge_wise {
                edge_wise_cache(layer, row_bytes, dev.num_sms).loaded_bytes()
            } else {
                feature_wise_cache(layer, row_bytes, dev.num_sms).loaded_bytes()
            };
            // Replay the same touch patterns through fresh per-kernel LRU
            // models (caches do not survive across kernels, matching the
            // per-kernel accounting of the infinite model).
            let mut lru_small = LruCacheSim::new(dev.num_sms, dev.l1_bytes_per_sm as u64);
            let mut lru_tiny = LruCacheSim::new(dev.num_sms, 8 * row_bytes);
            let mut block = 0usize;
            for (d, srcs) in layer.csr.iter() {
                for &s in srcs {
                    let b = if edge_wise { block } else { d as usize };
                    lru_small.touch_block(b, d as u64, row_bytes);
                    lru_small.touch_block(b, s as u64, row_bytes);
                    lru_tiny.touch_block(b, d as u64, row_bytes);
                    lru_tiny.touch_block(b, s as u64, row_bytes);
                    block += 1;
                }
            }
            small += lru_small.loaded_bytes();
            tiny += lru_tiny.loaded_bytes();
            tiny_hits = lru_tiny.hit_rate();
        }
        rows.push((
            name.to_string(),
            inf,
            small,
            tiny,
            (tiny_hits * 100.0) as u64,
        ));
    }
    rows
}

/// Sampling-priority comparison: coverage and loss trajectory.
pub fn priority_ablation(cfg: &ExpConfig) -> Vec<(String, usize, f32)> {
    let spec = gt_datasets::by_name("products").unwrap();
    let data = cfg.build(&spec);
    let batch = cfg.batch_ids(&data);
    let mut rows = Vec::new();
    for (name, priority) in [
        ("unique-random", Priority::UniqueRandom),
        ("degree-weighted", Priority::DegreeWeighted),
    ] {
        let mut t = cfg.graphtensor(
            GtVariant::Dynamic,
            ModelConfig::gcn(cfg.layers, 64, spec.out_dim),
        );
        t.sampler.priority = priority;
        let mut loss = 0.0;
        let mut nodes = 0;
        for _ in 0..3 {
            let r = t.train_batch(&data, &batch);
            loss = r.loss;
            nodes = r.num_nodes;
        }
        rows.push((name.to_string(), nodes, loss));
    }
    rows
}

/// Print all four ablations.
pub fn print(cfg: &ExpConfig) {
    let rows: Vec<Vec<String>> = fanout_sweep(cfg)
        .into_iter()
        .map(|(f, n, p, g)| {
            vec![
                f.to_string(),
                n.to_string(),
                format!("{p:.0}us"),
                format!("{g:.0}us"),
            ]
        })
        .collect();
    print_table(
        "Ablation: fanout sweep (products, Prepro-GT)",
        &["fanout", "sampled nodes", "prepro", "gpu"],
        &rows,
    );

    let rows: Vec<Vec<String>> = device_sensitivity(cfg)
        .into_iter()
        .map(|(dev, wl, ratio, (af, cf))| {
            vec![dev, wl, format!("{ratio:.2}x"), format!("{af}/{cf}")]
        })
        .collect();
    print_table(
        "Ablation: device sensitivity (Base-GT latency / Dynamic-GT latency)",
        &["device", "workload", "DKP speedup", "AF/CF"],
        &rows,
    );

    let rows: Vec<Vec<String>> = cache_ablation(cfg)
        .into_iter()
        .map(|(s, inf, small, tiny, hit)| {
            vec![
                s,
                format!("{:.1}MB", inf as f64 / 1e6),
                format!("{:.1}MB", small as f64 / 1e6),
                format!("{:.1}MB", tiny as f64 / 1e6),
                format!("{hit}%"),
            ]
        })
        .collect();
    print_table(
        "Ablation: cache model (infinite vs 128KB LRU vs 8-row LRU; reddit2 aggregation)",
        &[
            "scheduling",
            "infinite",
            "LRU (L1)",
            "LRU (tiny)",
            "tiny hit rate",
        ],
        &rows,
    );

    let rows: Vec<Vec<String>> = priority_ablation(cfg)
        .into_iter()
        .map(|(p, n, l)| vec![p, n.to_string(), format!("{l:.4}")])
        .collect();
    print_table(
        "Ablation: sampling priority (products, 3 batches)",
        &["priority", "sampled nodes", "last loss"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_increases_coverage_and_cost() {
        let cfg = ExpConfig::test();
        let rows = fanout_sweep(&cfg);
        assert!(rows.windows(2).all(|w| w[1].1 >= w[0].1), "coverage grows");
        // GPU work grows with coverage.
        assert!(rows.last().unwrap().3 > rows[0].3);
    }

    #[test]
    fn feature_wise_beats_edge_wise_under_every_cache_model() {
        let cfg = ExpConfig::test();
        let rows = cache_ablation(&cfg);
        let fw = &rows[0];
        let ew = &rows[1];
        assert!(fw.1 <= ew.1, "infinite: {} > {}", fw.1, ew.1);
        assert!(fw.2 <= ew.2, "L1 LRU: {} > {}", fw.2, ew.2);
        // LRU never loads less than the infinite model.
        assert!(fw.2 >= fw.1);
        assert!(ew.2 >= ew.1);
    }

    #[test]
    fn both_priorities_train() {
        let cfg = ExpConfig::test();
        let rows = priority_ablation(&cfg);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(_, n, l)| *n > 0 && l.is_finite()));
    }

    #[test]
    fn a100_still_benefits_from_dkp() {
        let cfg = ExpConfig::test();
        let rows = device_sensitivity(&cfg);
        for (dev, _, ratio, _) in rows {
            assert!(ratio > 0.98, "{dev}: Dynamic slower than Base ({ratio})");
        }
    }
}
