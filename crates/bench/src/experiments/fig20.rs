//! Fig 20 — preprocessing timeline: fraction of sampled nodes processed by
//! each stage over time, Dynamic-GT (serialized) vs Prepro-GT (pipelined).
//!
//! Paper: Prepro-GT's sampling/reindexing complete *later* (they share
//! cores with other subtasks) but lookup completes 14.9% earlier and
//! transfers 48.5% earlier, cutting the preprocessing makespan by 48.5%.

use crate::runner::{pct, print_table, ExpConfig};
use gt_core::prepro::run_prepro;
use gt_core::scheduler::{schedule_prepro, PreproStrategy};
use gt_sim::{Phase, SystemSpec, Timeline};

/// Timelines of one dataset under both schedules.
#[derive(Debug)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Serialized (Dynamic-GT) timeline.
    pub serial: Timeline,
    /// Pipelined (Prepro-GT) timeline.
    pub pipelined: Timeline,
    /// Serialized makespan (µs).
    pub serial_us: f64,
    /// Pipelined makespan (µs).
    pub pipelined_us: f64,
}

const STAGES: [Phase; 4] = [
    Phase::Sampling,
    Phase::Reindex,
    Phase::Lookup,
    Phase::Transfer,
];

/// Measure timelines for the two representative workloads.
pub fn run(cfg: &ExpConfig) -> Vec<Row> {
    let sys = SystemSpec::paper_testbed();
    let mut rows = Vec::new();
    for name in ["products", "wiki-talk"] {
        let spec = gt_datasets::by_name(name).unwrap();
        let data = cfg.build(&spec);
        let batch = cfg.batch_ids(&data);
        let pr = run_prepro(&data, &batch, &cfg.sampler());
        let serial = schedule_prepro(&pr.work, &sys, PreproStrategy::Serial);
        let pipelined = schedule_prepro(&pr.work, &sys, PreproStrategy::PipelinedRelaxed);
        rows.push(Row {
            dataset: name.to_string(),
            serial_us: serial.makespan_us,
            pipelined_us: pipelined.makespan_us,
            serial: Timeline::from_schedule(&serial, &STAGES),
            pipelined: Timeline::from_schedule(&pipelined, &STAGES),
        });
    }
    rows
}

/// Print stage-completion times and the pipelining gains.
pub fn print(cfg: &ExpConfig) {
    let rows = run(cfg);
    let mut table = Vec::new();
    for r in &rows {
        for p in STAGES {
            let s = r.serial.finish_us(p).unwrap_or(0.0);
            let q = r.pipelined.finish_us(p).unwrap_or(0.0);
            table.push(vec![
                r.dataset.clone(),
                p.label().to_string(),
                format!("{s:.0}us"),
                format!("{q:.0}us"),
                pct(1.0 - q / s.max(1e-9)),
            ]);
        }
        table.push(vec![
            r.dataset.clone(),
            "TOTAL".into(),
            format!("{:.0}us", r.serial_us),
            format!("{:.0}us", r.pipelined_us),
            pct(1.0 - r.pipelined_us / r.serial_us),
        ]);
    }
    print_table(
        "Fig 20: stage completion times, serial vs pipelined (paper: lookup −14.9%, transfer −48.5%)",
        &["dataset", "stage", "Dynamic-GT", "Prepro-GT", "earlier by"],
        &table,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_finishes_transfers_earlier() {
        let mut cfg = ExpConfig::test();
        cfg.batch = 120;
        for r in run(&cfg) {
            let st = r.serial.finish_us(Phase::Transfer).unwrap();
            let pt = r.pipelined.finish_us(Phase::Transfer).unwrap();
            assert!(
                pt < st,
                "{}: pipelined transfer {} !< serial {}",
                r.dataset,
                pt,
                st
            );
            assert!(r.pipelined_us < r.serial_us);
        }
    }

    #[test]
    fn curves_are_monotone() {
        let cfg = ExpConfig::test();
        for r in run(&cfg) {
            for (_, pts) in r.pipelined.curves() {
                assert!(pts.windows(2).all(|w| w[0].fraction <= w[1].fraction));
            }
        }
    }
}
