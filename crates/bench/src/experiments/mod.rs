//! One module per reproduced table/figure (DESIGN.md §4).
//!
//! Every module exposes `run(&ExpConfig) -> <structured rows>` (assertable
//! from tests) and `print(&ExpConfig)` (human-readable, with the paper's
//! reference numbers alongside).

pub mod ablation;
pub mod chaos;
pub mod cluster;
pub mod durability;
pub mod fig11b;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig6;
pub mod fig8;
pub mod scalability;
pub mod serving;
pub mod slo;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod threads;
