//! Shared experiment plumbing: configuration, framework construction, and
//! batch execution helpers.

use gt_baselines::{Baseline, BaselineKind};
use gt_core::config::ModelConfig;
use gt_core::data::GraphData;
use gt_core::framework::{BatchReport, Framework};
use gt_core::trainer::{GraphTensor, GtVariant};
use gt_datasets::{DatasetSpec, Scale};
use gt_graph::VId;
use gt_sample::SamplerConfig;
use gt_sim::SystemSpec;

/// Experiment configuration shared by every figure.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Dataset scale (divisor of the paper's graph sizes).
    pub scale: Scale,
    /// Base RNG seed.
    pub seed: u64,
    /// Destination vertices per batch (§VI: 300).
    pub batch: usize,
    /// Sampling fanout per hop.
    pub fanout: usize,
    /// GNN layers (= sampled hops).
    pub layers: usize,
    /// Measured batches averaged per data point.
    pub measure_batches: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: Scale::Small,
            seed: 42,
            batch: 300,
            fanout: 15,
            layers: 2,
            measure_batches: 2,
        }
    }
}

impl ExpConfig {
    /// Unit-test sized configuration.
    pub fn test() -> Self {
        ExpConfig {
            scale: Scale::Test,
            batch: 40,
            fanout: 6,
            measure_batches: 1,
            ..Default::default()
        }
    }

    /// Sampler settings derived from this config.
    pub fn sampler(&self) -> SamplerConfig {
        SamplerConfig {
            fanout: self.fanout,
            layers: self.layers,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// Build a dataset at this config's scale.
    pub fn build(&self, spec: &DatasetSpec) -> GraphData {
        spec.build(self.scale, self.seed)
    }

    /// The first training batch for a dataset.
    pub fn batch_ids(&self, data: &GraphData) -> Vec<VId> {
        let n = self.batch.min(data.num_vertices());
        gt_sample::BatchIter::new(data.num_vertices(), n, self.seed)
            .next()
            .expect("non-empty dataset")
    }

    /// A GraphTensor trainer on the paper testbed model.
    pub fn graphtensor(&self, variant: GtVariant, model: ModelConfig) -> GraphTensor {
        let mut t = GraphTensor::new(variant, model, SystemSpec::paper_testbed());
        t.sampler = self.sampler();
        t
    }

    /// A baseline trainer on the paper testbed model.
    pub fn baseline(&self, kind: BaselineKind, model: ModelConfig) -> Baseline {
        let mut b = Baseline::new(kind, model, SystemSpec::paper_testbed());
        b.sampler = self.sampler();
        b
    }

    /// Train `warmup + measure_batches` batches; returns the measured tail.
    pub fn measure<F: Framework>(
        &self,
        fw: &mut F,
        data: &GraphData,
        warmup: usize,
    ) -> Vec<BatchReport> {
        let telemetry = gt_telemetry::global();
        let batch = self.batch_ids(data);
        {
            let _s = telemetry
                .span("bench", "warmup")
                .arg("framework", fw.name())
                .arg("batches", warmup);
            for _ in 0..warmup {
                fw.train_batch(data, &batch);
            }
        }
        let _s = telemetry
            .span("bench", "measure")
            .arg("framework", fw.name())
            .arg("batches", self.measure_batches);
        (0..self.measure_batches)
            .map(|_| fw.train_batch(data, &batch))
            .collect()
    }

    /// Mean modeled GPU latency (µs) over measured batches.
    pub fn mean_gpu_us<F: Framework>(&self, fw: &mut F, data: &GraphData, warmup: usize) -> f64 {
        let reports = self.measure(fw, data, warmup);
        reports.iter().map(|r| r.gpu_us()).sum::<f64>() / reports.len() as f64
    }
}

/// Geometric mean (the paper's "on average" for ratios).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Format a ratio column: `1.23x`.
pub fn fx(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a percentage: `45.6%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Print a fixed-width table: header + rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fx(1.5), "1.50x");
        assert_eq!(pct(0.456), "45.6%");
    }

    #[test]
    fn config_builds_and_batches() {
        let cfg = ExpConfig::test();
        let spec = gt_datasets::by_name("reddit2").unwrap();
        let data = cfg.build(&spec);
        let batch = cfg.batch_ids(&data);
        assert_eq!(batch.len(), cfg.batch.min(data.num_vertices()));
    }
}
