//! Experiment harness: one module per table/figure of the paper's
//! evaluation (see DESIGN.md §4 for the index). The `repro` binary drives
//! these; integration tests run them at `Scale::Test` to keep every figure
//! permanently regenerable.

pub mod benchjson;
pub mod experiments;
pub mod probe;
pub mod runner;

pub use benchjson::{compare, BenchReport};
pub use runner::ExpConfig;
