//! Experiment harness: one module per table/figure of the paper's
//! evaluation (see DESIGN.md §4 for the index). The `repro` binary drives
//! these; integration tests run them at `Scale::Test` to keep every figure
//! permanently regenerable.

pub mod experiments;
pub mod runner;

pub use runner::ExpConfig;
