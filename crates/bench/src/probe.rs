//! The continuous-perf probe behind `repro --bench-out` and the `smoke`
//! experiment: train the Dynamic GraphTensor trainer for a handful of
//! batches and distill the run into a [`BenchReport`].
//!
//! Modeled metrics (latency percentiles, throughput, stage breakdowns)
//! come from the cost model and the DES scheduler, so they are
//! bit-identical across machines and `GT_THREADS` widths — that is what
//! makes a committed `BENCH_smoke.json` baseline meaningful. Wall-clock
//! per-batch times ride along informationally.

use std::time::Instant;

use crate::benchjson::{BenchConfig, BenchReport, EnvFingerprint, SCHEMA_VERSION};
use crate::runner::{print_table, ExpConfig};
use gt_core::config::ModelConfig;
use gt_core::framework::Framework;
use gt_core::prepro::run_prepro;
use gt_core::trainer::GtVariant;
use gt_core::{build_prepro_sim, PreproStrategy};
use gt_profile::{profile_schedule, Stage, StageBreakdown};
use gt_sim::SystemSpec;

/// The probe's representative workload (the paper's light dataset).
const DATASET: &str = "products";

/// Minimum measured batches: percentiles over fewer samples are noise.
const MIN_BATCHES: usize = 9;

/// The host-side request segments sampled per measured batch, in the
/// order of `SEGMENT_LABELS`.
const SEGMENT_PHASES: [gt_sim::Phase; 4] = [
    gt_sim::Phase::Sampling,
    gt_sim::Phase::Reindex,
    gt_sim::Phase::Lookup,
    gt_sim::Phase::Transfer,
];

/// Metric-key labels for [`SEGMENT_PHASES`] (the S/R/K/T vocabulary of
/// `gt_telemetry::SegmentKind`).
const SEGMENT_LABELS: [&str; 4] = ["S", "R", "K", "T"];

/// Nearest-rank percentile over an unsorted sample.
fn percentile(values: &[f64], p: f64) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    if v.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
    v[idx.min(v.len() - 1)]
}

/// Run the probe and distill a schema-stable report.
pub fn report(experiment: &str, cfg: &ExpConfig) -> BenchReport {
    let spec = gt_datasets::by_name(DATASET).expect("probe dataset");
    let data = cfg.build(&spec);
    let batch = cfg.batch_ids(&data);
    let mut t = cfg.graphtensor(
        GtVariant::Dynamic,
        ModelConfig::gcn(cfg.layers, 64, spec.out_dim),
    );
    let overlapped = t.overlaps_batches();

    // Warm up once (first batch pays calibration), then measure.
    t.train_batch(&data, &batch);
    let n = cfg.measure_batches.max(MIN_BATCHES);
    let mut e2e_us = Vec::with_capacity(n);
    let mut wall_us = Vec::with_capacity(n);
    let mut gpu_us = Vec::with_capacity(n);
    // Per-request latency segments (the same S/R/K/T vocabulary request
    // traces use), one sample per measured batch.
    let mut seg_us: [Vec<f64>; 4] = Default::default();
    let mut gpu_stages = StageBreakdown::new();
    for _ in 0..n {
        let wall = Instant::now();
        let r = t.train_batch(&data, &batch);
        wall_us.push(wall.elapsed().as_secs_f64() * 1e6);
        e2e_us.push(r.e2e_us(overlapped));
        gpu_us.push(r.gpu_us());
        for (i, phase) in SEGMENT_PHASES.iter().enumerate() {
            seg_us[i].push(r.prepro.as_ref().map_or(0.0, |s| s.phase_busy_us(*phase)));
        }
        gpu_stages.merge(&StageBreakdown::from_kernels(r.sim.records()));
    }
    let mean_e2e = e2e_us.iter().sum::<f64>() / n as f64;

    // Preprocessing stage attribution on the pipelined schedule the
    // trainer models, via gt-profile.
    let pr = run_prepro(&data, &batch, &cfg.sampler());
    let sys = SystemSpec::paper_testbed();
    let sim = build_prepro_sim(&pr.work, &sys, PreproStrategy::PipelinedRelaxed);
    let profile = profile_schedule(&sim, &sim.run());

    let mut metrics: Vec<(String, f64)> = vec![
        (
            "throughput_samples_per_s".into(),
            batch.len() as f64 * 1e6 / mean_e2e,
        ),
        ("batch_e2e_us_p50".into(), percentile(&e2e_us, 50.0)),
        ("batch_e2e_us_p95".into(), percentile(&e2e_us, 95.0)),
        ("batch_e2e_us_p99".into(), percentile(&e2e_us, 99.0)),
        ("gpu_us_mean".into(), gpu_us.iter().sum::<f64>() / n as f64),
        ("prepro_makespan_us".into(), profile.makespan_us),
        ("prepro_idle_pct".into(), profile.bubbles.idle_pct()),
    ];
    // Every stage, present or not: a schema-stable key set is what lets
    // benchdiff treat a vanished key as a break rather than noise.
    for stage in Stage::ALL {
        if stage.is_preprocessing() {
            metrics.push((
                format!("prepro_{}_us", stage.label()),
                profile.breakdown.get(stage),
            ));
        }
    }
    for stage in [
        Stage::Pull,
        Stage::NeighborApply,
        Stage::MatMul,
        Stage::Other,
    ] {
        metrics.push((
            format!("gpu_{}_us", stage.label()),
            gpu_stages.get(stage) / n as f64,
        ));
    }
    // Per-request latency-segment percentiles, keyed by the tracing
    // vocabulary (docs/telemetry.md §Tracing contexts): modeled, so they
    // sit under the same benchdiff gate as the e2e percentiles.
    for (i, label) in SEGMENT_LABELS.iter().enumerate() {
        for p in [50.0, 95.0] {
            metrics.push((format!("req_{label}_us_p{p:.0}"), percentile(&seg_us[i], p)));
        }
    }
    for p in [50.0, 95.0] {
        metrics.push((format!("req_kernel_us_p{p:.0}"), percentile(&gpu_us, p)));
    }

    let wall = vec![
        (
            "wall_batch_us_mean".into(),
            wall_us.iter().sum::<f64>() / n as f64,
        ),
        ("wall_batch_us_p50".into(), percentile(&wall_us, 50.0)),
        ("wall_batch_us_p95".into(), percentile(&wall_us, 95.0)),
        ("wall_batch_us_p99".into(), percentile(&wall_us, 99.0)),
    ];

    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: experiment.to_string(),
        config: BenchConfig {
            scale_divisor: cfg.scale.divisor() as u64,
            seed: cfg.seed,
            batch: batch.len() as u64,
            fanout: cfg.fanout as u64,
            layers: cfg.layers as u64,
            measure_batches: n as u64,
        },
        env: EnvFingerprint {
            threads: gt_par::ThreadPool::global().workers() as u64,
            gpu: sys.gpu.name.to_string(),
            host: sys.host.name.to_string(),
            host_cores: sys.host.cores as u64,
        },
        metrics,
        wall,
    }
}

/// The `smoke` experiment: run the probe and print both metric families.
pub fn print(cfg: &ExpConfig) {
    let r = report("smoke", cfg);
    let rows: Vec<Vec<String>> = r
        .metrics
        .iter()
        .map(|(k, v)| vec![k.clone(), format!("{v:.1}"), "modeled".into()])
        .chain(
            r.wall
                .iter()
                .map(|(k, v)| vec![k.clone(), format!("{v:.1}"), "wall".into()]),
        )
        .collect();
    print_table(
        &format!(
            "perf smoke ({} dst/batch, {} measured batches, {} threads)",
            r.config.batch, r.config.measure_batches, r.env.threads
        ),
        &["metric", "value", "kind"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchjson::compare;

    #[test]
    fn probe_is_deterministic_and_round_trips() {
        let cfg = ExpConfig::test();
        let a = report("smoke", &cfg);
        let b = report("smoke", &cfg);
        // Modeled metrics are bit-identical run to run; wall-clock ones
        // are not, which is exactly why they are gated separately.
        assert_eq!(a.metrics, b.metrics);
        assert!(!compare(&a, &b, 0.0, false, false).regressed());

        let back: BenchReport = a.to_json_string().parse().unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn probe_metrics_are_sane() {
        let r = report("smoke", &ExpConfig::test());
        let get = |k: &str| {
            r.metrics
                .iter()
                .find(|(n, _)| n == k)
                .unwrap_or_else(|| panic!("missing metric {k}"))
                .1
        };
        assert!(get("throughput_samples_per_s") > 0.0);
        let (p50, p95, p99) = (
            get("batch_e2e_us_p50"),
            get("batch_e2e_us_p95"),
            get("batch_e2e_us_p99"),
        );
        assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99);
        assert!(get("prepro_makespan_us") > 0.0);
        let idle = get("prepro_idle_pct");
        assert!((0.0..=100.0).contains(&idle));
        // The S/R/K/T family is attributed: at least sampling and
        // transfer see nonzero busy time on a real schedule.
        assert!(get("prepro_S-alg_us") + get("prepro_S-hash_us") + get("prepro_S_us") > 0.0);
        assert!(get("prepro_T_us") > 0.0);
        assert!(get("gpu_MatMul_us") > 0.0);
    }
}
