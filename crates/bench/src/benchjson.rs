//! Schema-stable benchmark reports (`BENCH_<exp>.json`) and the comparison
//! logic behind the `benchdiff` binary.
//!
//! A [`BenchReport`] separates **modeled** metrics (deterministic — the
//! cost model prices the same work identically on every machine and at
//! every `GT_THREADS` width, so they are diffable against a committed
//! baseline) from **wall-clock** metrics (machine-dependent, recorded for
//! information and only gated when `benchdiff --wall` opts in).
//!
//! Metric direction is encoded in the name, not in a side table: any
//! metric whose name contains `throughput` or `hit_rate` is
//! higher-is-better; all others (latencies, idle percentages, makespans)
//! are lower-is-better.

use gt_telemetry::Json;

/// Bumped whenever a field is renamed or re-interpreted; `benchdiff`
/// refuses to compare across versions.
pub const SCHEMA_VERSION: u64 = 1;

/// The experiment configuration a report was measured under.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    pub scale_divisor: u64,
    pub seed: u64,
    pub batch: u64,
    pub fanout: u64,
    pub layers: u64,
    pub measure_batches: u64,
}

/// Where a report was measured: enough to explain a wall-clock delta and
/// to prove two modeled runs priced the same machine model.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvFingerprint {
    /// `GT_THREADS`-resolved worker count of the global pool.
    pub threads: u64,
    /// Modeled GPU name (`DeviceSpec::name`).
    pub gpu: String,
    /// Modeled host name (`HostSpec::name`).
    pub host: String,
    /// Modeled host core count.
    pub host_cores: u64,
}

/// One benchmark run, serializable to `BENCH_<exp>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub schema_version: u64,
    pub experiment: String,
    pub config: BenchConfig,
    pub env: EnvFingerprint,
    /// Deterministic modeled metrics, gated by `benchdiff` by default.
    pub metrics: Vec<(String, f64)>,
    /// Wall-clock metrics, informational unless `--wall`.
    pub wall: Vec<(String, f64)>,
}

/// Direction rule: `throughput` or `hit_rate` anywhere in the name means
/// higher is better; everything else is a cost (latency, idle, makespan).
pub fn higher_is_better(name: &str) -> bool {
    name.contains("throughput") || name.contains("hit_rate")
}

fn pairs_to_json(pairs: &[(String, f64)]) -> Json {
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v)))
            .collect(),
    )
}

fn pairs_from_json(j: &Json, what: &str) -> Result<Vec<(String, f64)>, String> {
    match j {
        Json::Obj(fields) => fields
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("{what}.{k}: not a number"))
            })
            .collect(),
        _ => Err(format!("{what}: not an object")),
    }
}

fn num(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn string(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

impl BenchReport {
    /// Serialize to the on-disk JSON form (stable key order).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("experiment", Json::Str(self.experiment.clone())),
            (
                "config",
                Json::obj(vec![
                    ("scale_divisor", self.config.scale_divisor.into()),
                    ("seed", self.config.seed.into()),
                    ("batch", self.config.batch.into()),
                    ("fanout", self.config.fanout.into()),
                    ("layers", self.config.layers.into()),
                    ("measure_batches", self.config.measure_batches.into()),
                ]),
            ),
            (
                "env",
                Json::obj(vec![
                    ("threads", self.env.threads.into()),
                    ("gpu", Json::Str(self.env.gpu.clone())),
                    ("host", Json::Str(self.env.host.clone())),
                    ("host_cores", self.env.host_cores.into()),
                ]),
            ),
            ("metrics", pairs_to_json(&self.metrics)),
            ("wall", pairs_to_json(&self.wall)),
        ])
    }

    /// Pretty-ish single-line JSON plus trailing newline (stable bytes for
    /// a committed baseline).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_json_string();
        s.push('\n');
        s
    }

    /// Parse a report back from its JSON form.
    pub fn from_json(j: &Json) -> Result<BenchReport, String> {
        let cfg = j.get("config").ok_or("missing field \"config\"")?;
        let env = j.get("env").ok_or("missing field \"env\"")?;
        Ok(BenchReport {
            schema_version: num(j, "schema_version")? as u64,
            experiment: string(j, "experiment")?,
            config: BenchConfig {
                scale_divisor: num(cfg, "scale_divisor")? as u64,
                seed: num(cfg, "seed")? as u64,
                batch: num(cfg, "batch")? as u64,
                fanout: num(cfg, "fanout")? as u64,
                layers: num(cfg, "layers")? as u64,
                measure_batches: num(cfg, "measure_batches")? as u64,
            },
            env: EnvFingerprint {
                threads: num(env, "threads")? as u64,
                gpu: string(env, "gpu")?,
                host: string(env, "host")?,
                host_cores: num(env, "host_cores")? as u64,
            },
            metrics: pairs_from_json(
                j.get("metrics").ok_or("missing field \"metrics\"")?,
                "metrics",
            )?,
            wall: pairs_from_json(j.get("wall").ok_or("missing field \"wall\"")?, "wall")?,
        })
    }
}

impl std::str::FromStr for BenchReport {
    type Err = String;

    /// Parse from raw file contents.
    fn from_str(text: &str) -> Result<BenchReport, String> {
        let j = gt_telemetry::json::parse(text).map_err(|e| e.to_string())?;
        BenchReport::from_json(&j)
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct DiffLine {
    pub name: String,
    pub base: f64,
    pub cand: f64,
    /// `cand / base` (NaN when the baseline value is not positive).
    pub ratio: f64,
    pub higher_is_better: bool,
    /// Outside the noise tolerance in the bad direction.
    pub regressed: bool,
}

/// The full comparison of two reports.
#[derive(Debug, Clone)]
pub struct DiffReport {
    pub lines: Vec<DiffLine>,
    /// Metrics present in the baseline but missing from the candidate —
    /// a schema break, treated as a regression.
    pub missing: Vec<String>,
    /// Metrics only the candidate has. A schema break unless the
    /// comparison allowed additive metrics (`--allow-new`); wall-clock
    /// additions (`wall:` prefix) are always informational.
    pub added: Vec<String>,
    /// Whether additive modeled metrics count as a schema break (the
    /// default; `--allow-new` clears it).
    pub new_fatal: bool,
    /// Incompatibility (schema version / experiment mismatch), if any.
    pub incompatible: Option<String>,
}

impl DiffReport {
    /// Whether the candidate regressed against the baseline.
    pub fn regressed(&self) -> bool {
        self.incompatible.is_some()
            || !self.missing.is_empty()
            || self.lines.iter().any(|l| l.regressed)
            || (self.new_fatal && !self.fatal_added().is_empty())
    }

    /// The additive metrics that gate when `new_fatal`: every added
    /// modeled metric (wall-clock additions never gate).
    pub fn fatal_added(&self) -> Vec<&str> {
        self.added
            .iter()
            .filter(|n| !n.starts_with("wall:"))
            .map(String::as_str)
            .collect()
    }

    /// Multi-line failure summary enumerating EVERY failing metric with its
    /// baseline and candidate values (and every vanished metric), so a CI
    /// log shows the whole damage at once instead of just a count. Empty
    /// when nothing regressed.
    pub fn failure_summary(&self) -> String {
        let mut out = String::new();
        if let Some(why) = &self.incompatible {
            out.push_str(&format!("incompatible: {why}\n"));
            return out;
        }
        for l in self.lines.iter().filter(|l| l.regressed) {
            let direction = if l.higher_is_better { "fell" } else { "rose" };
            out.push_str(&format!(
                "{}: {direction} {} -> {} ({})\n",
                l.name,
                l.base,
                l.cand,
                if l.ratio.is_nan() {
                    "n/a".to_string()
                } else {
                    format!("{:.2}x", l.ratio)
                }
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("{name}: missing from candidate (schema break)\n"));
        }
        if self.new_fatal {
            for name in self.fatal_added() {
                out.push_str(&format!(
                    "{name}: new in candidate (schema break; regenerate the \
                     baseline or pass --allow-new)\n"
                ));
            }
        }
        out
    }
}

fn diff_pairs(
    base: &[(String, f64)],
    cand: &[(String, f64)],
    prefix: &str,
    tolerance: f64,
    gate: bool,
    out: &mut DiffReport,
) {
    for (name, b) in base {
        let display = format!("{prefix}{name}");
        let Some((_, c)) = cand.iter().find(|(n, _)| n == name) else {
            if gate {
                out.missing.push(display);
            }
            continue;
        };
        let hib = higher_is_better(name);
        let ratio = if *b > 0.0 { c / b } else { f64::NAN };
        let regressed = gate
            && *b > 0.0
            && if hib {
                *c < b * (1.0 - tolerance)
            } else {
                *c > b * (1.0 + tolerance)
            };
        out.lines.push(DiffLine {
            name: display,
            base: *b,
            cand: *c,
            ratio,
            higher_is_better: hib,
            regressed,
        });
    }
    for (name, _) in cand {
        if !base.iter().any(|(n, _)| n == name) {
            out.added.push(format!("{prefix}{name}"));
        }
    }
}

/// Compare `cand` against `base` with a relative noise `tolerance`
/// (e.g. `0.3` = ±30%). Modeled metrics always gate; wall-clock metrics
/// gate only when `include_wall` (they still appear, unmarked, otherwise).
/// Additive modeled metrics in the candidate are a schema break unless
/// `allow_new` — a baseline that silently stops covering new metrics is
/// as stale as one missing old ones. Vanished metrics stay fatal either
/// way.
pub fn compare(
    base: &BenchReport,
    cand: &BenchReport,
    tolerance: f64,
    include_wall: bool,
    allow_new: bool,
) -> DiffReport {
    let mut out = DiffReport {
        lines: Vec::new(),
        missing: Vec::new(),
        added: Vec::new(),
        new_fatal: !allow_new,
        incompatible: None,
    };
    if base.schema_version != cand.schema_version {
        out.incompatible = Some(format!(
            "schema version mismatch: baseline v{} vs candidate v{}",
            base.schema_version, cand.schema_version
        ));
        return out;
    }
    if base.experiment != cand.experiment {
        out.incompatible = Some(format!(
            "experiment mismatch: baseline {:?} vs candidate {:?}",
            base.experiment, cand.experiment
        ));
        return out;
    }
    diff_pairs(&base.metrics, &cand.metrics, "", tolerance, true, &mut out);
    diff_pairs(
        &base.wall,
        &cand.wall,
        "wall:",
        tolerance,
        include_wall,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            experiment: "smoke".into(),
            config: BenchConfig {
                scale_divisor: 2000,
                seed: 42,
                batch: 40,
                fanout: 6,
                layers: 2,
                measure_batches: 9,
            },
            env: EnvFingerprint {
                threads: 4,
                gpu: "RTX 3090".into(),
                host: "Xeon Gold 5317 (12c)".into(),
                host_cores: 12,
            },
            metrics: vec![
                ("batch_e2e_us_p50".into(), 1000.0),
                ("batch_e2e_us_p99".into(), 1500.0),
                ("throughput_samples_per_s".into(), 40_000.0),
            ],
            wall: vec![("wall_batch_us_p50".into(), 2300.0)],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = report();
        let back: BenchReport = r.to_json_string().parse().unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn direction_rule() {
        assert!(higher_is_better("throughput_samples_per_s"));
        assert!(higher_is_better("embedding_cache_hit_rate"));
        assert!(higher_is_better("subgraph_cache_hit_rate"));
        assert!(!higher_is_better("batch_e2e_us_p99"));
        assert!(!higher_is_better("prepro_idle_pct"));
    }

    #[test]
    fn identical_reports_do_not_regress() {
        let r = report();
        let d = compare(&r, &r, 0.3, false, false);
        assert!(!d.regressed());
        assert!(d.missing.is_empty());
        assert_eq!(d.lines.len(), 4);
        for l in &d.lines {
            assert!((l.ratio - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn injected_latency_regression_is_caught() {
        let base = report();
        let mut cand = report();
        // 2× latency on one metric: far outside a 30% tolerance.
        cand.metrics[1].1 *= 2.0;
        let d = compare(&base, &cand, 0.3, false, false);
        assert!(d.regressed());
        let line = d
            .lines
            .iter()
            .find(|l| l.name == "batch_e2e_us_p99")
            .unwrap();
        assert!(line.regressed);
        assert!((line.ratio - 2.0).abs() < 1e-12);
        // The untouched metrics stay green.
        assert_eq!(d.lines.iter().filter(|l| l.regressed).count(), 1);
    }

    #[test]
    fn throughput_drop_regresses_and_rise_does_not() {
        let base = report();
        let mut slower = report();
        slower.metrics[2].1 *= 0.5;
        assert!(compare(&base, &slower, 0.3, false, false).regressed());
        let mut faster = report();
        faster.metrics[2].1 *= 2.0;
        assert!(!compare(&base, &faster, 0.3, false, false).regressed());
    }

    #[test]
    fn within_tolerance_noise_passes() {
        let base = report();
        let mut cand = report();
        for (_, v) in cand.metrics.iter_mut() {
            *v *= 1.2; // +20% on costs, +20% on throughput: both inside ±30%.
        }
        assert!(!compare(&base, &cand, 0.3, false, false).regressed());
    }

    #[test]
    fn wall_metrics_gate_only_on_request() {
        let base = report();
        let mut cand = report();
        cand.wall[0].1 *= 10.0;
        assert!(!compare(&base, &cand, 0.3, false, false).regressed());
        assert!(compare(&base, &cand, 0.3, true, false).regressed());
    }

    #[test]
    fn missing_metric_is_a_schema_break() {
        let base = report();
        let mut cand = report();
        cand.metrics.remove(0);
        let d = compare(&base, &cand, 0.3, false, false);
        assert_eq!(d.missing, vec!["batch_e2e_us_p50".to_string()]);
        assert!(d.regressed());
    }

    #[test]
    fn failure_summary_enumerates_every_regression() {
        let base = report();
        let mut cand = report();
        cand.metrics[0].1 *= 3.0; // p50 latency 3×
        cand.metrics[2].1 *= 0.1; // throughput collapses
        cand.metrics.remove(1); // p99 vanishes
        let d = compare(&base, &cand, 0.3, false, false);
        assert!(d.regressed());
        let summary = d.failure_summary();
        let lines: Vec<&str> = summary.lines().collect();
        assert_eq!(lines.len(), 3, "all three failures listed:\n{summary}");
        assert!(
            summary.contains("batch_e2e_us_p50: rose 1000 -> 3000 (3.00x)"),
            "{summary}"
        );
        assert!(
            summary.contains("throughput_samples_per_s: fell 40000 -> 4000 (0.10x)"),
            "{summary}"
        );
        assert!(
            summary.contains("batch_e2e_us_p99: missing from candidate (schema break)"),
            "{summary}"
        );
        // A clean comparison yields an empty summary.
        assert!(compare(&base, &base, 0.3, false, false)
            .failure_summary()
            .is_empty());
    }

    #[test]
    fn new_metrics_gate_unless_allowed() {
        let base = report();
        let mut cand = report();
        cand.metrics.push(("fleet_busy_imbalance".into(), 1.2));
        // Default: an additive modeled metric is a schema break.
        let strict = compare(&base, &cand, 0.3, false, false);
        assert!(strict.regressed());
        assert_eq!(strict.fatal_added(), vec!["fleet_busy_imbalance"]);
        assert!(
            strict
                .failure_summary()
                .contains("fleet_busy_imbalance: new in candidate"),
            "{}",
            strict.failure_summary()
        );
        // --allow-new: the addition is listed but does not gate.
        let relaxed = compare(&base, &cand, 0.3, false, true);
        assert!(!relaxed.regressed());
        assert_eq!(relaxed.added, vec!["fleet_busy_imbalance".to_string()]);
        assert!(relaxed.failure_summary().is_empty());
        // Vanished metrics stay fatal even with --allow-new.
        let fewer = compare(&cand, &base, 0.3, false, true);
        assert!(fewer.regressed());
        assert_eq!(fewer.missing, vec!["fleet_busy_imbalance".to_string()]);
        // Wall-clock additions never gate, allowed or not.
        let mut wall_cand = report();
        wall_cand.wall.push(("wall_extra_us".into(), 1.0));
        let d = compare(&base, &wall_cand, 0.3, false, false);
        assert!(!d.regressed());
        assert_eq!(d.added, vec!["wall:wall_extra_us".to_string()]);
    }

    #[test]
    fn version_and_experiment_mismatches_refuse() {
        let base = report();
        let mut v = report();
        v.schema_version += 1;
        assert!(compare(&base, &v, 0.3, false, false).incompatible.is_some());
        let mut e = report();
        e.experiment = "fig16".into();
        assert!(compare(&base, &e, 0.3, false, false).incompatible.is_some());
    }
}
