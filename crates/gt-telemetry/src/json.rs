//! Minimal JSON value, writer, and parser.
//!
//! The workspace builds in fully offline environments where external crates
//! cannot be vendored (DESIGN.md §6), so the telemetry exporters carry their
//! own JSON machinery: a [`Json`] value tree, an escaping writer, and a
//! strict recursive-descent parser (used by the Chrome-trace round-trip
//! tests and by anyone post-processing exported traces).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are f64, like JavaScript. Non-finite values serialize as
    /// `null` (Chrome trace viewers reject bare `NaN`).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (no dedup; last key wins on lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialize without extraneous whitespace.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's f64 Display is shortest-roundtrip, so values
                    // survive write→parse bit-exactly.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh string.
    pub fn to_json_string(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Free-function object constructor; reads better than [`Json::obj`] when
/// building literals inline.
pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Types with a canonical machine-readable JSON form. The workspace's
/// substitute for `serde::Serialize` (external crates cannot be vendored in
/// the offline build); gated behind each crate's `serde` feature where the
/// paper-facing types are concerned.
pub trait ToJson {
    /// The value's JSON representation.
    fn to_json(&self) -> Json;
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map unpaired surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Num(0.0),
            Json::Num(-12.5),
            Json::Num(1e300),
            Json::Str("hi \"there\"\n\\ πß".to_string()),
        ] {
            let s = v.to_json_string();
            assert_eq!(parse(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("b", Json::obj(vec![("c", Json::from("x"))])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(parse(&v.to_json_string()).unwrap(), v);
    }

    #[test]
    fn f64_roundtrips_bit_exactly() {
        for x in [
            1.0f64 / 3.0,
            123456.789012,
            f64::MIN_POSITIVE,
            -0.000123456789,
        ] {
            let s = Json::Num(x).to_json_string();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_json_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json_string(), "null");
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"x": 3, "y": "z", "l": [1,2]}"#).unwrap();
        assert_eq!(v.get("x").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("y").unwrap().as_str(), Some("z"));
        assert_eq!(v.get("l").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"abc", "nul", "{\"a\" 1}", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" {\n\t\"a\" : [ 1 , 2 ] }\r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
