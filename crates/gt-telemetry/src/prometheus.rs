//! Prometheus text exposition (format version 0.0.4) for a
//! [`MetricsSnapshot`]. Histograms render cumulative `_bucket{le=...}`
//! series plus `_sum`/`_count`, matching what a scraper expects.

use std::fmt::Write as _;

use crate::metrics::{LabelSet, MetricValue, MetricsSnapshot};

/// Render the snapshot as Prometheus exposition text. Series of one family
/// (same name, different label sets) share a single HELP/TYPE header; each
/// series renders as `name{k="v",...} value` with escaped label values.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for m in &snapshot.metrics {
        let kind = match &m.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        // The snapshot is name-sorted, so a family's series are adjacent:
        // emit the header only on the first.
        if last_name != Some(m.name.as_str()) {
            if !m.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
            }
            let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
            last_name = Some(m.name.as_str());
        }
        let labels = label_block(&m.labels);
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, labels, v);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, labels, fmt_f64(*v));
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, bound) in h.bounds.iter().enumerate() {
                    cumulative += h.counts[i];
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        bucket_block(&m.labels, &fmt_f64(*bound)),
                        cumulative
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    m.name,
                    bucket_block(&m.labels, "+Inf"),
                    h.count
                );
                let _ = writeln!(out, "{}_sum{} {}", m.name, labels, fmt_f64(h.sum));
                let _ = writeln!(out, "{}_count{} {}", m.name, labels, h.count);
            }
        }
    }
    out
}

/// `{k1="v1",k2="v2"}` with escaped values; empty string for no labels.
fn label_block(labels: &LabelSet) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// The label block for a histogram bucket line: the series labels with the
/// cumulative `le` bound appended last.
fn bucket_block(labels: &LabelSet, le: &str) -> String {
    let mut inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    inner.push(format!("le=\"{le}\""));
    format!("{{{}}}", inner.join(","))
}

/// Escape HELP text per the exposition format: backslash and newline only.
/// Backslash must go first or the escaped newline's own backslash would be
/// doubled.
pub fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value per the exposition format: backslash, double quote,
/// and newline. Anything else (including UTF-8) passes through verbatim.
pub fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Registry};

    #[test]
    fn renders_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("gt_serve_retries_total", "Total retry attempts")
            .add(3);
        reg.gauge("gt_cache_hit_rate", "Feature cache hit rate")
            .set(0.75);
        let h = reg.histogram("gt_batch_e2e_us", "Batch latency", || {
            Histogram::with_bounds(vec![100.0, 1000.0])
        });
        h.observe(50.0);
        h.observe(500.0);
        h.observe(5000.0);

        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE gt_serve_retries_total counter"));
        assert!(text.contains("gt_serve_retries_total 3"));
        assert!(text.contains("# HELP gt_cache_hit_rate Feature cache hit rate"));
        assert!(text.contains("gt_cache_hit_rate 0.75"));
        // Cumulative buckets: 1 at le=100, 2 at le=1000, 3 at +Inf.
        assert!(text.contains("gt_batch_e2e_us_bucket{le=\"100\"} 1"));
        assert!(text.contains("gt_batch_e2e_us_bucket{le=\"1000\"} 2"));
        assert!(text.contains("gt_batch_e2e_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("gt_batch_e2e_us_sum 5550"));
        assert!(text.contains("gt_batch_e2e_us_count 3"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&Registry::new().snapshot()), "");
    }

    /// Labeled families: one HELP/TYPE header per name, one series line per
    /// label set, label values escaped, histogram buckets merge `le` last.
    #[test]
    fn labeled_series_render_as_one_family() {
        let reg = Registry::new();
        reg.counter_with("gt_req_total", "Requests", &[("tenant", "a")])
            .add(2);
        reg.counter_with("gt_req_total", "Requests", &[("tenant", "b\"x")])
            .add(3);
        reg.gauge_with("gt_link_util", "", &[("link", "w0"), ("dir", "tx")])
            .set(0.5);
        let h = reg.histogram("gt_stage_us", "", || Histogram::with_bounds(vec![100.0]));
        h.observe(50.0);

        let text = render(&reg.snapshot());
        assert_eq!(
            text.matches("# TYPE gt_req_total counter").count(),
            1,
            "one TYPE header per family:\n{text}"
        );
        assert!(text.contains("gt_req_total{tenant=\"a\"} 2"));
        assert!(text.contains("gt_req_total{tenant=\"b\\\"x\"} 3"));
        // Labels render key-sorted regardless of registration order.
        assert!(text.contains("gt_link_util{dir=\"tx\",link=\"w0\"} 0.5"));
        assert!(text.contains("gt_stage_us_bucket{le=\"100\"} 1"));

        let hl = reg.histogram_us_with("gt_lat_us", "", &[("worker", "1")]);
        hl.observe(15.0);
        let text = render(&reg.snapshot());
        assert!(text.contains("gt_lat_us_bucket{worker=\"1\",le=\"20\"} 1"));
        assert!(text.contains("gt_lat_us_bucket{worker=\"1\",le=\"+Inf\"} 1"));
        assert!(text.contains("gt_lat_us_sum{worker=\"1\"} 15"));
        assert!(text.contains("gt_lat_us_count{worker=\"1\"} 1"));
    }

    /// Exposition-format conformance: HELP escapes `\` and newline; label
    /// values escape `\`, `"`, and newline, in an order that never
    /// double-escapes.
    #[test]
    fn help_and_label_escaping_conform() {
        assert_eq!(escape_help("plain"), "plain");
        assert_eq!(escape_help("line1\nline2"), "line1\\nline2");
        assert_eq!(escape_help("path C:\\tmp"), "path C:\\\\tmp");
        // A literal backslash-n in the input must stay distinguishable from
        // an escaped newline: `\n` → `\\n`, newline → `\n`.
        assert_eq!(escape_help("\\n\n"), "\\\\n\\n");

        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");

        // End to end: a multi-line HELP with a backslash renders on one
        // line and round-trips the backslash.
        let reg = Registry::new();
        reg.counter("gt_esc_total", "first\nsecond \\ third").inc();
        let text = render(&reg.snapshot());
        assert!(text.contains("# HELP gt_esc_total first\\nsecond \\\\ third"));
        // The HELP record stays a single line.
        let help_line = text
            .lines()
            .find(|l| l.starts_with("# HELP gt_esc_total"))
            .unwrap();
        assert!(!help_line.contains('\n'));
    }
}
