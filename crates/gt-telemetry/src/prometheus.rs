//! Prometheus text exposition (format version 0.0.4) for a
//! [`MetricsSnapshot`]. Histograms render cumulative `_bucket{le=...}`
//! series plus `_sum`/`_count`, matching what a scraper expects.

use std::fmt::Write as _;

use crate::metrics::{MetricValue, MetricsSnapshot};

/// Render the snapshot as Prometheus exposition text.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for m in &snapshot.metrics {
        let kind = match &m.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        if !m.help.is_empty() {
            let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
        }
        let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
        match &m.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{} {}", m.name, v);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{} {}", m.name, fmt_f64(*v));
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, bound) in h.bounds.iter().enumerate() {
                    cumulative += h.counts[i];
                    let _ = writeln!(
                        out,
                        "{}_bucket{{le=\"{}\"}} {}",
                        m.name,
                        fmt_f64(*bound),
                        cumulative
                    );
                }
                let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", m.name, h.count);
                let _ = writeln!(out, "{}_sum {}", m.name, fmt_f64(h.sum));
                let _ = writeln!(out, "{}_count {}", m.name, h.count);
            }
        }
    }
    out
}

/// Escape HELP text per the exposition format: backslash and newline only.
/// Backslash must go first or the escaped newline's own backslash would be
/// doubled.
pub fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value per the exposition format: backslash, double quote,
/// and newline. Anything else (including UTF-8) passes through verbatim.
pub fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Registry};

    #[test]
    fn renders_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("gt_serve_retries_total", "Total retry attempts")
            .add(3);
        reg.gauge("gt_cache_hit_rate", "Feature cache hit rate")
            .set(0.75);
        let h = reg.histogram("gt_batch_e2e_us", "Batch latency", || {
            Histogram::with_bounds(vec![100.0, 1000.0])
        });
        h.observe(50.0);
        h.observe(500.0);
        h.observe(5000.0);

        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE gt_serve_retries_total counter"));
        assert!(text.contains("gt_serve_retries_total 3"));
        assert!(text.contains("# HELP gt_cache_hit_rate Feature cache hit rate"));
        assert!(text.contains("gt_cache_hit_rate 0.75"));
        // Cumulative buckets: 1 at le=100, 2 at le=1000, 3 at +Inf.
        assert!(text.contains("gt_batch_e2e_us_bucket{le=\"100\"} 1"));
        assert!(text.contains("gt_batch_e2e_us_bucket{le=\"1000\"} 2"));
        assert!(text.contains("gt_batch_e2e_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("gt_batch_e2e_us_sum 5550"));
        assert!(text.contains("gt_batch_e2e_us_count 3"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&Registry::new().snapshot()), "");
    }

    /// Exposition-format conformance: HELP escapes `\` and newline; label
    /// values escape `\`, `"`, and newline, in an order that never
    /// double-escapes.
    #[test]
    fn help_and_label_escaping_conform() {
        assert_eq!(escape_help("plain"), "plain");
        assert_eq!(escape_help("line1\nline2"), "line1\\nline2");
        assert_eq!(escape_help("path C:\\tmp"), "path C:\\\\tmp");
        // A literal backslash-n in the input must stay distinguishable from
        // an escaped newline: `\n` → `\\n`, newline → `\n`.
        assert_eq!(escape_help("\\n\n"), "\\\\n\\n");

        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");

        // End to end: a multi-line HELP with a backslash renders on one
        // line and round-trips the backslash.
        let reg = Registry::new();
        reg.counter("gt_esc_total", "first\nsecond \\ third").inc();
        let text = render(&reg.snapshot());
        assert!(text.contains("# HELP gt_esc_total first\\nsecond \\\\ third"));
        // The HELP record stays a single line.
        let help_line = text
            .lines()
            .find(|l| l.starts_with("# HELP gt_esc_total"))
            .unwrap();
        assert!(!help_line.contains('\n'));
    }
}
