//! Chrome trace-event JSON export (Perfetto / `chrome://tracing` loadable).
//!
//! A [`Trace`] is one *process* row in the viewer: a named set of *tracks*
//! (threads) carrying duration and instant events. Multiple traces render
//! as separate process groups in one file — the repo uses that to show
//! real wall-clock spans and the DES virtual-time schedule side by side.
//!
//! Format notes (see the Trace Event Format spec): we emit `"M"` metadata
//! events naming each process/thread, `"X"` complete events for durations,
//! `"i"` instant events, and `"s"`/`"f"` flow events — the arrows Perfetto
//! draws between causally linked slices on different tracks (a parent span
//! on the request track flowing into its S/R/K/T children on the core /
//! PCIe / GPU tracks). Timestamps are microseconds.

use crate::json::{obj, parse, Json, JsonError};
use crate::span::{EventRecord, SpanRecord};

/// Which end of a flow arrow an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStep {
    /// The arrow's origin (`ph:"s"`).
    Start,
    /// The arrow's destination (`ph:"f"`, binding point `"e"`).
    Finish,
}

/// Flow linkage of a [`TraceEvent`]: events sharing an `id` are joined by
/// an arrow from the `Start` event to the `Finish` event.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Which end of the arrow this event is.
    pub step: FlowStep,
    /// Flow identity; start and finish must agree.
    pub id: u64,
}

/// One duration, instant, or flow event on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (shown on the slice).
    pub name: String,
    /// Category string (comma-separable in viewers).
    pub cat: String,
    /// Track (thread row) the event belongs to.
    pub track: String,
    /// Start timestamp, µs.
    pub ts_us: f64,
    /// Duration, µs. `None` renders as an instant event.
    pub dur_us: Option<f64>,
    /// Flow linkage; when set, the event renders as `ph:"s"`/`ph:"f"`
    /// (duration is ignored by the format for flow events).
    pub flow: Option<Flow>,
    /// Extra payload shown in the viewer's args pane.
    pub args: Vec<(String, Json)>,
}

/// One process row: a named group of tracks and their events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Process name shown in the viewer.
    pub process: String,
    /// Events, in insertion order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace for the given process row.
    pub fn new(process: impl Into<String>) -> Trace {
        Trace {
            process: process.into(),
            events: Vec::new(),
        }
    }

    /// Append a duration event.
    pub fn duration(
        &mut self,
        track: impl Into<String>,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, Json)>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat: cat.into(),
            track: track.into(),
            ts_us,
            dur_us: Some(dur_us),
            flow: None,
            args,
        });
    }

    /// Append an instant event.
    pub fn instant(
        &mut self,
        track: impl Into<String>,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts_us: f64,
        args: Vec<(String, Json)>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat: cat.into(),
            track: track.into(),
            ts_us,
            dur_us: None,
            flow: None,
            args,
        });
    }

    /// Append the origin of a flow arrow named `name` with identity `id`.
    pub fn flow_start(
        &mut self,
        track: impl Into<String>,
        name: impl Into<String>,
        ts_us: f64,
        id: u64,
    ) {
        self.flow_event(track, name, ts_us, FlowStep::Start, id);
    }

    /// Append the destination of flow arrow `id`.
    pub fn flow_finish(
        &mut self,
        track: impl Into<String>,
        name: impl Into<String>,
        ts_us: f64,
        id: u64,
    ) {
        self.flow_event(track, name, ts_us, FlowStep::Finish, id);
    }

    fn flow_event(
        &mut self,
        track: impl Into<String>,
        name: impl Into<String>,
        ts_us: f64,
        step: FlowStep,
        id: u64,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat: "flow".to_string(),
            track: track.into(),
            ts_us,
            dur_us: None,
            flow: Some(Flow { step, id }),
            args: Vec::new(),
        });
    }

    /// Build a trace from collected wall-clock spans and events. Each span
    /// track becomes one thread row; span args and ids land in the args
    /// pane so parent/child linkage survives export.
    pub fn from_spans(process: &str, spans: &[SpanRecord], events: &[EventRecord]) -> Trace {
        let mut trace = Trace::new(process);
        for s in spans {
            let mut args: Vec<(String, Json)> = vec![("span_id".to_string(), s.id.into())];
            if let Some(p) = s.parent {
                args.push(("parent_span_id".to_string(), p.into()));
            }
            args.extend(
                s.args
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(v.as_str()))),
            );
            trace.duration(
                s.track.clone(),
                s.name.clone(),
                "span",
                s.start_us,
                s.dur_us,
                args,
            );
        }
        for e in events {
            let args = e
                .args
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                .collect();
            trace.instant(e.track.clone(), e.name.clone(), "event", e.ts_us, args);
        }
        trace
    }

    /// Track names in first-appearance order.
    pub fn tracks(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for e in &self.events {
            if !seen.contains(&e.track.as_str()) {
                seen.push(&e.track);
            }
        }
        seen
    }
}

/// Render traces as one Chrome trace-event JSON document. Each trace gets
/// its own pid; each distinct track within it gets a tid, both announced
/// via `"M"` metadata records so viewers show human-readable names.
pub fn write_chrome_json(traces: &[&Trace]) -> String {
    let mut events: Vec<Json> = Vec::new();
    for (pid, trace) in traces.iter().enumerate() {
        let pid = pid as u64 + 1;
        events.push(obj([
            ("name", "process_name".into()),
            ("ph", "M".into()),
            ("pid", pid.into()),
            ("tid", Json::from(0u64)),
            ("args", obj([("name", trace.process.as_str().into())])),
        ]));
        let tracks = trace.tracks();
        for (tid, track) in tracks.iter().enumerate() {
            events.push(obj([
                ("name", "thread_name".into()),
                ("ph", "M".into()),
                ("pid", pid.into()),
                ("tid", Json::from(tid as u64 + 1)),
                ("args", obj([("name", Json::from(*track))])),
            ]));
        }
        for e in &trace.events {
            let tid = tracks.iter().position(|t| *t == e.track).unwrap() as u64 + 1;
            let mut fields: Vec<(&str, Json)> = vec![
                ("name", e.name.as_str().into()),
                ("cat", e.cat.as_str().into()),
                ("pid", pid.into()),
                ("tid", tid.into()),
                ("ts", e.ts_us.into()),
            ];
            match (&e.flow, e.dur_us) {
                (Some(flow), _) => {
                    match flow.step {
                        FlowStep::Start => fields.push(("ph", "s".into())),
                        FlowStep::Finish => {
                            fields.push(("ph", "f".into()));
                            // Bind to the enclosing slice so the arrow ends
                            // on the child slice rather than its next event.
                            fields.push(("bp", "e".into()));
                        }
                    }
                    fields.push(("id", flow.id.into()));
                }
                (None, Some(dur)) => {
                    fields.push(("ph", "X".into()));
                    fields.push(("dur", dur.into()));
                }
                (None, None) => {
                    fields.push(("ph", "i".into()));
                    fields.push(("s", "t".into()));
                }
            }
            fields.push((
                "args",
                Json::Obj(e.args.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
            ));
            events.push(obj(fields));
        }
    }
    obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", "ms".into()),
    ])
    .to_json_string()
}

/// Parse a Chrome trace-event document produced by [`write_chrome_json`]
/// back into [`Trace`]s (used by the round-trip tests and post-processing).
/// Unknown phase types are skipped; metadata rebuilds process/track names.
pub fn from_chrome_json(text: &str) -> Result<Vec<Trace>, JsonError> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .ok_or(JsonError {
            message: "missing traceEvents array".to_string(),
            offset: 0,
        })?;

    // pid -> (process name, tid -> track name), insertion-ordered by pid.
    let mut pids: Vec<u64> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut tracks: Vec<Vec<(u64, String)>> = Vec::new();
    let mut bodies: Vec<Vec<TraceEvent>> = Vec::new();

    let idx_of = |pids: &mut Vec<u64>,
                  names: &mut Vec<String>,
                  tracks: &mut Vec<Vec<(u64, String)>>,
                  bodies: &mut Vec<Vec<TraceEvent>>,
                  pid: u64| {
        match pids.iter().position(|&p| p == pid) {
            Some(i) => i,
            None => {
                pids.push(pid);
                names.push(format!("pid {pid}"));
                tracks.push(Vec::new());
                bodies.push(Vec::new());
                pids.len() - 1
            }
        }
    };

    for ev in events {
        let pid = ev.get("pid").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
        let tid = ev.get("tid").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
        let ph = ev.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        let name = ev.get("name").and_then(|v| v.as_str()).unwrap_or("");
        let i = idx_of(&mut pids, &mut names, &mut tracks, &mut bodies, pid);
        match ph {
            "M" => {
                let label = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                    .unwrap_or("")
                    .to_string();
                match name {
                    "process_name" => names[i] = label,
                    "thread_name" => tracks[i].push((tid, label)),
                    _ => {}
                }
            }
            "X" | "i" | "s" | "f" => {
                let track = tracks[i]
                    .iter()
                    .find(|(t, _)| *t == tid)
                    .map(|(_, n)| n.clone())
                    .unwrap_or_else(|| format!("tid {tid}"));
                let args = match ev.get("args") {
                    Some(Json::Obj(pairs)) => pairs.clone(),
                    _ => Vec::new(),
                };
                bodies[i].push(TraceEvent {
                    name: name.to_string(),
                    cat: ev
                        .get("cat")
                        .and_then(|v| v.as_str())
                        .unwrap_or("")
                        .to_string(),
                    track,
                    ts_us: ev.get("ts").and_then(|v| v.as_f64()).unwrap_or(0.0),
                    dur_us: if ph == "X" {
                        Some(ev.get("dur").and_then(|v| v.as_f64()).unwrap_or(0.0))
                    } else {
                        None
                    },
                    flow: match ph {
                        "s" | "f" => Some(Flow {
                            step: if ph == "s" {
                                FlowStep::Start
                            } else {
                                FlowStep::Finish
                            },
                            id: ev.get("id").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64,
                        }),
                        _ => None,
                    },
                    args,
                });
            }
            _ => {}
        }
    }

    Ok(names
        .into_iter()
        .zip(bodies)
        .map(|(process, events)| Trace { process, events })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("serving");
        t.duration(
            "serve",
            "batch 0",
            "span",
            10.0,
            120.5,
            vec![("batch".to_string(), Json::from(0u64))],
        );
        t.duration("serve", "batch 1", "span", 140.0, 80.25, vec![]);
        t.instant(
            "serve",
            "retry",
            "event",
            150.0,
            vec![("attempt".to_string(), Json::from(1u64))],
        );
        t.duration("prepro", "S1A c0", "des", 0.0, 55.0, vec![]);
        t
    }

    #[test]
    fn tracks_are_first_appearance_ordered() {
        assert_eq!(sample().tracks(), vec!["serve", "prepro"]);
    }

    #[test]
    fn chrome_json_round_trips() {
        let t = sample();
        let text = write_chrome_json(&[&t]);
        let back = from_chrome_json(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], t);
    }

    #[test]
    fn multi_process_round_trips_in_order() {
        let a = sample();
        let mut b = Trace::new("virtual time");
        b.duration("GPU", "K(S1)", "des", 5.0, 42.0, vec![]);
        let text = write_chrome_json(&[&a, &b]);
        let back = from_chrome_json(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], a);
        assert_eq!(back[1], b);
    }

    #[test]
    fn from_spans_carries_parent_linkage() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "outer".to_string(),
                track: "train".to_string(),
                start_us: 0.0,
                dur_us: 100.0,
                args: vec![("batch".to_string(), "3".to_string())],
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "inner".to_string(),
                track: "train".to_string(),
                start_us: 10.0,
                dur_us: 50.0,
                args: vec![],
            },
        ];
        let events = vec![EventRecord {
            name: "oom".to_string(),
            track: "train".to_string(),
            ts_us: 20.0,
            args: vec![],
        }];
        let t = Trace::from_spans("wall clock", &spans, &events);
        assert_eq!(t.events.len(), 3);
        let inner = t.events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(
            inner.args.iter().find(|(k, _)| k == "parent_span_id"),
            Some(&("parent_span_id".to_string(), Json::from(1u64)))
        );
        let text = write_chrome_json(&[&t]);
        assert_eq!(from_chrome_json(&text).unwrap()[0], t);
    }

    /// Flow events (`ph:"s"`/`ph:"f"`) linking parent→child slices across
    /// tracks survive the export→parse round trip bit-exactly, like every
    /// other event kind.
    #[test]
    fn flow_events_round_trip() {
        let mut t = Trace::new("requests");
        t.duration("request", "request #4", "request", 10.0, 90.0, vec![]);
        t.duration("GPU", "kernel", "request", 30.0, 40.0, vec![]);
        t.flow_start("request", "kernel", 10.0, 0xDEAD_BEEF);
        t.flow_finish("GPU", "kernel", 30.0, 0xDEAD_BEEF);

        let text = write_chrome_json(&[&t]);
        // Raw format checks: both phases present, finish binds enclosing.
        assert!(text.contains("\"ph\":\"s\""), "{text}");
        assert!(text.contains("\"ph\":\"f\""), "{text}");
        assert!(text.contains("\"bp\":\"e\""), "{text}");

        let back = from_chrome_json(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], t);
        let flows: Vec<_> = back[0]
            .events
            .iter()
            .filter_map(|e| e.flow.as_ref())
            .collect();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].step, FlowStep::Start);
        assert_eq!(flows[1].step, FlowStep::Finish);
        assert!(flows.iter().all(|f| f.id == 0xDEAD_BEEF));
    }

    #[test]
    fn rejects_documents_without_trace_events() {
        assert!(from_chrome_json("{}").is_err());
        assert!(from_chrome_json("not json").is_err());
    }
}
