//! Metrics registry: monotonic counters, gauges, and fixed-bucket
//! histograms, all updatable from the hot path with single atomic ops.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones;
//! the registry's mutex is only taken at registration and snapshot time,
//! never per update. [`MetricsSnapshot`] is a point-in-time copy that the
//! exporters ([`crate::prometheus`], [`crate::summary`]) render.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{obj, Json, ToJson};

/// Monotonically increasing counter (events, retries, bytes).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge (queue depth, cache hit rate).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` to the gauge (compare-and-swap loop).
    pub fn add(&self, delta: f64) {
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some((f64::from_bits(b) + delta).to_bits())
            });
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram for latency-style distributions. Buckets are
/// cumulative-at-snapshot, not at update: each `observe` increments exactly
/// one bucket counter plus sum/count/min/max, all relaxed atomics.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, ascending; an implicit +Inf
    /// bucket catches the rest.
    bounds: Vec<f64>,
    /// One count per finite bound, plus the overflow bucket at the end.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the given ascending finite bucket bounds.
    pub fn with_bounds(bounds: Vec<f64>) -> Histogram {
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds,
                counts,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
                min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
                max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            }),
        }
    }

    /// Default buckets for microsecond latencies: 10µs .. 10s, roughly
    /// logarithmic (1-2-5 per decade). The 10s (1e7 µs) cap is the last
    /// finite bound; everything slower lands in the overflow bucket.
    pub fn latency_us() -> Histogram {
        let mut bounds = Vec::new();
        let mut decade = 10.0;
        while decade < 1e7 {
            for mult in [1.0, 2.0, 5.0] {
                bounds.push(decade * mult);
            }
            decade *= 10.0;
        }
        bounds.push(1e7);
        Histogram::with_bounds(bounds)
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.inner;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let _ = inner
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some((f64::from_bits(b) + v).to_bits())
            });
        let _ = inner
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                (v < f64::from_bits(b)).then(|| v.to_bits())
            });
        let _ = inner
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                (v > f64::from_bits(b)).then(|| v.to_bits())
            });
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            counts: inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(inner.sum_bits.load(Ordering::Relaxed)),
            count: inner.count.load(Ordering::Relaxed),
            min: f64::from_bits(inner.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(inner.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Frozen histogram state, with quantile estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one longer than `bounds` (overflow bucket last).
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Estimate quantile `q` in `[0, 1]` by linear interpolation within the
    /// bucket holding the target rank. Returns `None` when empty. The
    /// overflow bucket interpolates toward the observed max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cumulative + c;
            if (next as f64) >= rank && c > 0 {
                let lower = if i == 0 {
                    self.min.min(self.bound_or_max(0))
                } else {
                    self.bounds[i - 1]
                };
                let upper = self.bound_or_max(i);
                let within = (rank - cumulative as f64) / c as f64;
                return Some(lower + (upper - lower) * within.clamp(0.0, 1.0));
            }
            cumulative = next;
        }
        Some(self.max)
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    fn bound_or_max(&self, i: usize) -> f64 {
        if i < self.bounds.len() {
            self.bounds[i].min(self.max)
        } else {
            self.max
        }
    }
}

/// One metric's frozen value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram distribution.
    Histogram(HistogramSnapshot),
}

/// A sorted `key=value` label set identifying one series within a metric
/// family. Always key-sorted, so equal sets compare equal regardless of the
/// order call sites supplied them in.
pub type LabelSet = Vec<(String, String)>;

/// Normalize a label slice into a key-sorted [`LabelSet`]. Duplicate keys
/// are rejected — a series with `tenant="a",tenant="b"` is meaningless.
pub fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    for w in set.windows(2) {
        assert!(w[0].0 != w[1].0, "duplicate label key {:?}", w[0].0);
    }
    set
}

/// One named metric series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (e.g. `gt_serve_retries_total`).
    pub name: String,
    /// Sorted `key=value` labels; empty for plain unlabeled metrics.
    pub labels: LabelSet,
    /// Help text supplied at registration.
    pub help: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// Point-in-time copy of every registered metric, name-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

impl MetricsSnapshot {
    /// Look up a metric's *unlabeled* series by name. Labeled series are
    /// reached through [`Self::get_with`] or [`Self::series`].
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels.is_empty())
    }

    /// Look up one labeled series exactly (label order does not matter).
    pub fn get_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSnapshot> {
        let want = label_set(labels);
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == want)
    }

    /// All series of a metric family, label-sorted.
    pub fn series<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a MetricSnapshot> {
        self.metrics.iter().filter(move |m| m.name == name)
    }

    /// Counter value summed across every series of `name` (0 when absent —
    /// counters start at zero). For an unlabeled counter this is simply its
    /// value; for a labeled family it is the family total.
    pub fn counter(&self, name: &str) -> u64 {
        self.series(name)
            .map(|m| match &m.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// One labeled counter series' value (0 when absent).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get_with(name, labels).map(|m| &m.value) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Unlabeled gauge value by name, `None` when absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name).map(|m| &m.value) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// One labeled gauge series' value, `None` when absent.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.get_with(name, labels).map(|m| &m.value) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Unlabeled histogram snapshot by name, `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name).map(|m| &m.value) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// One labeled histogram series, `None` when absent.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        match self.get_with(name, labels).map(|m| &m.value) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
        }
    }
}

/// All series sharing one metric name: a single help text and kind, one
/// [`Entry`] per label set (the empty set is the plain unlabeled series).
#[derive(Debug)]
struct Family {
    help: String,
    series: BTreeMap<LabelSet, Entry>,
}

/// Named metric registry. Get-or-register returns a shared handle, so two
/// call sites asking for the same name and labels update the same series.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or register a series, enforcing one kind per family. Panics if
    /// `name` already holds a different metric kind (Prometheus families
    /// have exactly one TYPE).
    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], make: Entry) -> Entry {
        let set = label_set(labels);
        let mut map = self.metrics.lock().unwrap();
        let family = map.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        if let Some(existing) = family.series.values().next() {
            assert!(
                existing.kind() == make.kind(),
                "metric {name:?} already registered with a different kind"
            );
        }
        family.series.entry(set).or_insert(make).clone()
    }

    /// Get or register a counter. Panics if `name` is already registered as
    /// a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Get or register one labeled counter series of the family `name`.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, Entry::Counter(Counter::default())) {
            Entry::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Get or register one labeled gauge series of the family `name`.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, Entry::Gauge(Gauge::default())) {
            Entry::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Get or register a histogram with default latency buckets.
    pub fn histogram_us(&self, name: &str, help: &str) -> Histogram {
        self.histogram(name, help, Histogram::latency_us)
    }

    /// Get or register one labeled latency histogram series of `name`.
    pub fn histogram_us_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(
            name,
            help,
            labels,
            Entry::Histogram(Histogram::latency_us()),
        ) {
            Entry::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Get or register a histogram, building it with `make` on first use.
    pub fn histogram(&self, name: &str, help: &str, make: impl FnOnce() -> Histogram) -> Histogram {
        // `make` must only run when the series is absent, so this cannot go
        // through `register` (which demands an eagerly built entry).
        let mut map = self.metrics.lock().unwrap();
        let family = map.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        if let Some(existing) = family.series.values().next() {
            assert!(
                matches!(existing, Entry::Histogram(_)),
                "metric {name:?} already registered with a different kind"
            );
        }
        let entry = family
            .series
            .entry(LabelSet::new())
            .or_insert_with(|| Entry::Histogram(make()));
        match entry {
            Entry::Histogram(h) => h.clone(),
            _ => unreachable!(),
        }
    }

    /// Freeze every registered series, name-sorted then label-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().unwrap();
        MetricsSnapshot {
            metrics: map
                .iter()
                .flat_map(|(name, family)| {
                    family.series.iter().map(|(labels, entry)| MetricSnapshot {
                        name: name.clone(),
                        labels: labels.clone(),
                        help: family.help.clone(),
                        value: match entry {
                            Entry::Counter(c) => MetricValue::Counter(c.get()),
                            Entry::Gauge(g) => MetricValue::Gauge(g.get()),
                            Entry::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                        },
                    })
                })
                .collect(),
        }
    }
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        obj([
            (
                "bounds",
                Json::Arr(self.bounds.iter().map(|&b| Json::from(b)).collect()),
            ),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::from(c)).collect()),
            ),
            ("sum", self.sum.into()),
            ("count", self.count.into()),
            ("min", self.min.into()),
            ("max", self.max.into()),
        ])
    }
}

impl ToJson for MetricSnapshot {
    fn to_json(&self) -> Json {
        let (kind, value) = match &self.value {
            MetricValue::Counter(v) => ("counter", Json::from(*v)),
            MetricValue::Gauge(v) => ("gauge", Json::from(*v)),
            MetricValue::Histogram(h) => ("histogram", h.to_json()),
        };
        let mut fields = vec![("name", Json::from(self.name.as_str()))];
        if !self.labels.is_empty() {
            // Emitted only for labeled series, so unlabeled snapshots stay
            // byte-identical to the pre-label JSON schema.
            fields.push((
                "labels",
                obj(self
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), Json::from(v.as_str())))),
            ));
        }
        fields.extend([
            ("help", self.help.as_str().into()),
            ("kind", kind.into()),
            ("value", value),
        ]);
        obj(fields)
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        obj([(
            "metrics",
            Json::Arr(self.metrics.iter().map(|m| m.to_json()).collect()),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("gt_test_total", "test counter");
        c.inc();
        c.add(4);
        // Same name returns the same underlying counter.
        assert_eq!(reg.counter("gt_test_total", "ignored").get(), 5);

        let g = reg.gauge("gt_test_gauge", "test gauge");
        g.set(1.5);
        g.add(0.25);
        assert_eq!(g.get(), 1.75);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("gt_test_total"), 5);
        assert_eq!(snap.gauge("gt_test_gauge"), Some(1.75));
        assert_eq!(snap.counter("gt_missing_total"), 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::with_bounds(vec![10.0, 100.0, 1000.0]);
        for v in [5.0, 50.0, 500.0, 5000.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 1, 1, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 5555.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5000.0);
        let p50 = s.quantile(0.5).unwrap();
        assert!((10.0..=100.0).contains(&p50), "p50 = {p50}");
        // p99 lands in the overflow bucket, which interpolates toward max.
        let p99 = s.quantile(0.99).unwrap();
        assert!(p99 <= 5000.0 && p99 > 1000.0, "p99 = {p99}");
        assert_eq!(s.quantile(1.0).unwrap(), 5000.0);
        assert_eq!(s.mean(), Some(5555.0 / 4.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::latency_us().snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.mean(), None);
    }

    /// The default latency buckets must match their documented contract:
    /// 10µs .. 10s, strictly ascending, 1-2-5 per decade, and not one
    /// bound past the 1e7 µs cap.
    #[test]
    fn latency_bounds_conform_to_documented_range() {
        let s = Histogram::latency_us().snapshot();
        let bounds = &s.bounds;
        assert_eq!(bounds.first().copied(), Some(10.0));
        assert_eq!(bounds.last().copied(), Some(1e7));
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "not ascending");
        for &b in bounds {
            assert!(b <= 1e7, "bound {b} exceeds the documented 10s cap");
            // 1-2-5 series: the mantissa of every bound is 1, 2, or 5.
            let mantissa = b / 10f64.powf(b.log10().floor());
            assert!(
                [1.0, 2.0, 5.0].iter().any(|m| (mantissa - m).abs() < 1e-9),
                "bound {b} is not on the 1-2-5 grid"
            );
        }
        // Six full decades (10..5e6) plus the cap itself.
        assert_eq!(bounds.len(), 6 * 3 + 1);
    }

    #[test]
    fn single_value_histogram_quantiles_are_tight() {
        let h = Histogram::with_bounds(vec![10.0, 100.0]);
        h.observe(42.0);
        let s = h.snapshot();
        // Interpolation is clamped by the observed min/max.
        let p50 = s.quantile(0.5).unwrap();
        assert!((10.0..=42.0).contains(&p50), "p50 = {p50}");
    }

    /// A single-sample snapshot: every quantile must stay inside the
    /// bucket that holds the one observation, bounded by the observed
    /// value itself — never the raw bucket bound.
    #[test]
    fn single_sample_quantiles_never_leave_the_sample() {
        let h = Histogram::with_bounds(vec![10.0, 100.0, 1000.0]);
        h.observe(42.0);
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = s.quantile(q).unwrap();
            assert!((10.0..=42.0).contains(&v), "q={q} escaped the sample: {v}");
        }
        // q=1.0 is exactly the sample (upper clamp is min(bound, max)).
        assert_eq!(s.quantile(1.0), Some(42.0));
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    /// A single sample below the first bound: the lower edge of bucket 0
    /// is min(min, bound), so interpolation cannot undershoot the
    /// observation's bucket.
    #[test]
    fn single_sample_in_first_bucket() {
        let h = Histogram::with_bounds(vec![10.0, 100.0]);
        h.observe(3.0);
        let s = h.snapshot();
        let p50 = s.quantile(0.5).unwrap();
        assert!((3.0..=10.0).contains(&p50), "p50 = {p50}");
        assert_eq!(s.quantile(1.0), Some(3.0));
    }

    /// All mass in the overflow bucket: interpolation runs from the last
    /// finite bound toward the observed max, never past it — and never to
    /// +inf, which a naive "+Inf upper bound" implementation would yield.
    #[test]
    fn overflow_bucket_interpolates_toward_max() {
        let h = Histogram::with_bounds(vec![10.0, 100.0]);
        for v in [200.0, 400.0, 800.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![0, 0, 3]);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let v = s.quantile(q).unwrap();
            assert!(v.is_finite(), "q={q} is not finite: {v}");
            assert!(
                (100.0..=800.0).contains(&v),
                "q={q} outside [last bound, max]: {v}"
            );
        }
        assert_eq!(s.quantile(1.0), Some(800.0));
        // Quantiles are monotone in q across the overflow bucket.
        let (a, b, c) = (
            s.quantile(0.2).unwrap(),
            s.quantile(0.6).unwrap(),
            s.quantile(0.95).unwrap(),
        );
        assert!(a <= b && b <= c, "non-monotone: {a} {b} {c}");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("gt_x", "");
        let _ = reg.gauge("gt_x", "");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_across_label_sets_panics() {
        let reg = Registry::new();
        let _ = reg.counter_with("gt_x", "", &[("tenant", "a")]);
        let _ = reg.gauge_with("gt_x", "", &[("tenant", "b")]);
    }

    #[test]
    #[should_panic(expected = "duplicate label key")]
    fn duplicate_label_keys_panic() {
        let reg = Registry::new();
        let _ = reg.counter_with("gt_x", "", &[("tenant", "a"), ("tenant", "b")]);
    }

    #[test]
    fn labeled_series_are_distinct_and_order_insensitive() {
        let reg = Registry::new();
        reg.counter_with("gt_req_total", "requests", &[("tenant", "a"), ("op", "r")])
            .add(3);
        // Same labels in a different supplied order: the same series.
        reg.counter_with("gt_req_total", "requests", &[("op", "r"), ("tenant", "a")])
            .add(4);
        reg.counter_with("gt_req_total", "requests", &[("tenant", "b"), ("op", "r")])
            .inc();

        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_with("gt_req_total", &[("op", "r"), ("tenant", "a")]),
            7
        );
        assert_eq!(
            snap.counter_with("gt_req_total", &[("tenant", "b"), ("op", "r")]),
            1
        );
        // The family total sums every series.
        assert_eq!(snap.counter("gt_req_total"), 8);
        // `get` only sees the unlabeled series, which does not exist here.
        assert!(snap.get("gt_req_total").is_none());
        assert_eq!(snap.series("gt_req_total").count(), 2);
    }

    #[test]
    fn labeled_and_unlabeled_series_coexist() {
        let reg = Registry::new();
        reg.counter("gt_mix_total", "").add(5);
        reg.counter_with("gt_mix_total", "", &[("worker", "0")])
            .inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter_with("gt_mix_total", &[]), 5);
        assert_eq!(snap.counter("gt_mix_total"), 6);
        // The unlabeled series sorts first (empty label set is least).
        assert!(snap.get("gt_mix_total").unwrap().labels.is_empty());
    }

    #[test]
    fn labeled_gauges_and_histograms_round_trip() {
        let reg = Registry::new();
        reg.gauge_with("gt_link_util", "", &[("link", "w0")])
            .set(0.5);
        reg.histogram_us_with("gt_stage_us", "", &[("worker", "1")])
            .observe(42.0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.gauge_with("gt_link_util", &[("link", "w0")]),
            Some(0.5)
        );
        assert_eq!(snap.gauge("gt_link_util"), None);
        let h = snap
            .histogram_with("gt_stage_us", &[("worker", "1")])
            .unwrap();
        assert_eq!(h.count, 1);
        assert!(snap.histogram("gt_stage_us").is_none());
    }

    #[test]
    fn labeled_json_carries_labels_and_unlabeled_stays_stable() {
        let reg = Registry::new();
        reg.counter("gt_plain_total", "p").inc();
        reg.counter_with("gt_lab_total", "l", &[("tenant", "7")])
            .inc();
        let snap = reg.snapshot();
        let text = snap.to_json().to_json_string();
        assert!(text.contains("\"labels\":{\"tenant\":\"7\"}"));
        // Unlabeled metrics carry no labels key at all (schema stability).
        let plain = snap
            .get("gt_plain_total")
            .unwrap()
            .to_json()
            .to_json_string();
        assert!(!plain.contains("labels"));
    }

    #[test]
    fn snapshot_is_name_sorted_and_json_renders() {
        let reg = Registry::new();
        reg.counter("gt_b_total", "b").inc();
        reg.gauge("gt_a_gauge", "a").set(2.0);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["gt_a_gauge", "gt_b_total"]);
        let text = snap.to_json().to_json_string();
        assert!(text.contains("\"gt_b_total\""));
        assert!(text.contains("\"counter\""));
    }
}
