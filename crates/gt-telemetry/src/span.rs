//! RAII spans and the pluggable [`Collector`] behind them.
//!
//! A [`Span`] measures one region of wall-clock time on a named *track*
//! (e.g. `"serve"`, `"train"`) with key/value labels (phase, batch index,
//! layer). Spans nest: a per-thread stack links each span to its parent, so
//! exported traces reconstruct the call tree.
//!
//! Storage is behind the [`Collector`] trait. [`NullCollector`] is the
//! default and compiles to near-zero cost: `enabled()` is `false`, so span
//! construction takes no clock reading, allocates nothing, and the guard's
//! `Drop` is a no-op — the instrumented path is observationally identical
//! to the uninstrumented one (verified by a bit-identity test in gt-core).
//! [`MemoryCollector`] keeps finished spans in memory for export.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A finished span, as stored by a collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Collector-unique id (1-based; 0 is reserved for "no span").
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (e.g. `"train_batch"`).
    pub name: String,
    /// Track (exported as one Chrome-trace thread per track).
    pub track: String,
    /// Start, µs since the collector's epoch.
    pub start_us: f64,
    /// Duration, µs.
    pub dur_us: f64,
    /// Key/value labels (`batch`, `layer`, `phase`, ...).
    pub args: Vec<(String, String)>,
}

/// A point-in-time structured event (e.g. a serving outcome transition).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name (e.g. `"quarantine"`).
    pub name: String,
    /// Track the event belongs to.
    pub track: String,
    /// Timestamp, µs since the collector's epoch.
    pub ts_us: f64,
    /// Key/value payload.
    pub args: Vec<(String, String)>,
}

/// Where spans and events go. Implementations must be cheap and thread-safe;
/// the hot path is `enabled()` + `now_us()` + one `record_*` per span.
pub trait Collector: Send + Sync {
    /// False for the null collector: spans skip clock reads entirely.
    fn enabled(&self) -> bool;
    /// Microseconds since this collector's epoch.
    fn now_us(&self) -> f64;
    /// Allocate a collector-unique span id (1-based).
    fn next_span_id(&self) -> u64;
    /// Store a finished span.
    fn record_span(&self, span: SpanRecord);
    /// Store an instant event.
    fn record_event(&self, event: EventRecord);
    /// Snapshot of finished spans (empty for non-recording collectors).
    fn spans(&self) -> Vec<SpanRecord>;
    /// Snapshot of recorded events.
    fn events(&self) -> Vec<EventRecord>;
}

/// Discards everything; the default collector.
#[derive(Debug, Default)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn enabled(&self) -> bool {
        false
    }
    fn now_us(&self) -> f64 {
        0.0
    }
    fn next_span_id(&self) -> u64 {
        0
    }
    fn record_span(&self, _span: SpanRecord) {}
    fn record_event(&self, _event: EventRecord) {}
    fn spans(&self) -> Vec<SpanRecord> {
        Vec::new()
    }
    fn events(&self) -> Vec<EventRecord> {
        Vec::new()
    }
}

/// Records spans and events into memory for later export. Span ids come
/// from an atomic counter; the record vectors sit behind short-critical-
/// section mutexes (one push per finished span).
#[derive(Debug)]
pub struct MemoryCollector {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
}

impl Default for MemoryCollector {
    fn default() -> Self {
        MemoryCollector {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
        }
    }
}

impl MemoryCollector {
    /// A fresh collector whose epoch is "now".
    pub fn new() -> Self {
        Self::default()
    }
}

impl Collector for MemoryCollector {
    fn enabled(&self) -> bool {
        true
    }
    fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }
    fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }
    fn record_span(&self, span: SpanRecord) {
        self.spans.lock().unwrap().push(span);
    }
    fn record_event(&self, event: EventRecord) {
        self.events.lock().unwrap().push(event);
    }
    fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().clone()
    }
    fn events(&self) -> Vec<EventRecord> {
        self.events.lock().unwrap().clone()
    }
}

thread_local! {
    /// Stack of open span ids on this thread (for parent linkage).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one span. Created through
/// [`Telemetry::span`](crate::Telemetry::span); records itself on drop.
#[must_use = "a span measures the scope it is alive in; bind it to a variable"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("recording", &self.inner.is_some())
            .finish_non_exhaustive()
    }
}

struct SpanInner {
    collector: Arc<dyn Collector>,
    id: u64,
    parent: Option<u64>,
    name: Cow<'static, str>,
    track: Cow<'static, str>,
    start_us: f64,
    args: Vec<(String, String)>,
}

impl Span {
    pub(crate) fn start(
        collector: &Arc<dyn Collector>,
        track: impl Into<Cow<'static, str>>,
        name: impl Into<Cow<'static, str>>,
    ) -> Span {
        if !collector.enabled() {
            return Span { inner: None };
        }
        let id = collector.next_span_id();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        Span {
            inner: Some(SpanInner {
                collector: Arc::clone(collector),
                id,
                parent,
                name: name.into(),
                track: track.into(),
                start_us: collector.now_us(),
                args: Vec::new(),
            }),
        }
    }

    /// A disabled span (what the null collector hands out).
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// True when this span records anything on drop.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a label. No-op (and no formatting cost beyond the call) on
    /// disabled spans — callers pay `Display` formatting only when tracing.
    pub fn arg(mut self, key: &str, value: impl std::fmt::Display) -> Span {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key.to_string(), value.to_string()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end_us = inner.collector.now_us();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // LIFO in the common case; tolerate out-of-order drops.
            if s.last() == Some(&inner.id) {
                s.pop();
            } else {
                s.retain(|&x| x != inner.id);
            }
        });
        inner.collector.record_span(SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name.into_owned(),
            track: inner.track.into_owned(),
            start_us: inner.start_us,
            dur_us: (end_us - inner.start_us).max(0.0),
            args: inner.args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recording() -> Arc<dyn Collector> {
        Arc::new(MemoryCollector::new())
    }

    #[test]
    fn null_collector_spans_are_free() {
        let c: Arc<dyn Collector> = Arc::new(NullCollector);
        let s = Span::start(&c, "t", "a");
        assert!(!s.is_recording());
        drop(s.arg("k", 1));
        assert!(c.spans().is_empty());
    }

    #[test]
    fn spans_record_on_drop_with_args() {
        let c = recording();
        {
            let _s = Span::start(&c, "serve", "batch").arg("index", 7);
        }
        let spans = c.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "batch");
        assert_eq!(spans[0].track, "serve");
        assert_eq!(spans[0].args, vec![("index".to_string(), "7".to_string())]);
        assert!(spans[0].dur_us >= 0.0);
    }

    #[test]
    fn nesting_links_parents() {
        let c = recording();
        {
            let _outer = Span::start(&c, "t", "outer");
            {
                let _inner = Span::start(&c, "t", "inner");
            }
        }
        let spans = c.spans();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        // Inner finished first, so it was recorded first.
        assert_eq!(spans[0].name, "inner");
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let c = recording();
        {
            let _p = Span::start(&c, "t", "p");
            let a = Span::start(&c, "t", "a");
            drop(a);
            let b = Span::start(&c, "t", "b");
            drop(b);
        }
        let spans = c.spans();
        let p = spans.iter().find(|s| s.name == "p").unwrap();
        for name in ["a", "b"] {
            let s = spans.iter().find(|s| s.name == name).unwrap();
            assert_eq!(s.parent, Some(p.id));
        }
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_the_stack() {
        let c = recording();
        let p = Span::start(&c, "t", "p");
        let q = Span::start(&c, "t", "q");
        drop(p); // dropped before its child
        {
            let _r = Span::start(&c, "t", "r");
        }
        drop(q);
        let spans = c.spans();
        let q_id = spans.iter().find(|s| s.name == "q").unwrap().id;
        let r = spans.iter().find(|s| s.name == "r").unwrap();
        assert_eq!(r.parent, Some(q_id));
    }

    #[test]
    fn events_record_timestamps() {
        let c = recording();
        c.record_event(EventRecord {
            name: "retry".to_string(),
            track: "serve".to_string(),
            ts_us: c.now_us(),
            args: vec![("attempt".to_string(), "1".to_string())],
        });
        assert_eq!(c.events().len(), 1);
    }
}
