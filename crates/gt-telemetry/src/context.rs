//! Request-scoped causal tracing: deterministic trace contexts and span
//! trees.
//!
//! Aggregates (histograms, schedule profiles) say *that* p99 moved; a
//! [`RequestTrace`] says *why request #4711 was slow*: one span tree per
//! admitted request decomposing its life into queue-wait / S / R / K / T /
//! transfer / kernel / stall / backoff segments. Identities are derived
//! purely from `(seed, request_index)` through splitmix64 — never from
//! wall-clock or randomness — so two runs of the same workload produce
//! bit-identical trace ids at any `GT_THREADS` width, and a trace exported
//! from a recovered process matches the one the crashed process would have
//! written.

use crate::json::{obj, Json, ToJson};
use crate::trace::Trace;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The identity a request carries through Gateway → Supervisor → prepro /
/// DES: a trace id plus the id of the span acting as current parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace identity, shared by every span of the request.
    pub trace_id: u64,
    /// Span the next child attaches to.
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Root context for a request: `trace_id` hashes `(seed, request)`,
    /// the root span id hashes the trace id. Pure — no clock, no RNG.
    pub fn for_request(seed: u64, request_index: usize) -> TraceContext {
        let trace_id = splitmix64(splitmix64(seed) ^ (request_index as u64));
        TraceContext {
            trace_id,
            parent_span_id: splitmix64(trace_id),
        }
    }

    /// The deterministic id of the `n`-th span minted under this trace.
    pub fn span_id(&self, n: usize) -> u64 {
        splitmix64(self.trace_id ^ splitmix64(n as u64 + 1))
    }

    /// A child context parented at `span_id`.
    pub fn child(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span_id: span_id,
        }
    }
}

/// What a traced segment measures — the causal vocabulary of the S/R/K/T
/// pipeline plus the serving layer around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Whole-request envelope (arrival → resolution).
    Request,
    /// Time waiting in the admission queue before service started.
    QueueWait,
    /// Neighborhood sampling (S).
    Sampling,
    /// Vertex reindexing (R).
    Reindex,
    /// Feature lookup (K).
    Lookup,
    /// Host→device transfer (T).
    Transfer,
    /// GPU kernel execution (forward/backward/optimizer).
    Kernel,
    /// Injected serving stall (virtual time, `FaultKind::ServeDelay`).
    Stall,
    /// Retry backoff the supervisor paid.
    Backoff,
}

impl SegmentKind {
    /// Stable kebab-case label used in span names and dump JSON.
    pub fn label(&self) -> &'static str {
        match self {
            SegmentKind::Request => "request",
            SegmentKind::QueueWait => "queue-wait",
            SegmentKind::Sampling => "S",
            SegmentKind::Reindex => "R",
            SegmentKind::Lookup => "K",
            SegmentKind::Transfer => "T",
            SegmentKind::Kernel => "kernel",
            SegmentKind::Stall => "stall",
            SegmentKind::Backoff => "backoff",
        }
    }

    /// The Chrome-trace track this segment renders on.
    pub fn track(&self) -> &'static str {
        match self {
            SegmentKind::Request | SegmentKind::QueueWait => "request",
            SegmentKind::Sampling | SegmentKind::Reindex | SegmentKind::Lookup => "core",
            SegmentKind::Transfer => "PCIe",
            SegmentKind::Kernel => "GPU",
            SegmentKind::Stall | SegmentKind::Backoff => "serve",
        }
    }
}

/// One span of a request's tree, in DES virtual microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Deterministic span id (see [`TraceContext::span_id`]).
    pub span_id: u64,
    /// Parent span id (`None` for the request root).
    pub parent: Option<u64>,
    /// What the segment measures.
    pub kind: SegmentKind,
    /// Display name (e.g. `"S"`, `"request #12"`).
    pub name: String,
    /// Start, virtual µs.
    pub start_us: f64,
    /// Duration, virtual µs.
    pub dur_us: f64,
}

/// A request's full causal record: its span tree plus how it resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Trace id (hashes `(seed, request_index)`).
    pub trace_id: u64,
    /// Submission index of the request.
    pub request_index: usize,
    /// Tenant the request was submitted for (`None` when the gateway runs
    /// without multi-tenant admission).
    pub tenant: Option<usize>,
    /// Supervisor batch index actually served (`None` for shed requests —
    /// they never reached the supervisor or the journal).
    pub batch_index: Option<usize>,
    /// Stable outcome label (`succeeded`, `shed`, ...).
    pub outcome: String,
    /// Exact outcome JSON (the same bytes the journal records), for
    /// reconciliation against the write-ahead outcome stream.
    pub outcome_json: String,
    /// Arrival at the gateway, virtual µs.
    pub arrival_us: f64,
    /// Resolution time, virtual µs.
    pub done_us: f64,
    /// The span tree, root first.
    pub spans: Vec<TraceSpan>,
}

impl RequestTrace {
    /// Root span id, when the tree is non-empty.
    pub fn root_span(&self) -> Option<u64> {
        self.spans.first().map(|s| s.span_id)
    }

    /// End-to-end latency (arrival → resolution), virtual µs.
    pub fn latency_us(&self) -> f64 {
        self.done_us - self.arrival_us
    }

    /// Drop every non-root span (tail sampling demotion): the request stays
    /// visible — and reconcilable against the journal — but its tree costs
    /// one span.
    pub fn demote_to_root(&mut self) {
        self.spans.truncate(1);
    }

    /// Render the span tree onto `trace`, one slice per span on its
    /// segment's track, with Perfetto flow arrows linking each parent span
    /// to each of its children (the child's span id names the flow).
    pub fn render(&self, trace: &mut Trace) {
        for s in &self.spans {
            let mut args: Vec<(String, Json)> = vec![
                ("trace_id".to_string(), self.trace_id.into()),
                ("span_id".to_string(), s.span_id.into()),
                ("request".to_string(), Json::from(self.request_index as u64)),
                ("segment".to_string(), s.kind.label().into()),
            ];
            if let Some(p) = s.parent {
                args.push(("parent_span_id".to_string(), p.into()));
            }
            if s.parent.is_none() {
                args.push(("outcome".to_string(), self.outcome.as_str().into()));
            }
            trace.duration(
                s.kind.track(),
                s.name.clone(),
                "request",
                s.start_us,
                s.dur_us,
                args,
            );
        }
        // Flow arrows: one start at the parent's slice, one finish at the
        // child's, both named by the child span id, so Perfetto draws the
        // causal edge across tracks.
        for s in &self.spans {
            let Some(parent_id) = s.parent else { continue };
            let Some(parent) = self.spans.iter().find(|p| p.span_id == parent_id) else {
                continue;
            };
            trace.flow_start(
                parent.kind.track(),
                s.name.clone(),
                parent.start_us,
                s.span_id,
            );
            trace.flow_finish(s.kind.track(), s.name.clone(), s.start_us, s.span_id);
        }
    }
}

impl ToJson for TraceSpan {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("span_id", self.span_id.into()),
            ("kind", self.kind.label().into()),
            ("name", self.name.as_str().into()),
            ("start_us", self.start_us.into()),
            ("dur_us", self.dur_us.into()),
        ];
        if let Some(p) = self.parent {
            pairs.push(("parent", p.into()));
        }
        obj(pairs)
    }
}

impl ToJson for RequestTrace {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("trace_id", self.trace_id.into()),
            ("request", Json::from(self.request_index as u64)),
            (
                "batch_index",
                match self.batch_index {
                    Some(b) => Json::from(b as u64),
                    None => Json::Null,
                },
            ),
        ];
        // Emitted only under multi-tenant admission, so single-tenant dumps
        // are byte-identical to what they were before tenancy existed.
        if let Some(t) = self.tenant {
            pairs.push(("tenant", Json::from(t as u64)));
        }
        pairs.extend([
            ("outcome", self.outcome.as_str().into()),
            ("outcome_json", self.outcome_json.as_str().into()),
            ("arrival_us", self.arrival_us.into()),
            ("done_us", self.done_us.into()),
            (
                "spans",
                Json::Arr(self.spans.iter().map(|s| s.to_json()).collect()),
            ),
        ]);
        obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_are_deterministic_and_distinct() {
        let a = TraceContext::for_request(42, 0);
        assert_eq!(a, TraceContext::for_request(42, 0));
        let b = TraceContext::for_request(42, 1);
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(TraceContext::for_request(43, 0).trace_id, a.trace_id);
        // Span ids are stable per mint index and distinct across indices.
        assert_eq!(a.span_id(3), a.span_id(3));
        assert_ne!(a.span_id(3), a.span_id(4));
        let child = a.child(a.span_id(1));
        assert_eq!(child.trace_id, a.trace_id);
        assert_eq!(child.parent_span_id, a.span_id(1));
    }

    fn two_span_trace() -> RequestTrace {
        let ctx = TraceContext::for_request(7, 12);
        let root = ctx.parent_span_id;
        let child = ctx.span_id(0);
        RequestTrace {
            trace_id: ctx.trace_id,
            request_index: 12,
            tenant: None,
            batch_index: Some(9),
            outcome: "succeeded".to_string(),
            outcome_json: "{\"outcome\":\"succeeded\"}".to_string(),
            arrival_us: 100.0,
            done_us: 250.0,
            spans: vec![
                TraceSpan {
                    span_id: root,
                    parent: None,
                    kind: SegmentKind::Request,
                    name: "request #12".to_string(),
                    start_us: 100.0,
                    dur_us: 150.0,
                },
                TraceSpan {
                    span_id: child,
                    parent: Some(root),
                    kind: SegmentKind::Sampling,
                    name: "S".to_string(),
                    start_us: 110.0,
                    dur_us: 40.0,
                },
            ],
        }
    }

    #[test]
    fn render_links_parent_to_child_with_flows() {
        let rt = two_span_trace();
        let mut trace = Trace::new("requests");
        rt.render(&mut trace);
        // Two slices + one flow start + one flow finish.
        assert_eq!(trace.events.len(), 4);
        let flows: Vec<_> = trace.events.iter().filter(|e| e.flow.is_some()).collect();
        assert_eq!(flows.len(), 2);
        let child_id = rt.spans[1].span_id;
        assert!(flows
            .iter()
            .all(|e| e.flow.as_ref().unwrap().id == child_id));
        assert_eq!(flows[0].track, "request"); // start at the parent
        assert_eq!(flows[1].track, "core"); // finish at the child
    }

    #[test]
    fn demotion_keeps_the_root_and_the_outcome() {
        let mut rt = two_span_trace();
        rt.demote_to_root();
        assert_eq!(rt.spans.len(), 1);
        assert_eq!(rt.spans[0].kind, SegmentKind::Request);
        assert!((rt.latency_us() - 150.0).abs() < 1e-12);
        let j = rt.to_json();
        assert_eq!(j.get("outcome").unwrap().as_str(), Some("succeeded"));
        assert_eq!(j.get("batch_index").unwrap().as_f64(), Some(9.0));
    }
}
