//! Deterministic SLO engine: declarative latency/availability objectives
//! evaluated in DES virtual time with multi-window burn-rate alerting.
//!
//! An [`SloSpec`] declares what "good" means (a latency threshold, and
//! shed/failed requests are always bad) and how much badness the error
//! budget tolerates (`objective`, e.g. 0.9 = 10% budget). The engine
//! classifies every completion, maintains sliding windows over *virtual*
//! microseconds — the same DES timeline that prices batches — and fires a
//! breach when both a long and a short window burn the budget faster than
//! `factor`× (the classic multi-window rule: the long window proves the
//! problem is real, the short window proves it is still happening).
//!
//! Because the clock is virtual and the inputs are modeled, the entire
//! alert stream is a pure function of the workload and fault plan:
//! bit-identical across machines, runs, and `GT_THREADS` widths. That is
//! what makes SLO breaches assertable in CI rather than observable in
//! production only.

use std::collections::VecDeque;

use crate::json::{obj, Json, ToJson};
use crate::Telemetry;

/// One multi-window burn-rate alerting rule.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnRule {
    /// Stable label (`page`, `ticket`, ...) used in events and metrics.
    pub label: &'static str,
    /// Long window length, virtual µs.
    pub long_us: f64,
    /// Short window length, virtual µs.
    pub short_us: f64,
    /// Burn-rate factor both windows must exceed to fire.
    pub factor: f64,
}

/// A declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name (shown in events, `/healthz`, and dumps).
    pub name: &'static str,
    /// A completion slower than this is bad, virtual µs.
    pub latency_threshold_us: f64,
    /// Fraction of requests that must be good (0.9 = 10% error budget).
    pub objective: f64,
    /// The alerting rules, evaluated per completion.
    pub rules: Vec<BurnRule>,
}

impl SloSpec {
    /// A serving-latency SLO: `objective` of requests must complete (not
    /// shed, not quarantined) within `threshold_us`, with a paging rule
    /// (short windows, high factor) and a ticketing rule (long windows,
    /// low factor).
    pub fn latency(threshold_us: f64, objective: f64) -> SloSpec {
        assert!(
            (0.0..1.0).contains(&objective),
            "objective must be in [0, 1)"
        );
        SloSpec {
            name: "serve-latency",
            latency_threshold_us: threshold_us,
            objective,
            rules: vec![
                BurnRule {
                    label: "page",
                    long_us: 400_000.0,
                    short_us: 50_000.0,
                    factor: 2.0,
                },
                BurnRule {
                    label: "ticket",
                    long_us: 2_000_000.0,
                    short_us: 250_000.0,
                    factor: 1.0,
                },
            ],
        }
    }
}

/// One rule transition: a breach firing or clearing at a virtual instant.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// The rule that transitioned.
    pub rule: &'static str,
    /// True when the breach fired, false when it cleared.
    pub firing: bool,
    /// Virtual timestamp of the transition.
    pub at_us: f64,
    /// Burn rate over the rule's long window at the transition.
    pub burn_long: f64,
    /// Burn rate over the rule's short window at the transition.
    pub burn_short: f64,
}

impl ToJson for SloAlert {
    fn to_json(&self) -> Json {
        obj([
            ("rule", self.rule.into()),
            ("firing", Json::Bool(self.firing)),
            ("at_us", self.at_us.into()),
            ("burn_long", self.burn_long.into()),
            ("burn_short", self.burn_short.into()),
        ])
    }
}

/// The engine: feed it every completion via [`SloEngine::record`]; it
/// returns the rule transitions that completion caused and keeps
/// `gt_slo_*` metrics current on the telemetry handle it was built with.
#[derive(Debug)]
pub struct SloEngine {
    spec: SloSpec,
    telemetry: Telemetry,
    /// `(done_us, good)` per completion, oldest first; trimmed to the
    /// longest window on every record.
    window: VecDeque<(f64, bool)>,
    /// Per-rule firing state, parallel to `spec.rules`.
    firing: Vec<bool>,
    breaches: u64,
}

impl SloEngine {
    /// An engine over `spec`, exporting metrics through `telemetry`.
    pub fn new(spec: SloSpec, telemetry: Telemetry) -> SloEngine {
        let firing = vec![false; spec.rules.len()];
        telemetry
            .gauge("gt_slo_ok", "1 while no SLO rule is firing, else 0")
            .set(1.0);
        SloEngine {
            spec,
            telemetry,
            window: VecDeque::new(),
            firing,
            breaches: 0,
        }
    }

    /// The spec the engine evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// True while any rule is firing.
    pub fn breached(&self) -> bool {
        self.firing.iter().any(|&f| f)
    }

    /// Total breach transitions so far.
    pub fn breach_count(&self) -> u64 {
        self.breaches
    }

    /// Stable state label for `/healthz` and dumps: `ok`, or
    /// `breach:<rule>` naming the most urgent firing rule.
    pub fn state(&self) -> String {
        match self
            .firing
            .iter()
            .position(|&f| f)
            .map(|i| self.spec.rules[i].label)
        {
            Some(rule) => format!("breach:{rule}"),
            None => "ok".to_string(),
        }
    }

    /// Classify one completion at virtual time `done_us` and evaluate
    /// every rule. `ok` is whether the request resolved usefully (trained;
    /// shed and quarantined requests pass `false`). Timestamps must be
    /// monotone — the virtual clock never runs backwards.
    pub fn record(&mut self, done_us: f64, latency_us: f64, ok: bool) -> Vec<SloAlert> {
        if let Some(&(last, _)) = self.window.back() {
            assert!(
                done_us >= last,
                "SLO clock must be monotone: {done_us} < {last}"
            );
        }
        let good = ok && latency_us <= self.spec.latency_threshold_us;
        self.window.push_back((done_us, good));
        let longest = self
            .spec
            .rules
            .iter()
            .map(|r| r.long_us)
            .fold(0.0, f64::max);
        while let Some(&(t, _)) = self.window.front() {
            if done_us - t > longest {
                self.window.pop_front();
            } else {
                break;
            }
        }

        self.telemetry
            .counter("gt_slo_requests_total", "Completions classified by the SLO")
            .inc();
        if !good {
            self.telemetry
                .counter("gt_slo_bad_total", "Completions outside the SLO")
                .inc();
        }

        let budget = 1.0 - self.spec.objective;
        let mut alerts = Vec::new();
        for i in 0..self.spec.rules.len() {
            let rule = self.spec.rules[i].clone();
            let burn_long = self.burn(done_us, rule.long_us, budget);
            let burn_short = self.burn(done_us, rule.short_us, budget);
            let firing = burn_long >= rule.factor && burn_short >= rule.factor;
            if firing != self.firing[i] {
                self.firing[i] = firing;
                if firing {
                    self.breaches += 1;
                    self.telemetry
                        .counter("gt_slo_breaches_total", "SLO burn-rate breach transitions")
                        .inc();
                }
                self.telemetry.event(
                    "slo",
                    if firing { "slo_breach" } else { "slo_clear" },
                    &[
                        ("slo", &self.spec.name),
                        ("rule", &rule.label),
                        ("at_us", &format!("{at:.0}", at = done_us)),
                        ("burn_long", &format!("{burn_long:.3}")),
                        ("burn_short", &format!("{burn_short:.3}")),
                    ],
                );
                alerts.push(SloAlert {
                    rule: rule.label,
                    firing,
                    at_us: done_us,
                    burn_long,
                    burn_short,
                });
            }
        }
        self.telemetry
            .gauge("gt_slo_ok", "1 while no SLO rule is firing, else 0")
            .set(if self.breached() { 0.0 } else { 1.0 });
        alerts
    }

    /// Burn rate over `[now - window_us, now]`: bad fraction divided by the
    /// error budget. 0 when the window holds no completions.
    fn burn(&self, now_us: f64, window_us: f64, budget: f64) -> f64 {
        let mut total = 0u64;
        let mut bad = 0u64;
        for &(t, good) in self.window.iter().rev() {
            if now_us - t > window_us {
                break;
            }
            total += 1;
            if !good {
                bad += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        let frac = bad as f64 / total as f64;
        if budget <= 0.0 {
            if frac > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            frac / budget
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(objective: f64) -> SloEngine {
        SloEngine::new(
            SloSpec {
                name: "test",
                latency_threshold_us: 1000.0,
                objective,
                rules: vec![BurnRule {
                    label: "page",
                    long_us: 10_000.0,
                    short_us: 2_000.0,
                    factor: 2.0,
                }],
            },
            Telemetry::recording(),
        )
    }

    #[test]
    fn all_good_never_breaches() {
        let mut e = engine(0.9);
        for i in 0..100 {
            let alerts = e.record(i as f64 * 100.0, 500.0, true);
            assert!(alerts.is_empty());
        }
        assert!(!e.breached());
        assert_eq!(e.state(), "ok");
        assert_eq!(e.breach_count(), 0);
    }

    #[test]
    fn sustained_badness_fires_then_clears() {
        let mut e = engine(0.9);
        let mut t = 0.0;
        // Healthy baseline.
        for _ in 0..50 {
            t += 100.0;
            e.record(t, 500.0, true);
        }
        // Sustained latency violations: burn = 1.0/0.1 = 10 ≥ 2 in both
        // windows once the bad run dominates them.
        let mut fired = false;
        for _ in 0..200 {
            t += 100.0;
            for a in e.record(t, 5000.0, true) {
                if a.firing {
                    fired = true;
                    assert!(a.burn_long >= 2.0 && a.burn_short >= 2.0);
                }
            }
        }
        assert!(fired, "sustained violations must breach");
        assert!(e.breached());
        assert_eq!(e.state(), "breach:page");
        // Recovery: good completions push the windows back under factor.
        let mut cleared = false;
        for _ in 0..400 {
            t += 100.0;
            for a in e.record(t, 500.0, true) {
                if !a.firing {
                    cleared = true;
                }
            }
        }
        assert!(cleared, "recovery must clear the breach");
        assert!(!e.breached());
        assert_eq!(e.state(), "ok");
        assert_eq!(e.breach_count(), 1);
    }

    #[test]
    fn shed_requests_are_bad_regardless_of_latency() {
        let mut e = engine(0.5);
        let mut transitions = Vec::new();
        for i in 0..100 {
            transitions.extend(e.record(i as f64 * 50.0, 0.0, false));
        }
        assert!(e.breached());
        assert!(transitions.iter().any(|a| a.firing));
        let snap = e.telemetry.snapshot();
        assert_eq!(snap.counter("gt_slo_requests_total"), 100);
        assert_eq!(snap.counter("gt_slo_bad_total"), 100);
        assert_eq!(snap.gauge("gt_slo_ok"), Some(0.0));
        assert!(snap.counter("gt_slo_breaches_total") >= 1);
    }

    /// The alert stream is a pure function of the completion stream.
    #[test]
    fn alert_stream_is_deterministic() {
        let run = || {
            let mut e = engine(0.9);
            let mut alerts = Vec::new();
            for i in 0..300u64 {
                let bad = (100..200).contains(&i);
                let latency = if bad { 9000.0 } else { 400.0 };
                alerts.extend(e.record(i as f64 * 73.0, latency, true));
            }
            alerts
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_clock_rejected() {
        let mut e = engine(0.9);
        e.record(100.0, 10.0, true);
        e.record(50.0, 10.0, true);
    }

    #[test]
    fn zero_budget_objective_is_rejected() {
        // objective must be < 1; 1.0 would make the budget zero.
        let r = std::panic::catch_unwind(|| SloSpec::latency(1000.0, 1.0));
        assert!(r.is_err());
    }
}
