//! Flight recorder: a fixed-size ring of recent [`RequestTrace`]s.
//!
//! Aircraft keep their last minutes of telemetry in a crash-survivable
//! loop; this is the serving stack's equivalent. The ring holds the most
//! recent request span trees, cheap to append and bounded in memory, and
//! [`FlightRecorder::dump`] freezes them into one JSON artifact when
//! something goes wrong — an SLO breach, an injected fault, a chaos-oracle
//! violation, or a crash site.
//!
//! The dump is a valid Chrome trace-event document (it opens directly in
//! Perfetto) carrying extra top-level `gt_*` keys: the dump reason, the
//! schema version, and a per-request outcome table whose `outcome_json`
//! strings are byte-identical to the write-ahead journal's records — that
//! is what lets a dump be reconciled exactly against the journal's
//! `BatchOutcome` stream.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::context::RequestTrace;
use crate::json::{obj, parse, Json, JsonError, ToJson};
use crate::trace::{write_chrome_json, Trace};

/// Version of the dump's `gt_flight_schema` field.
pub const FLIGHT_SCHEMA_VERSION: u64 = 1;

/// Fixed-capacity ring buffer of recent request traces.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<RequestTrace>>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` requests.
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a trace, evicting the oldest when full.
    pub fn record(&self, trace: RequestTrace) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Copy of the retained traces, oldest first.
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Freeze the ring into a dump artifact: a Chrome trace-event JSON
    /// document (Perfetto-loadable) with `gt_flight_*` metadata on top.
    pub fn dump(&self, reason: &str) -> String {
        let traces = self.traces();
        let mut trace = Trace::new("flight recorder");
        for rt in &traces {
            rt.render(&mut trace);
        }
        let chrome = write_chrome_json(&[&trace]);
        // write_chrome_json returns a complete `{...}` object; splice the
        // gt_* keys in by re-parsing (the in-tree parser is strict and the
        // document is ours, so this cannot fail).
        let mut doc = match parse(&chrome) {
            Ok(Json::Obj(pairs)) => pairs,
            _ => unreachable!("write_chrome_json emits a JSON object"),
        };
        doc.push((
            "gt_flight_schema".to_string(),
            Json::from(FLIGHT_SCHEMA_VERSION),
        ));
        doc.push(("gt_flight_reason".to_string(), Json::from(reason)));
        doc.push((
            "gt_flight_requests".to_string(),
            Json::Arr(traces.iter().map(|t| t.to_json()).collect()),
        ));
        Json::Obj(doc).to_json_string()
    }
}

/// The reconciliation view of a dump: `(batch_index, outcome_json)` for
/// every retained request that reached the supervisor, in batch order —
/// directly comparable against the journal's batch records.
pub fn dump_outcomes(dump: &str) -> Result<Vec<(usize, String)>, JsonError> {
    let doc = parse(dump)?;
    let requests = doc
        .get("gt_flight_requests")
        .and_then(|r| r.as_arr())
        .ok_or(JsonError {
            message: "missing gt_flight_requests".to_string(),
            offset: 0,
        })?;
    let mut out: Vec<(usize, String)> = requests
        .iter()
        .filter_map(|r| {
            let batch = r.get("batch_index")?.as_f64()? as usize;
            let outcome = r.get("outcome_json")?.as_str()?.to_string();
            Some((batch, outcome))
        })
        .collect();
    out.sort_by_key(|(b, _)| *b);
    Ok(out)
}

impl ToJson for FlightRecorder {
    fn to_json(&self) -> Json {
        obj([
            ("capacity", Json::from(self.capacity as u64)),
            (
                "traces",
                Json::Arr(self.traces().iter().map(|t| t.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SegmentKind, TraceContext, TraceSpan};
    use crate::trace::from_chrome_json;

    fn trace(request_index: usize) -> RequestTrace {
        let ctx = TraceContext::for_request(1, request_index);
        RequestTrace {
            trace_id: ctx.trace_id,
            request_index,
            tenant: None,
            batch_index: Some(request_index),
            outcome: "succeeded".to_string(),
            outcome_json: "{\"outcome\":\"succeeded\"}".to_string(),
            arrival_us: request_index as f64 * 10.0,
            done_us: request_index as f64 * 10.0 + 5.0,
            spans: vec![TraceSpan {
                span_id: ctx.parent_span_id,
                parent: None,
                kind: SegmentKind::Request,
                name: format!("request #{request_index}"),
                start_us: request_index as f64 * 10.0,
                dur_us: 5.0,
            }],
        }
    }

    /// Ring wraparound: capacity is never exceeded, eviction is exactly
    /// FIFO, and the retained window is the most recent one — through
    /// several complete wraps.
    #[test]
    fn wraparound_keeps_the_newest_window() {
        let rec = FlightRecorder::new(4);
        assert!(rec.is_empty());
        for i in 0..11 {
            rec.record(trace(i));
            assert!(rec.len() <= 4, "capacity exceeded at insert {i}");
            let got: Vec<usize> = rec.traces().iter().map(|t| t.request_index).collect();
            let want: Vec<usize> = (i.saturating_sub(3)..=i).collect();
            assert_eq!(got, want, "after insert {i}");
        }
        assert_eq!(rec.len(), 4);
    }

    #[test]
    fn exactly_at_capacity_no_eviction() {
        let rec = FlightRecorder::new(3);
        for i in 0..3 {
            rec.record(trace(i));
        }
        assert_eq!(rec.len(), 3);
        let got: Vec<usize> = rec.traces().iter().map(|t| t.request_index).collect();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn dump_is_perfetto_loadable_and_carries_metadata() {
        let rec = FlightRecorder::new(8);
        for i in 0..3 {
            rec.record(trace(i));
        }
        let dump = rec.dump("slo-breach:latency");
        // Perfetto round-trip: the dump parses as a Chrome trace document.
        let traces = from_chrome_json(&dump).unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].process, "flight recorder");
        assert_eq!(traces[0].events.len(), 3);
        // Metadata survives alongside.
        let doc = parse(&dump).unwrap();
        assert_eq!(
            doc.get("gt_flight_reason").unwrap().as_str(),
            Some("slo-breach:latency")
        );
        assert_eq!(
            doc.get("gt_flight_schema").unwrap().as_f64(),
            Some(FLIGHT_SCHEMA_VERSION as f64)
        );
        let outcomes = dump_outcomes(&dump).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].0, 0);
        assert!(outcomes.iter().all(|(_, o)| o.contains("succeeded")));
    }

    #[test]
    fn dump_outcomes_skips_shed_requests() {
        let rec = FlightRecorder::new(4);
        let mut shed = trace(5);
        shed.batch_index = None;
        shed.outcome = "shed".to_string();
        rec.record(trace(0));
        rec.record(shed);
        let outcomes = dump_outcomes(&rec.dump("test")).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].0, 0);
    }
}
