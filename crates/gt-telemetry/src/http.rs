//! A zero-dependency metrics endpoint: `GET /metrics` renders the
//! Prometheus exposition of a [`Telemetry`] registry, `GET /healthz`
//! answers `ok`. Built directly on `std::net::TcpListener` because the
//! workspace builds offline — no hyper, no tokio, one accept thread.
//!
//! The server is deliberately minimal: it parses only the request line
//! (method + path), answers one request per connection, and closes. That
//! is all a Prometheus scraper or a load-balancer health check needs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{prometheus, Telemetry};

/// A background scrape endpoint over a [`Telemetry`] handle.
///
/// Bind with [`MetricsServer::start`]; port 0 picks an ephemeral port
/// (readable via [`MetricsServer::addr`]). Dropping the server shuts the
/// accept loop down and joins the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `0.0.0.0:port` and serve `telemetry`'s registry until dropped
    /// or [`shutdown`](MetricsServer::shutdown). Port 0 binds an ephemeral
    /// port.
    pub fn start(port: u16, telemetry: Telemetry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(("0.0.0.0", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gt-metrics-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // A stuck client must not wedge the scrape loop.
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                        let _ = serve_one(stream, &telemetry);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves the actual port when started with 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Stop the accept loop and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // `incoming()` blocks in accept(); a throwaway connection to
        // ourselves unblocks it so the thread can observe the stop flag.
        let _ = TcpStream::connect(("127.0.0.1", self.addr.port()));
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Answer a single HTTP/1.x request on `stream`. Only the request line is
/// interpreted; headers and body are drained implicitly by closing.
fn serve_one(mut stream: TcpStream, telemetry: &Telemetry) -> std::io::Result<()> {
    // Read until the header terminator: one read() can return a partial
    // request (the client may write in several syscalls), and answering a
    // partial request closes the socket under the client's feet.
    let mut buf = [0u8; 1024];
    let mut n = 0;
    while n < buf.len() && !buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut buf[n..])? {
            0 => break,
            k => n += k,
        }
    }
    let request = String::from_utf8_lossy(&buf[..n]);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            // The exposition format version Prometheus expects.
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus::render(&telemetry.snapshot()),
        ),
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        ),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_healthz_then_shuts_down() {
        let telemetry = Telemetry::recording();
        telemetry
            .counter("gt_http_smoke_total", "Smoke-test counter")
            .add(7);
        let server = MetricsServer::start(0, telemetry).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0, "ephemeral port not resolved");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("version=0.0.4"), "{head}");
        assert!(body.contains("gt_http_smoke_total 7"), "{body}");

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
        // The port is released: a fresh connection must fail (or be
        // refused) rather than be served.
        assert!(TcpStream::connect(addr).is_err());
    }
}
