//! A zero-dependency metrics endpoint: `GET /metrics` renders the
//! Prometheus exposition of a [`Telemetry`] registry, `GET /healthz`
//! answers `ok` plus uptime and the last SLO state, and callers can
//! publish extra plain-text pages (the cluster bench mounts its fleet
//! health report at `/fleetz` via [`MetricsServer::set_page`]). Built
//! directly on `std::net::TcpListener` because the workspace builds
//! offline — no hyper, no tokio, one accept thread.
//!
//! The server is deliberately minimal: it parses only the request line
//! (method + path), answers one request per connection, and closes. That
//! is all a Prometheus scraper or a load-balancer health check needs.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{prometheus, Telemetry};

/// A background scrape endpoint over a [`Telemetry`] handle.
///
/// Bind with [`MetricsServer::start`]; port 0 picks an ephemeral port
/// (readable via [`MetricsServer::addr`]). Dropping the server shuts the
/// accept loop down and joins the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    pages: Arc<Mutex<BTreeMap<String, String>>>,
}

impl MetricsServer {
    /// Bind `0.0.0.0:port` and serve `telemetry`'s registry until dropped
    /// or [`shutdown`](MetricsServer::shutdown). Port 0 binds an ephemeral
    /// port.
    pub fn start(port: u16, telemetry: Telemetry) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(("0.0.0.0", port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let pages: Arc<Mutex<BTreeMap<String, String>>> = Arc::default();
        let thread_pages = Arc::clone(&pages);
        // What-am-I-scraping beacon: value 1, identity on labels (the
        // conventional Prometheus `*_info` shape; see docs/telemetry.md
        // §Labels).
        telemetry
            .gauge_with(
                "gt_build_info",
                "Build identity beacon (constant 1)",
                &[
                    ("version", env!("CARGO_PKG_VERSION")),
                    ("flight_schema", "1"),
                    ("exposition", "0.0.4"),
                ],
            )
            .set(1.0);
        let started = std::time::Instant::now();
        let handle = std::thread::Builder::new()
            .name("gt-metrics-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // A stuck client must not wedge the scrape loop;
                        // serve_one additionally enforces an overall
                        // deadline across reads.
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                        let _ = serve_one(stream, &telemetry, started, &thread_pages);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
            pages,
        })
    }

    /// Publish (or replace) a plain-text page at `path` (must start with
    /// `/`). The cluster bench mounts its fleet health report at
    /// `/fleetz`; any path not shadowed by `/metrics` or `/healthz` works.
    pub fn set_page(&self, path: impl Into<String>, body: impl Into<String>) {
        self.pages
            .lock()
            .expect("pages lock")
            .insert(path.into(), body.into());
    }

    /// The bound address (resolves the actual port when started with 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Stop the accept loop and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // `incoming()` blocks in accept(); a throwaway connection to
        // ourselves unblocks it so the thread can observe the stop flag.
        let _ = TcpStream::connect(("127.0.0.1", self.addr.port()));
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The most wall-clock one connection may spend being read. A stalled or
/// slow-dripping client (one byte per read timeout) must not hold the
/// single accept thread hostage — per-read timeouts alone bound each
/// `read()`, not the connection.
const READ_DEADLINE: Duration = Duration::from_secs(2);

/// Answer a single HTTP/1.x request on `stream`. Only the request line is
/// interpreted; headers and body are drained implicitly by closing.
fn serve_one(
    mut stream: TcpStream,
    telemetry: &Telemetry,
    started: std::time::Instant,
    pages: &Mutex<BTreeMap<String, String>>,
) -> std::io::Result<()> {
    // Read until the header terminator: one read() can return a partial
    // request (the client may write in several syscalls), and answering a
    // partial request closes the socket under the client's feet. Reading
    // stops at the overall deadline, EOF, or a full buffer — whatever was
    // received by then is all this request gets to say.
    let start = std::time::Instant::now();
    let mut buf = [0u8; 1024];
    let mut n = 0;
    while n < buf.len() && !buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
        let Some(remaining) = READ_DEADLINE.checked_sub(start.elapsed()) else {
            break;
        };
        let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(10))));
        match stream.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    let request = String::from_utf8_lossy(&buf[..n]);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    // A terminated request line is enough to route on, even when the
    // client never finished (or never sent) its headers. Without one,
    // tell the stalled client why it is being hung up on.
    if !request.contains("\r\n") && !request.contains('\n') {
        let body = "request timeout\n";
        write!(
            stream,
            "HTTP/1.1 408 Request Timeout\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )?;
        return stream.flush();
    }

    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            // The exposition format version Prometheus expects.
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus::render(&telemetry.snapshot()),
        ),
        ("GET", "/healthz") => {
            // First line stays a bare liveness verdict for dumb probes;
            // uptime and the last SLO engine state (the gt_slo_ok gauge,
            // kept current by gt_telemetry::slo::SloEngine) follow.
            let slo = match telemetry.snapshot().gauge("gt_slo_ok") {
                Some(0.0) => "breach",
                Some(_) => "ok",
                None => "none",
            };
            let body = format!("ok\nuptime_s {}\nslo {slo}\n", started.elapsed().as_secs());
            ("200 OK", "text/plain; charset=utf-8", body)
        }
        ("GET", p) => match pages.lock().expect("pages lock").get(p) {
            Some(body) => ("200 OK", "text/plain; charset=utf-8", body.clone()),
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        },
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        ),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_healthz_then_shuts_down() {
        let telemetry = Telemetry::recording();
        telemetry
            .counter("gt_http_smoke_total", "Smoke-test counter")
            .add(7);
        let server = MetricsServer::start(0, telemetry).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0, "ephemeral port not resolved");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("version=0.0.4"), "{head}");
        assert!(body.contains("gt_http_smoke_total 7"), "{body}");
        // The build-info beacon is registered at server start, identity on
        // labels in the conventional `*_info` shape.
        assert!(body.contains("# TYPE gt_build_info gauge"), "{body}");
        assert!(
            body.contains("gt_build_info{exposition=\"0.0.4\",flight_schema=\"1\",version="),
            "{body}"
        );

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.starts_with("ok\n"), "{body}");
        assert!(body.contains("uptime_s "), "{body}");
        // No SLO engine ran on this handle: state is `none`.
        assert!(body.contains("slo none"), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        // Published pages are served (and replaceable) at their path.
        server.set_page("/fleetz", "fleet health: 4 workers\n");
        let (head, body) = get(addr, "/fleetz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "fleet health: 4 workers\n");
        server.set_page("/fleetz", "fleet health: 2 workers\n");
        let (_, body) = get(addr, "/fleetz");
        assert_eq!(body, "fleet health: 2 workers\n");

        server.shutdown();
        // The port is released: a fresh connection must fail (or be
        // refused) rather than be served.
        assert!(TcpStream::connect(addr).is_err());
    }

    /// A request line split across several writes (and never-finished
    /// headers) is still routed: the server reads past partial lines
    /// instead of answering the first fragment.
    #[test]
    fn split_request_line_is_reassembled_and_served() {
        let server = MetricsServer::start(0, Telemetry::recording()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /hea").unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        stream.write_all(b"lthz HTTP/1.1\r\n").unwrap();
        // Headers never finish; the client half-closes instead.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\r\n\r\nok\n"), "{response}");
        server.shutdown();
    }

    /// A client that stalls before completing its request line gets a 408
    /// at the read deadline — and, crucially, does not wedge the accept
    /// loop: a well-behaved scrape right behind it is still served.
    #[test]
    fn stalled_client_gets_408_and_does_not_wedge_the_server() {
        let server = MetricsServer::start(0, Telemetry::recording()).unwrap();
        let addr = server.addr();

        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"GET /met").unwrap(); // no newline, then silence
        stalled.flush().unwrap();

        // Queued behind the stalled connection; must be answered once the
        // deadline expires, not starved forever.
        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.starts_with("ok\n"), "{body}");

        let mut response = String::new();
        stalled.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 408"), "{response}");
        server.shutdown();
    }
}
