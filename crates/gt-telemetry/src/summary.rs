//! Human-readable summary rendering: a metrics table (with p50/p95/p99 for
//! histograms) and an aggregated per-(track, name) span table. Meant for
//! end-of-run console output in the bench runner and examples.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::span::SpanRecord;

/// Render the snapshot as an aligned plain-text table. Labeled series show
/// as `name{k=v,...}` rows.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    for m in &snapshot.metrics {
        let key = if m.labels.is_empty() {
            m.name.clone()
        } else {
            let inner: Vec<String> = m.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{}{{{}}}", m.name, inner.join(","))
        };
        match &m.value {
            MetricValue::Counter(v) => rows.push((key, v.to_string())),
            MetricValue::Gauge(v) => rows.push((key, format!("{v:.4}"))),
            MetricValue::Histogram(h) => {
                let cell = if h.count == 0 {
                    "count=0".to_string()
                } else {
                    format!(
                        "count={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}",
                        h.count,
                        h.mean().unwrap_or(0.0),
                        h.quantile(0.50).unwrap_or(0.0),
                        h.quantile(0.95).unwrap_or(0.0),
                        h.quantile(0.99).unwrap_or(0.0),
                        h.max,
                    )
                };
                rows.push((key, cell));
            }
        }
    }
    table("metric", "value", &rows)
}

/// Aggregate spans by (track, name) and render totals/averages.
pub fn render_spans(spans: &[SpanRecord]) -> String {
    #[derive(Default)]
    struct Agg {
        count: u64,
        total_us: f64,
        max_us: f64,
    }
    let mut by_key: BTreeMap<(String, String), Agg> = BTreeMap::new();
    for s in spans {
        let a = by_key.entry((s.track.clone(), s.name.clone())).or_default();
        a.count += 1;
        a.total_us += s.dur_us;
        a.max_us = a.max_us.max(s.dur_us);
    }
    let rows: Vec<(String, String)> = by_key
        .into_iter()
        .map(|((track, name), a)| {
            (
                format!("{track}/{name}"),
                format!(
                    "count={} total={:.1}us mean={:.1}us max={:.1}us",
                    a.count,
                    a.total_us,
                    a.total_us / a.count as f64,
                    a.max_us
                ),
            )
        })
        .collect();
    table("span (track/name)", "timing", &rows)
}

fn table(key_header: &str, value_header: &str, rows: &[(String, String)]) -> String {
    let key_width = rows
        .iter()
        .map(|(k, _)| k.len())
        .chain([key_header.len()])
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "{key_header:<key_width$}  {value_header}");
    let _ = writeln!(
        out,
        "{}  {}",
        "-".repeat(key_width),
        "-".repeat(value_header.len().max(5))
    );
    for (k, v) in rows {
        let _ = writeln!(out, "{k:<key_width$}  {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Registry};

    #[test]
    fn metrics_table_includes_quantiles() {
        let reg = Registry::new();
        reg.counter("gt_serve_retries_total", "").add(2);
        let h = reg.histogram("gt_batch_e2e_us", "", || {
            Histogram::with_bounds(vec![100.0, 1000.0])
        });
        for v in [50.0, 60.0, 700.0] {
            h.observe(v);
        }
        let text = render(&reg.snapshot());
        assert!(text.contains("gt_serve_retries_total"));
        assert!(text.contains("count=3"));
        assert!(text.contains("p95="));
    }

    #[test]
    fn labeled_series_render_with_label_blocks() {
        let reg = Registry::new();
        reg.counter_with("gt_req_total", "", &[("tenant", "a")])
            .inc();
        reg.counter_with("gt_req_total", "", &[("tenant", "b")])
            .add(2);
        let text = render(&reg.snapshot());
        assert!(text.contains("gt_req_total{tenant=a}"));
        assert!(text.contains("gt_req_total{tenant=b}"));
    }

    #[test]
    fn span_table_aggregates_by_track_and_name() {
        let mk = |name: &str, dur: f64| SpanRecord {
            id: 0,
            parent: None,
            name: name.to_string(),
            track: "serve".to_string(),
            start_us: 0.0,
            dur_us: dur,
            args: vec![],
        };
        let text = render_spans(&[mk("batch", 10.0), mk("batch", 30.0), mk("retry", 5.0)]);
        assert!(text.contains("serve/batch"));
        assert!(text.contains("count=2"));
        assert!(text.contains("mean=20.0us"));
        assert!(text.contains("serve/retry"));
    }
}
