//! gt-telemetry: zero-external-dependency spans, metrics, and trace export
//! for the GraphTensor-RS serving stack.
//!
//! The paper's whole argument is latency decomposition (per-phase
//! breakdowns in Figs 12/16/20, subtask overlap in Fig 13); this crate
//! makes those decompositions observable in the real system:
//!
//! - **Spans** ([`Span`], [`Collector`]): RAII wall-clock regions on named
//!   tracks, nestable, labeled with phase/batch/layer.
//! - **Metrics** ([`Registry`]): counters, gauges, and fixed-bucket
//!   histograms with p50/p95/p99 estimation.
//! - **Exporters**: Chrome trace-event JSON ([`trace`]) loadable in
//!   Perfetto, Prometheus text exposition ([`prometheus`]), and a
//!   human-readable summary table ([`summary`]).
//!
//! The [`Telemetry`] handle bundles one collector with one registry and is
//! what instrumented code carries. [`Telemetry::null`] is the default
//! everywhere: spans skip the clock entirely and metrics still work (they
//! are cheap atomics), so instrumented code paths stay bit-identical to
//! uninstrumented ones — gt-core has a property test pinning that.
//!
//! Everything here is hand-rolled (including the JSON layer in [`json`])
//! because the workspace builds offline with no vendored external crates.

pub mod context;
pub mod http;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod ring;
pub mod slo;
pub mod span;
pub mod summary;
pub mod trace;

use std::sync::{Arc, OnceLock};

pub use context::{RequestTrace, SegmentKind, TraceContext, TraceSpan};
pub use json::{Json, JsonError, ToJson};
pub use metrics::{
    label_set, Counter, Gauge, Histogram, HistogramSnapshot, LabelSet, MetricSnapshot, MetricValue,
    MetricsSnapshot, Registry,
};
pub use ring::{dump_outcomes, FlightRecorder, FLIGHT_SCHEMA_VERSION};
pub use slo::{BurnRule, SloAlert, SloEngine, SloSpec};
pub use span::{Collector, EventRecord, MemoryCollector, NullCollector, Span, SpanRecord};
pub use trace::{from_chrome_json, write_chrome_json, Flow, FlowStep, Trace, TraceEvent};

/// A collector plus a metrics registry; the handle instrumented code holds.
/// Cloning is cheap (two `Arc`s) and clones share all state.
#[derive(Clone)]
pub struct Telemetry {
    collector: Arc<dyn Collector>,
    registry: Arc<Registry>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::null()
    }
}

impl Telemetry {
    /// The no-op handle: spans are free, metrics still count (atomics are
    /// cheap and some callers want counters without tracing). All `null()`
    /// handles share one instance so counters registered through it agree.
    pub fn null() -> Telemetry {
        static NULL: OnceLock<Telemetry> = OnceLock::new();
        NULL.get_or_init(|| Telemetry {
            collector: Arc::new(NullCollector),
            registry: Arc::new(Registry::new()),
        })
        .clone()
    }

    /// A recording handle with a fresh in-memory collector and registry.
    pub fn recording() -> Telemetry {
        Telemetry {
            collector: Arc::new(MemoryCollector::new()),
            registry: Arc::new(Registry::new()),
        }
    }

    /// A handle around a custom collector.
    pub fn with_collector(collector: Arc<dyn Collector>) -> Telemetry {
        Telemetry {
            collector,
            registry: Arc::new(Registry::new()),
        }
    }

    /// Whether spans record anything.
    pub fn enabled(&self) -> bool {
        self.collector.enabled()
    }

    /// Start a span on `track` named `name`. Returns a disabled guard (no
    /// clock read, no allocation) when the collector is off.
    pub fn span(
        &self,
        track: impl Into<std::borrow::Cow<'static, str>>,
        name: impl Into<std::borrow::Cow<'static, str>>,
    ) -> Span {
        Span::start(&self.collector, track, name)
    }

    /// Record an instant event with key/value args. No-op when disabled.
    pub fn event(&self, track: &str, name: &str, args: &[(&str, &dyn std::fmt::Display)]) {
        if !self.collector.enabled() {
            return;
        }
        self.collector.record_event(EventRecord {
            name: name.to_string(),
            track: track.to_string(),
            ts_us: self.collector.now_us(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Get or register a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.registry.counter(name, help)
    }

    /// Get or register one labeled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.registry.counter_with(name, help, labels)
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.registry.gauge(name, help)
    }

    /// Get or register one labeled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.registry.gauge_with(name, help, labels)
    }

    /// Get or register a histogram with default µs latency buckets.
    pub fn histogram_us(&self, name: &str, help: &str) -> Histogram {
        self.registry.histogram_us(name, help)
    }

    /// Get or register one labeled µs-latency histogram series.
    pub fn histogram_us_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.registry.histogram_us_with(name, help, labels)
    }

    /// The underlying registry (for custom-bucket histograms).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Finished spans so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.collector.spans()
    }

    /// Recorded instant events so far.
    pub fn events(&self) -> Vec<EventRecord> {
        self.collector.events()
    }

    /// Freeze all metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Wall-clock spans and events as one Chrome-trace process row.
    pub fn trace(&self, process: &str) -> Trace {
        Trace::from_spans(process, &self.spans(), &self.events())
    }
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// The process-wide default handle, used by call sites with no good way to
/// thread a `Telemetry` through (baseline frameworks, free functions).
/// Defaults to [`Telemetry::null`] until [`set_global`] installs one.
pub fn global() -> Telemetry {
    GLOBAL.get().cloned().unwrap_or_else(Telemetry::null)
}

/// Install the process-wide handle. First caller wins; returns `false` (and
/// changes nothing) if a global was already set.
pub fn set_global(telemetry: Telemetry) -> bool {
    GLOBAL.set(telemetry).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_is_disabled_but_counts() {
        let t = Telemetry::null();
        assert!(!t.enabled());
        let s = t.span("serve", "batch");
        assert!(!s.is_recording());
        drop(s);
        t.event("serve", "retry", &[("attempt", &1)]);
        assert!(t.spans().is_empty());
        assert!(t.events().is_empty());
        // Metrics still function on the null handle.
        let before = t.counter("gt_lib_test_total", "test").get();
        t.counter("gt_lib_test_total", "test").inc();
        assert_eq!(t.counter("gt_lib_test_total", "test").get(), before + 1);
    }

    #[test]
    fn recording_handle_captures_spans_and_events() {
        let t = Telemetry::recording();
        assert!(t.enabled());
        {
            let _s = t.span("train", "train_batch").arg("batch", 0);
        }
        t.event("train", "oom_halving", &[("from", &1024), ("to", &512)]);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.events().len(), 1);
        let trace = t.trace("wall clock");
        assert_eq!(trace.process, "wall clock");
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::recording();
        let t2 = t.clone();
        {
            let _s = t2.span("a", "b");
        }
        t.counter("gt_shared_total", "").inc();
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t2.snapshot().counter("gt_shared_total"), 1);
    }

    #[test]
    fn global_defaults_to_null() {
        // Note: other tests may have installed a global; only assert that
        // repeated calls agree.
        let a = global();
        let b = global();
        assert_eq!(a.enabled(), b.enabled());
    }
}
