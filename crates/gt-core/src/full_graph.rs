//! Full-graph (no-sampling) training — the scenario GNNAdvisor targets and
//! the scalability foil of §VI-A: "GNN frameworks without sampling cannot
//! handle graphs larger than the GPU memory, and therefore have limited
//! scalability".
//!
//! Every layer processes the entire graph; the whole embedding table and
//! adjacency live in device memory for the duration of training. The
//! [`fits_device`] check reproduces the paper's scalability argument
//! analytically at any scale, and [`full_graph_prepro`] actually builds the
//! layers so small graphs can be trained end to end without sampling.

use crate::data::GraphData;
use crate::prepro::{PreproResult, PreproWork};
use gt_graph::VId;
use gt_sample::LayerGraph;
use gt_sim::DeviceSpec;
use gt_tensor::dense::Matrix;
use std::sync::Arc;

/// Device bytes needed to train `data` full-graph: the embedding table,
/// CSR+CSC structures, plus one activation matrix per layer boundary.
pub fn device_bytes_required(data: &GraphData, hidden: usize, layers: usize) -> u64 {
    let v = data.num_vertices() as u64;
    let e = data.graph.num_edges() as u64;
    let features = v * data.feature_dim() as u64 * 4;
    let structures = 2 * (e * 4 + (v + 1) * 4); // CSR + CSC
    let activations = layers as u64 * v * hidden as u64 * 4;
    features + structures + activations
}

/// Does full-graph training of `data` fit the device? (The sampled path
/// always fits — that is the scalability argument for preprocessing.)
pub fn fits_device(data: &GraphData, hidden: usize, layers: usize, dev: &DeviceSpec) -> bool {
    device_bytes_required(data, hidden, layers) <= dev.device_mem_bytes
}

/// Build the full graph as `layers` identical per-layer subgraphs (each
/// hop is the whole adjacency) and the whole embedding table.
pub fn full_graph_prepro(data: &GraphData, layers: usize) -> PreproResult {
    assert!(layers > 0);
    let v = data.num_vertices();
    let (csc, _) = gt_graph::convert::csr_to_csc(&data.graph);
    let layer = Arc::new(LayerGraph {
        csr: data.graph.clone(),
        csc,
        num_dst: v,
        num_src: v,
    });
    let features = Matrix::from_vec(v, data.feature_dim(), data.features.data().to_vec());
    PreproResult {
        layers: (0..layers).map(|_| Arc::clone(&layer)).collect(),
        features,
        new_to_orig: (0..v as VId).collect(),
        boundaries: vec![v; layers + 1],
        // No sampling happened; the "preprocessing" is a single bulk load.
        work: PreproWork {
            hops: Vec::new(),
            batch_nodes: v as u64,
            batch_feature_bytes: v as u64 * data.feature_dim() as u64 * 4,
            total_nodes: v as u64,
            total_feature_bytes: v as u64 * data.feature_dim() as u64 * 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::DeviceSpec;

    #[test]
    fn small_graph_fits_tiny_device() {
        let d = GraphData::synthetic(100, 500, 8, 2, 1);
        assert!(fits_device(&d, 64, 2, &DeviceSpec::tiny()));
    }

    #[test]
    fn heavy_graph_exceeds_tiny_device() {
        // 64 MiB device; 50K × 512-dim features = 100 MiB.
        let d = GraphData::synthetic(50_000, 100_000, 512, 2, 1);
        assert!(!fits_device(&d, 64, 2, &DeviceSpec::tiny()));
    }

    #[test]
    fn paper_scale_livejournal_exceeds_rtx3090() {
        // The scalability claim at paper scale, computed analytically:
        // 5M vertices × 4353 features × 4 B ≈ 87 GB >> 24 GB.
        let v = 5_000_000u64;
        let feat = 4353u64;
        let bytes = v * feat * 4;
        assert!(bytes > DeviceSpec::rtx3090().device_mem_bytes);
    }

    #[test]
    fn full_graph_layers_cover_everything() {
        let d = GraphData::synthetic(80, 400, 8, 2, 3);
        let pr = full_graph_prepro(&d, 2);
        assert_eq!(pr.layers.len(), 2);
        assert_eq!(pr.layers[0].num_dst, 80);
        assert_eq!(pr.layers[0].csr.num_edges(), d.graph.num_edges());
        assert_eq!(pr.features.rows(), 80);
        assert_eq!(pr.boundaries, vec![80, 80, 80]);
    }
}

#[cfg(test)]
mod training_tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::trainer::{GraphTensor, GtVariant};
    use gt_sim::SystemSpec;

    #[test]
    fn full_graph_training_converges() {
        let data = GraphData::synthetic_learnable(120, 900, 8, 2, 3);
        let mut t = GraphTensor::new(
            GtVariant::Base,
            ModelConfig::gcn(2, 8, 2),
            SystemSpec::tiny(),
        );
        t.lr = 0.5;
        let first = t.train_full_graph(&data).loss;
        let mut last = first;
        for _ in 0..20 {
            last = t.train_full_graph(&data).loss;
        }
        assert!(
            last < first,
            "full-graph loss did not drop: {first} → {last}"
        );
    }

    #[test]
    fn oversized_graph_reports_oom() {
        // Shrink the device to 4 MiB so the OOM threshold is cheap to cross:
        // 2K vertices × 768-dim features = 6.1 MiB of table.
        let data = GraphData::synthetic(2_000, 8_000, 768, 2, 3);
        let mut sys = SystemSpec::tiny();
        sys.gpu.device_mem_bytes = 4 << 20;
        let mut t = GraphTensor::new(GtVariant::Base, ModelConfig::gcn(2, 8, 2), sys);
        let r = t.train_full_graph(&data);
        assert!(r.oom.is_some(), "expected device OOM for full-graph table");
        // Sampling-based training of the same data is fine.
        let r2 = crate::framework::Framework::train_batch(&mut t, &data, &[0, 1, 2, 3]);
        assert!(r2.oom.is_none());
    }
}
