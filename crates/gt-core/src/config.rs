//! Model configuration: the `mode` variables of the NAPA programming model
//! (Fig 10 lines 2–3). A GNN is described by its aggregation function `f`,
//! optional edge weighting (`g`, `h`), layer count, and layer widths —
//! "users can simply apply different GNN models by reconfiguring the modes".

pub use gt_tensor::sparse::{EdgeOp, Reduce};

/// How edge weights are folded into the aggregation (`h` in §II-A): the
/// function "that transforms the embedding of each edge's src node using
/// g's output vector".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HFn {
    /// Elementwise multiply the src embedding by the weight vector
    /// (NGCF's sum-based weight accumulation over similarity-scaled
    /// embeddings).
    Mul,
    /// Add the weight vector to the src embedding.
    Add,
}

/// Edge-weighting configuration (`g` + `h`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeWeighting {
    /// Per-edge weight function over (src, dst) embeddings.
    pub g: EdgeOp,
    /// How the weight transforms the src embedding before aggregation.
    pub h: HFn,
}

/// A GNN model as NAPA mode settings plus layer dimensions.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Display name ("GCN", "NGCF", ...).
    pub name: String,
    /// Number of GNN layers (= sampled hops).
    pub layers: usize,
    /// Hidden dimension of every layer but the last (64 in §VI).
    pub hidden: usize,
    /// Output dimension of the last layer (Table II "out dim").
    pub out_dim: usize,
    /// Aggregation function `f`.
    pub agg: Reduce,
    /// Edge weighting, if the model uses it (GCN: no; NGCF: yes).
    pub edge: Option<EdgeWeighting>,
}

impl ModelConfig {
    /// GCN (§VI): average-based aggregation, no edge weighting.
    pub fn gcn(layers: usize, hidden: usize, out_dim: usize) -> Self {
        ModelConfig {
            name: "GCN".into(),
            layers,
            hidden,
            out_dim,
            agg: Reduce::Mean,
            edge: None,
        }
    }

    /// NGCF (§VI): average-based aggregation with elementwise-product
    /// similarity weights folded in additively, matching NGCF's message
    /// m_{u←i} = e_i + e_i ⊙ e_u. Folding with `h = Mul` instead would make
    /// each message cubic in the (sub-unit) embeddings — e_i ⊙ e_i ⊙ e_u —
    /// which collapses activations and gradients toward zero and freezes
    /// BPR training at ln 2.
    pub fn ngcf(layers: usize, hidden: usize, out_dim: usize) -> Self {
        ModelConfig {
            name: "NGCF".into(),
            layers,
            hidden,
            out_dim,
            agg: Reduce::Mean,
            edge: Some(EdgeWeighting {
                g: EdgeOp::ElemMul,
                h: HFn::Add,
            }),
        }
    }

    /// Width of layer `l`'s MLP output (hidden for all but the last layer).
    pub fn layer_out_dim(&self, l: usize) -> usize {
        if l + 1 == self.layers {
            self.out_dim
        } else {
            self.hidden
        }
    }

    /// Parameter names for layer `l`.
    pub fn weight_name(&self, l: usize) -> String {
        format!("{}/w{}", self.name, l)
    }

    /// Bias parameter name for layer `l`.
    pub fn bias_name(&self, l: usize) -> String {
        format!("{}/b{}", self.name, l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_has_no_edge_weighting() {
        let m = ModelConfig::gcn(2, 64, 10);
        assert!(m.edge.is_none());
        assert_eq!(m.agg, Reduce::Mean);
        assert_eq!(m.layer_out_dim(0), 64);
        assert_eq!(m.layer_out_dim(1), 10);
    }

    #[test]
    fn ngcf_weights_edges() {
        let m = ModelConfig::ngcf(2, 64, 2);
        let e = m.edge.unwrap();
        assert_eq!(e.g, EdgeOp::ElemMul);
        assert_eq!(e.h, HFn::Add);
    }

    #[test]
    fn parameter_names_are_distinct() {
        let m = ModelConfig::gcn(2, 64, 10);
        assert_ne!(m.weight_name(0), m.weight_name(1));
        assert_ne!(m.weight_name(0), m.bias_name(0));
    }
}
