//! DKP cost-model drift monitoring.
//!
//! The cost model is fitted once, from first-epoch calibration samples
//! (§V-A). If the workload then shifts — feature widths change, the sampled
//! subgraphs grow, the device model is reconfigured — the fitted
//! coefficients quietly go stale and DKP starts placing kernels on the
//! wrong side of the argmin. This module makes that failure observable and
//! self-healing:
//!
//! * every completed placement decision (forward + backward observed) is
//!   compared against its prediction; the absolute percentage error feeds
//!   an EWMA of the residual;
//! * a *misprediction* is counted when the chosen placement's observed
//!   cost exceeds what the model predicted for the alternative — the
//!   observed ordering contradicts the predicted argmin;
//! * when the EWMA exceeds a threshold, the monitor opens a sliding
//!   collection window: the Cost-DKP nodes resume recording calibration
//!   samples, and after `window_decisions` more decisions the model is
//!   refitted. A singular refit latches [`super::CostModel`]'s static
//!   aggregation-first fallback, so a degenerate window degrades to the
//!   framework-default placement instead of trusting garbage coefficients.
//!
//! The monitor is pure bookkeeping (no telemetry handle); the trainer
//! drains its state into counters/gauges/events after each batch.

use super::cost::Placement;
use parking_lot::Mutex;

/// Tunables for the drift monitor.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// EWMA smoothing factor for the residual (weight of the newest
    /// observation).
    pub alpha: f64,
    /// Residual EWMA above which a refit window opens.
    pub mape_threshold: f64,
    /// Decisions required (since the last refit) before drift can trigger —
    /// a handful of noisy batches should not refit a healthy model.
    pub min_decisions: u64,
    /// Decisions to collect samples over once a refit window opens.
    pub window_decisions: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            alpha: 0.2,
            // Comfortably above the ~12.5% residual Table I reports for a
            // healthy fit, comfortably below "placing blind".
            mape_threshold: 0.35,
            min_decisions: 8,
            window_decisions: 8,
        }
    }
}

/// One completed placement decision: what the model predicted for both
/// orders, and what the chosen order actually cost (forward + backward).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// The placement DKP chose.
    pub placement: Placement,
    /// Predicted cost of the chosen placement, µs.
    pub predicted_us: f64,
    /// Predicted cost of the placement *not* chosen, µs.
    pub predicted_alt_us: f64,
    /// Observed (modeled-latency) cost of the chosen placement, µs.
    pub observed_us: f64,
}

impl DecisionRecord {
    /// Absolute percentage error of the prediction, `|obs − pred| / obs`.
    pub fn ape(&self) -> f64 {
        if self.observed_us > 0.0 {
            (self.observed_us - self.predicted_us).abs() / self.observed_us
        } else {
            0.0
        }
    }

    /// True when the observed cost of the chosen placement exceeds the
    /// predicted cost of the alternative — the ordering the model used to
    /// pick a side is contradicted by what actually happened.
    pub fn mispredicted(&self) -> bool {
        self.observed_us > self.predicted_alt_us
    }
}

/// What the caller must do after recording a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftAction {
    /// Keep going.
    None,
    /// Drift crossed the threshold: clear the cost model's samples and
    /// start collecting fresh ones (the monitor now reports
    /// [`DriftMonitor::is_collecting`] until the window closes).
    StartedCollection,
    /// The collection window closed: refit the cost model.
    Refit,
}

#[derive(Debug, Default)]
struct State {
    ewma_ape: Option<f64>,
    decisions: u64,
    since_refit: u64,
    mispredictions: u64,
    refits: u64,
    /// Decisions remaining in the open collection window, if any.
    collecting: Option<u64>,
    /// Records not yet drained by the trainer for event emission.
    recent: Vec<DecisionRecord>,
}

/// Sliding-window drift monitor shared by all Cost-DKP nodes of a trainer.
#[derive(Debug, Default)]
pub struct DriftMonitor {
    cfg: DriftConfig,
    state: Mutex<State>,
}

/// Cap on undrained decision records (a serving loop that never drains
/// must not grow without bound).
const RECENT_CAP: usize = 256;

impl DriftMonitor {
    /// A monitor with the given tunables.
    pub fn new(cfg: DriftConfig) -> Self {
        DriftMonitor {
            cfg,
            state: Mutex::new(State::default()),
        }
    }

    /// The monitor's tunables.
    pub fn config(&self) -> DriftConfig {
        self.cfg
    }

    /// Record a completed decision and report what to do next. The EWMA is
    /// seeded with the first observation's APE and reset by a refit (a
    /// fresh fit's residuals say nothing about the old one's).
    pub fn record(&self, rec: DecisionRecord) -> DriftAction {
        let mut s = self.state.lock();
        s.decisions += 1;
        s.since_refit += 1;
        if rec.mispredicted() {
            s.mispredictions += 1;
        }
        let ape = rec.ape();
        s.ewma_ape = Some(match s.ewma_ape {
            Some(e) => self.cfg.alpha * ape + (1.0 - self.cfg.alpha) * e,
            None => ape,
        });
        if s.recent.len() < RECENT_CAP {
            s.recent.push(rec);
        }
        if let Some(remaining) = s.collecting {
            if remaining <= 1 {
                s.collecting = None;
                s.refits += 1;
                s.since_refit = 0;
                s.ewma_ape = None;
                return DriftAction::Refit;
            }
            s.collecting = Some(remaining - 1);
            return DriftAction::None;
        }
        if s.since_refit >= self.cfg.min_decisions
            && s.ewma_ape.is_some_and(|e| e > self.cfg.mape_threshold)
        {
            s.collecting = Some(self.cfg.window_decisions);
            return DriftAction::StartedCollection;
        }
        DriftAction::None
    }

    /// True while a refit collection window is open — Cost-DKP nodes record
    /// calibration samples exactly as in the first epoch.
    pub fn is_collecting(&self) -> bool {
        self.state.lock().collecting.is_some()
    }

    /// Current residual EWMA, `None` before the first post-fit decision
    /// (and right after a refit).
    pub fn ewma_ape(&self) -> Option<f64> {
        self.state.lock().ewma_ape
    }

    /// Total completed decisions observed.
    pub fn decisions(&self) -> u64 {
        self.state.lock().decisions
    }

    /// Decisions whose observed cost contradicted the predicted ordering.
    pub fn mispredictions(&self) -> u64 {
        self.state.lock().mispredictions
    }

    /// Refits triggered by drift.
    pub fn refits(&self) -> u64 {
        self.state.lock().refits
    }

    /// Take the records accumulated since the last drain (for structured
    /// event emission).
    pub fn drain_recent(&self) -> Vec<DecisionRecord> {
        std::mem::take(&mut self.state.lock().recent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriftConfig {
        DriftConfig {
            alpha: 0.5,
            mape_threshold: 0.25,
            min_decisions: 2,
            window_decisions: 2,
        }
    }

    fn rec(predicted: f64, alt: f64, observed: f64) -> DecisionRecord {
        DecisionRecord {
            placement: Placement::AggregationFirst,
            predicted_us: predicted,
            predicted_alt_us: alt,
            observed_us: observed,
        }
    }

    #[test]
    fn ewma_and_mispredictions_match_hand_computed_values() {
        let m = DriftMonitor::new(cfg());

        // Perfect prediction: ape 0, ewma seeds at 0, nothing triggers.
        assert_eq!(m.record(rec(100.0, 120.0, 100.0)), DriftAction::None);
        assert_eq!(m.ewma_ape(), Some(0.0));
        assert_eq!(m.mispredictions(), 0);

        // Observed 250 vs predicted 100: ape = 150/250 = 0.6,
        // ewma = 0.5·0.6 + 0.5·0 = 0.3 > 0.25 with min_decisions met, so a
        // collection window opens. 250 > alt 120 ⇒ misprediction.
        assert_eq!(
            m.record(rec(100.0, 120.0, 250.0)),
            DriftAction::StartedCollection
        );
        let e = m.ewma_ape().unwrap();
        assert!((e - 0.3).abs() < 1e-12, "ewma {e}");
        assert_eq!(m.mispredictions(), 1);
        assert!(m.is_collecting());

        // Window of 2: one more decision keeps collecting, the next refits.
        assert_eq!(m.record(rec(100.0, 120.0, 250.0)), DriftAction::None);
        assert!(m.is_collecting());
        assert_eq!(m.record(rec(100.0, 120.0, 250.0)), DriftAction::Refit);
        assert!(!m.is_collecting());
        assert_eq!(m.refits(), 1);
        // Refit resets the EWMA: the old residuals are about the old fit.
        assert_eq!(m.ewma_ape(), None);
        assert_eq!(m.decisions(), 4);
        assert_eq!(m.mispredictions(), 3);
    }

    #[test]
    fn healthy_residuals_never_trigger() {
        let m = DriftMonitor::new(cfg());
        for _ in 0..50 {
            // 10% error, under the 25% threshold.
            assert_eq!(m.record(rec(100.0, 200.0, 110.0)), DriftAction::None);
        }
        assert!(!m.is_collecting());
        assert_eq!(m.refits(), 0);
        assert_eq!(m.mispredictions(), 0);
        let e = m.ewma_ape().unwrap();
        assert!((e - 10.0 / 110.0).abs() < 1e-9, "ewma {e}");
    }

    #[test]
    fn min_decisions_gates_the_trigger() {
        let m = DriftMonitor::new(DriftConfig {
            min_decisions: 5,
            ..cfg()
        });
        for i in 0..4 {
            assert_eq!(
                m.record(rec(100.0, 500.0, 1000.0)),
                DriftAction::None,
                "decision {i} triggered early"
            );
        }
        assert_eq!(
            m.record(rec(100.0, 500.0, 1000.0)),
            DriftAction::StartedCollection
        );
    }

    #[test]
    fn refit_resets_the_min_decision_gate() {
        let m = DriftMonitor::new(cfg());
        let bad = rec(100.0, 120.0, 1000.0);
        assert_eq!(m.record(bad), DriftAction::None);
        assert_eq!(m.record(bad), DriftAction::StartedCollection);
        assert_eq!(m.record(bad), DriftAction::None);
        assert_eq!(m.record(bad), DriftAction::Refit);
        // Immediately after the refit the gate is closed again.
        assert_eq!(m.record(bad), DriftAction::None);
        assert_eq!(m.record(bad), DriftAction::StartedCollection);
    }

    #[test]
    fn zero_observed_cost_is_not_an_error() {
        let r = rec(100.0, 120.0, 0.0);
        assert_eq!(r.ape(), 0.0);
        assert!(!r.mispredicted());
    }

    #[test]
    fn drain_recent_takes_and_caps() {
        let m = DriftMonitor::new(cfg());
        let good = rec(100.0, 200.0, 101.0);
        for _ in 0..300 {
            m.record(good);
        }
        let drained = m.drain_recent();
        assert_eq!(drained.len(), RECENT_CAP);
        assert!(m.drain_recent().is_empty());
        m.record(good);
        assert_eq!(m.drain_recent().len(), 1);
    }
}
