//! The Cost-DKP fused node and the DFG rewrite that installs it (Fig 11c).
//!
//! "The kernel orchestrator prepares a new DFG node (Cost-DKP) in advance,
//! and replaces the two nodes with it at the host-side... At runtime,
//! Cost-DKP examines the input tensor's dimensionality and performs the
//! combination first if its reduction rate is higher than the original
//! execution sequence."
//!
//! Combination-first correctness (bottom of Fig 11c): with `f` linear
//! (sum/mean), `MLP(f(X)) = σ(W·f(X) + b) = σ(f(W·X) + b)` — the MatMul
//! commutes past the aggregation, so Cost-DKP transforms all `n_src` rows
//! first and aggregates in the hidden dimension. The bias is added *after*
//! aggregation either way, keeping Sum-aggregation exact too.

use super::cost::{CostModel, Dims, Placement};
use super::drift::{DecisionRecord, DriftAction, DriftMonitor};
use crate::napa::Pull;
use gt_sim::{KernelStats, Phase};
use gt_tensor::dense::Matrix;
use gt_tensor::dfg::{Dfg, ExecCtx, NodeId, Op, ParamStore};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Counters of placement decisions, shared with the trainer for reporting.
#[derive(Debug, Default)]
pub struct DkpCounters {
    /// Times aggregation-first was chosen.
    pub aggregation_first: AtomicUsize,
    /// Times combination-first was chosen.
    pub combination_first: AtomicUsize,
}

impl DkpCounters {
    /// (aggregation-first, combination-first) decision counts.
    pub fn snapshot(&self) -> (usize, usize) {
        (
            self.aggregation_first.load(Ordering::Relaxed),
            self.combination_first.load(Ordering::Relaxed),
        )
    }
}

/// Everything the backward pass needs from the forward pass: the saved
/// intermediate plus the decision's predicted/observed cost so far.
#[derive(Debug)]
struct Stash {
    placement: Placement,
    intermediate: Matrix,
    /// Modeled latency charged during the forward pass, µs.
    observed_fwd_us: f64,
    /// Predicted cost of the chosen placement (FWP + BWP), µs.
    predicted_us: f64,
    /// Predicted cost of the placement not chosen, µs.
    predicted_alt_us: f64,
    /// False when the decision was forced (weighted layer, static
    /// fallback) or the model is not yet fitted — such decisions carry no
    /// information about prediction quality.
    drift_eligible: bool,
}

/// The fused Pull + MatMul node installed by [`apply_dkp`].
#[derive(Debug)]
pub struct CostDkp {
    /// The aggregation half (owns the layer subgraph and `f`/`h` modes).
    pub pull: Pull,
    /// MLP weight parameter name.
    pub weight: String,
    /// MLP bias parameter name.
    pub bias: Option<String>,
    /// Shared cost model (Table I).
    pub cost: Arc<CostModel>,
    /// False only for the first GNN layer, whose input features need no
    /// gradient — aggregation-first BWP then skips `f'` entirely (§V-A).
    pub needs_input_grad: bool,
    /// Record (work, latency) calibration samples this epoch.
    pub calibrate: bool,
    /// Shared decision counters.
    pub counters: Arc<DkpCounters>,
    /// Shared drift monitor; when set, every completed decision feeds the
    /// predicted-vs-observed residual and may open a refit window.
    pub drift: Option<Arc<DriftMonitor>>,
    /// Stash of decision state between forward and backward.
    stash: Mutex<Option<Stash>>,
}

impl CostDkp {
    /// Build the fused node.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pull: Pull,
        weight: String,
        bias: Option<String>,
        cost: Arc<CostModel>,
        needs_input_grad: bool,
        calibrate: bool,
        counters: Arc<DkpCounters>,
        drift: Option<Arc<DriftMonitor>>,
    ) -> Self {
        CostDkp {
            pull,
            weight,
            bias,
            cost,
            needs_input_grad,
            calibrate,
            counters,
            drift,
            stash: Mutex::new(None),
        }
    }

    fn dims(&self, n_feat: usize, params: &ParamStore) -> Dims {
        Dims {
            n_src: self.pull.layer.num_src,
            n_dst: self.pull.layer.num_dst,
            n_edges: self.pull.layer.csr.num_edges(),
            n_feat,
            n_hid: params.get(&self.weight).cols(),
        }
    }

    /// Charge a MatMul of `rows×f · f×h` over `passes` passes; returns its
    /// modeled latency.
    fn charge_matmul(
        &self,
        rows: usize,
        f: usize,
        h: usize,
        passes: usize,
        ctx: &mut ExecCtx,
    ) -> f64 {
        ctx.sim.record_gpu(
            Phase::Combination,
            KernelStats {
                flops: 2 * (rows * f * h * passes) as u64,
                global_read_bytes: ((rows * f + f * h) * 4 * passes) as u64,
                global_write_bytes: (rows * h * 4 * passes) as u64,
                launches: passes as u64,
                ..Default::default()
            },
        )
    }

    fn charge_pull(&self, feat_dim: usize, ctx: &mut ExecCtx) -> f64 {
        let stats = self.pull.forward_stats(feat_dim, ctx.sim.device().num_sms);
        ctx.sim.record_gpu(Phase::Aggregation, stats)
    }

    /// Samples are recorded during first-epoch calibration and again while
    /// the drift monitor has a refit collection window open.
    fn recording_samples(&self) -> bool {
        self.calibrate || self.drift.as_ref().is_some_and(|d| d.is_collecting())
    }

    fn record_agg_sample(&self, d: &Dims, width: usize, latency: f64) {
        if self.recording_samples() {
            self.cost
                .record_agg_sample((d.n_edges * width) as f64, latency);
        }
    }

    fn record_comb_sample(&self, rows: usize, f: usize, h: usize, passes: usize, latency: f64) {
        if self.recording_samples() {
            self.cost.record_comb_sample(rows, f, h, passes, latency);
        }
    }

    /// Feed the completed decision to the drift monitor and apply whatever
    /// it asks for: clear the sample buffer when a collection window opens,
    /// refit when it closes. A singular refit latches the cost model's
    /// static aggregation-first fallback (and `drift_eligible` is false
    /// from then on), so a degenerate window degrades gracefully instead of
    /// looping on garbage coefficients.
    fn complete_decision(&self, stash: &Stash, observed_bwd_us: f64) {
        let Some(drift) = &self.drift else { return };
        if !stash.drift_eligible {
            return;
        }
        let action = drift.record(DecisionRecord {
            placement: stash.placement,
            predicted_us: stash.predicted_us,
            predicted_alt_us: stash.predicted_alt_us,
            observed_us: stash.observed_fwd_us + observed_bwd_us,
        });
        match action {
            DriftAction::StartedCollection => self.cost.clear_samples(),
            DriftAction::Refit => {
                let _ = self.cost.fit();
            }
            DriftAction::None => {}
        }
    }
}

impl Op for CostDkp {
    fn name(&self) -> &str {
        "cost_dkp"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        let x = inputs[0];
        let weights = inputs.get(1).copied();
        let d = self.dims(x.cols(), ctx.params);
        let weighted = self.pull.h.is_some();
        let placement = self.cost.decide(&d, weighted, self.needs_input_grad);
        // A decision only says something about prediction quality when the
        // model actually chose (not forced by weighting or the static
        // fallback) and has been fitted at least once.
        let drift_eligible = self.drift.is_some()
            && !weighted
            && !self.cost.is_static_fallback()
            && self.cost.fit_error().is_some();
        let (predicted_us, predicted_alt_us) = if drift_eligible {
            let af = self.cost.cost_aggregation_first(&d, self.needs_input_grad);
            let cf = self.cost.cost_combination_first(&d, self.needs_input_grad);
            match placement {
                Placement::AggregationFirst => (af, cf),
                Placement::CombinationFirst => (cf, af),
            }
        } else {
            (0.0, 0.0)
        };
        let w = ctx.params.get(&self.weight).clone();
        let bias: Option<Vec<f32>> = self
            .bias
            .as_ref()
            .map(|b| ctx.params.get(b).row(0).to_vec());

        let mut observed_fwd_us = 0.0;
        let (out, intermediate) = match placement {
            Placement::AggregationFirst => {
                self.counters
                    .aggregation_first
                    .fetch_add(1, Ordering::Relaxed);
                let a = self.pull.compute(x, weights);
                let lat = self.charge_pull(d.n_feat, ctx);
                self.record_agg_sample(&d, d.n_feat, lat);
                observed_fwd_us += lat;
                let mut y = a.matmul(&w);
                let lat = self.charge_matmul(d.n_dst, d.n_feat, d.n_hid, 1, ctx);
                self.record_comb_sample(d.n_dst, d.n_feat, d.n_hid, 1, lat);
                observed_fwd_us += lat;
                if let Some(b) = &bias {
                    y.add_row_vector(b);
                }
                (y, a)
            }
            Placement::CombinationFirst => {
                self.counters
                    .combination_first
                    .fetch_add(1, Ordering::Relaxed);
                debug_assert!(weights.is_none(), "weighted pulls never swap");
                let t = x.matmul(&w);
                let lat = self.charge_matmul(d.n_src, d.n_feat, d.n_hid, 1, ctx);
                self.record_comb_sample(d.n_src, d.n_feat, d.n_hid, 1, lat);
                observed_fwd_us += lat;
                let mut y = self.pull.compute(&t, None);
                let lat = self.charge_pull(d.n_hid, ctx);
                self.record_agg_sample(&d, d.n_hid, lat);
                observed_fwd_us += lat;
                if let Some(b) = &bias {
                    y.add_row_vector(b);
                }
                (y, t)
            }
        };
        *self.stash.lock() = Some(Stash {
            placement,
            intermediate,
            observed_fwd_us,
            predicted_us,
            predicted_alt_us,
            drift_eligible,
        });
        out
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        let x = inputs[0];
        let weights = inputs.get(1).copied();
        let d = self.dims(x.cols(), ctx.params);
        let Some(stash) = self.stash.lock().take() else {
            // A backward without its matching forward is a wiring bug; in
            // release serving, drop the gradient contribution rather than
            // poison the whole pipeline.
            debug_assert!(false, "backward without matching forward");
            return vec![None; inputs.len()];
        };
        let w = ctx.params.get(&self.weight).clone();
        if let Some(b) = &self.bias {
            let db = Matrix::from_vec(1, grad.cols(), grad.column_sums());
            ctx.params.accumulate_grad(b, &db);
        }

        let mut observed_bwd_us = 0.0;
        let grads = match stash.placement {
            Placement::AggregationFirst => {
                // out = a·W + b with a = pull(x, w).
                let a = &stash.intermediate;
                let dw = a.transpose_a_matmul(grad);
                ctx.params.accumulate_grad(&self.weight, &dw);
                let da = grad.matmul_transpose_b(&w);
                let lat = self.charge_matmul(d.n_dst, d.n_feat, d.n_hid, 2, ctx);
                self.record_comb_sample(d.n_dst, d.n_feat, d.n_hid, 2, lat);
                observed_bwd_us += lat;
                if !self.needs_input_grad {
                    // First GNN layer: skip f' entirely (Table I's n_src
                    // reduction-factor case).
                    vec![None; inputs.len()]
                } else {
                    let (dx, dwe) = self.pull.compute_backward(x, weights, &da);
                    let lat = self.charge_pull(d.n_feat, ctx);
                    self.record_agg_sample(&d, d.n_feat, lat);
                    observed_bwd_us += lat;
                    if self.pull.h.is_some() {
                        vec![Some(dx), dwe]
                    } else {
                        vec![Some(dx)]
                    }
                }
            }
            Placement::CombinationFirst => {
                // out = pull(x·W) + b with t = x·W stashed.
                let t = &stash.intermediate;
                let da = grad; // bias add is identity for the grad
                let (dt, _) = self.pull.compute_backward(t, None, da);
                let lat = self.charge_pull(d.n_hid, ctx);
                self.record_agg_sample(&d, d.n_hid, lat);
                observed_bwd_us += lat;
                let dw = x.transpose_a_matmul(&dt);
                ctx.params.accumulate_grad(&self.weight, &dw);
                let comb_passes = if self.needs_input_grad { 2 } else { 1 };
                let lat = self.charge_matmul(d.n_src, d.n_feat, d.n_hid, comb_passes, ctx);
                self.record_comb_sample(d.n_src, d.n_feat, d.n_hid, comb_passes, lat);
                observed_bwd_us += lat;
                if self.needs_input_grad {
                    vec![Some(dt.matmul_transpose_b(&w))]
                } else {
                    vec![None]
                }
            }
        };
        self.complete_decision(&stash, observed_bwd_us);
        grads
    }

    fn out_shape(&self, _in_shapes: &[(usize, usize)], params: &ParamStore) -> (usize, usize) {
        (self.pull.layer.num_dst, params.get(&self.weight).cols())
    }
}

/// A Pull → MatMul pair the trainer registered for rewriting.
#[derive(Debug)]
pub struct DkpPair {
    /// The Pull node in the DFG.
    pub pull_node: NodeId,
    /// The consuming MatMul (Linear) node.
    pub linear_node: NodeId,
    /// A clone of the Pull op (subgraph + modes).
    pub pull: Pull,
    /// The Linear's weight parameter name.
    pub weight: String,
    /// The Linear's bias parameter name.
    pub bias: Option<String>,
    /// Whether the Pull's feature input requires gradients.
    pub needs_input_grad: bool,
}

/// Rewrite every registered Pull → MatMul pair into a Cost-DKP node.
/// Returns the number of pairs fused. Pass a drift monitor to have every
/// completed decision feed the predicted-vs-observed residual (and trigger
/// sliding-window refits); `None` keeps the fitted model frozen, which is
/// right for forward-only inference where the full decision cost is never
/// observed.
pub fn apply_dkp(
    dfg: &mut Dfg,
    pairs: Vec<DkpPair>,
    cost: &Arc<CostModel>,
    calibrate: bool,
    counters: &Arc<DkpCounters>,
    drift: Option<&Arc<DriftMonitor>>,
) -> usize {
    let mut fused = 0;
    for p in pairs {
        debug_assert_eq!(dfg.node_name(p.pull_node), "pull");
        debug_assert_eq!(dfg.node_name(p.linear_node), "matmul");
        let node = CostDkp::new(
            p.pull,
            p.weight,
            p.bias,
            Arc::clone(cost),
            p.needs_input_grad,
            calibrate,
            Arc::clone(counters),
            drift.map(Arc::clone),
        );
        dfg.fuse_pair(p.pull_node, p.linear_node, Box::new(node));
        fused += 1;
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::convert::{coo_to_csc, coo_to_csr};
    use gt_graph::{Coo, Csr};
    use gt_sample::LayerGraph;
    use gt_sim::{DeviceSpec, SimContext};
    use gt_tensor::dfg::Linear;
    use gt_tensor::init::xavier;
    use gt_tensor::sparse::Reduce;

    fn layer() -> Arc<LayerGraph> {
        let coo = Coo::from_edges(4, &[(0, 0), (1, 0), (2, 0), (1, 1), (3, 1), (2, 2), (0, 2)]);
        let (csr_full, _) = coo_to_csr(&coo);
        let csr = Csr::new(csr_full.indptr[..=3].to_vec(), csr_full.srcs.clone());
        let (csc, _) = coo_to_csc(&coo);
        Arc::new(LayerGraph {
            csr,
            csc,
            num_dst: 3,
            num_src: 4,
        })
    }

    /// Build X → Pull → Linear DFG, optionally fused, and run one fwd+bwd.
    fn run(force: Option<Placement>, needs_input_grad: bool) -> (Matrix, Matrix, (usize, usize)) {
        let l = layer();
        let feat = 8;
        let hid = 3;
        let mut params = ParamStore::new();
        params.register("w", xavier(feat, hid, 3));
        params.register("b", Matrix::from_vec(1, hid, vec![0.1, -0.2, 0.3]));
        let mut dfg = Dfg::new();
        let x = dfg.input(0);
        let pull = Pull::new(Arc::clone(&l), Reduce::Mean);
        let pn = dfg.op(pull.clone(), &[x]);
        let ln = dfg.op(Linear::new("w", "b"), &[pn]);
        dfg.set_output(ln);

        let cost = Arc::new(CostModel::from_device(&DeviceSpec::tiny()));
        if let Some(p) = force {
            // Force the decision by planting extreme coefficients through
            // synthetic samples: we instead bypass and fuse with a model
            // that will pick `p` given the dims; easiest is to scale hidden
            // vs feature dims... simpler: monkey-set by recording samples is
            // convoluted — directly test both dims families elsewhere. Here
            // we only exercise the fused path with the real decision, then
            // assert numerics; `p` picks which dims family we construct.
            let _ = p;
        }
        let counters = Arc::new(DkpCounters::default());
        let pairs = vec![DkpPair {
            pull_node: pn,
            linear_node: ln,
            pull,
            weight: "w".into(),
            bias: Some("b".into()),
            needs_input_grad,
        }];
        assert_eq!(apply_dkp(&mut dfg, pairs, &cost, true, &counters, None), 1);

        let xval = xavier(4, feat, 9);
        let mut sim = SimContext::new(DeviceSpec::tiny());
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let vals = dfg.forward(std::slice::from_ref(&xval), &mut ctx);
        let out = vals.get(dfg.output()).clone();
        let grads = dfg.backward(
            &vals,
            Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.len()]),
            &mut ctx,
        );
        let dw = params.grad("w").unwrap().clone();
        let _ = grads;
        (out, dw, counters.snapshot())
    }

    /// Reference: unfused Pull → Linear.
    fn reference(needs_input_grad: bool) -> (Matrix, Matrix) {
        let l = layer();
        let feat = 8;
        let hid = 3;
        let mut params = ParamStore::new();
        params.register("w", xavier(feat, hid, 3));
        params.register("b", Matrix::from_vec(1, hid, vec![0.1, -0.2, 0.3]));
        let mut dfg = Dfg::new();
        let x = dfg.input(0);
        let pn = dfg.op(Pull::new(Arc::clone(&l), Reduce::Mean), &[x]);
        let ln = dfg.op(Linear::new("w", "b"), &[pn]);
        dfg.set_output(ln);
        let xval = xavier(4, feat, 9);
        let mut sim = SimContext::new(DeviceSpec::tiny());
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let vals = dfg.forward(std::slice::from_ref(&xval), &mut ctx);
        let out = vals.get(ln).clone();
        dfg.backward(
            &vals,
            Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.len()]),
            &mut ctx,
        );
        let _ = needs_input_grad;
        (out, params.grad("w").unwrap().clone())
    }

    #[test]
    fn fused_matches_unfused_numerics() {
        let (out_f, dw_f, (af, cf)) = run(None, true);
        let (out_r, dw_r) = reference(true);
        assert!(out_f.max_abs_diff(&out_r) < 1e-4);
        assert!(dw_f.max_abs_diff(&dw_r) < 1e-4);
        assert_eq!(af + cf, 1, "exactly one decision made");
    }

    #[test]
    fn first_layer_skip_keeps_weight_grads_exact() {
        let (_, dw_f, _) = run(None, false);
        let (_, dw_r) = reference(false);
        assert!(dw_f.max_abs_diff(&dw_r) < 1e-4);
    }

    /// Both placements must agree numerically. We force each side by
    /// constructing dims that make the decision unambiguous.
    #[test]
    fn placements_agree_on_both_orders() {
        let l = layer();
        for (feat, hid) in [(64usize, 2usize), (2, 64)] {
            let mut params = ParamStore::new();
            params.register("w", xavier(feat, hid, 5));
            let cost = Arc::new(CostModel::from_device(&DeviceSpec::rtx3090()));
            let counters = Arc::new(DkpCounters::default());
            let pull = Pull::new(Arc::clone(&l), Reduce::Mean);
            let node = CostDkp::new(
                pull.clone(),
                "w".into(),
                None,
                cost,
                true,
                false,
                counters,
                None,
            );
            let xval = xavier(4, feat, 1);
            let mut sim = SimContext::new(DeviceSpec::tiny());
            let mut ctx = ExecCtx {
                sim: &mut sim,
                params: &mut params,
            };
            let fused_out = node.forward(&[&xval], &mut ctx);
            // Reference: aggregate then matmul.
            let a = pull.compute(&xval, None);
            let refr = a.matmul(ctx.params.get("w"));
            assert!(
                fused_out.max_abs_diff(&refr) < 1e-4,
                "feat={feat} hid={hid} diverged"
            );
        }
    }

    #[test]
    fn calibration_samples_recorded() {
        let l = layer();
        let mut params = ParamStore::new();
        params.register("w", xavier(4, 2, 5));
        let cost = Arc::new(CostModel::from_device(&DeviceSpec::tiny()));
        let node = CostDkp::new(
            Pull::new(l, Reduce::Mean),
            "w".into(),
            None,
            Arc::clone(&cost),
            true,
            true,
            Arc::new(DkpCounters::default()),
            None,
        );
        let xval = xavier(4, 4, 1);
        let mut sim = SimContext::new(DeviceSpec::tiny());
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let out = node.forward(&[&xval], &mut ctx);
        assert!(cost.num_samples() >= 2);
        let g = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.len()]);
        node.backward(&[&xval], &out, &g, &mut ctx);
        assert!(cost.num_samples() >= 4);
    }
}
