//! The GNN kernel orchestrator (§V-A): Dynamic Kernel Placement.
//!
//! The orchestrator inspects the model's dataflow graph at construction
//! time, finds every Pull → MatMul pair, and replaces it with a single
//! [`CostDkp`] node (Fig 11c). At execution time the Cost-DKP node consults
//! the fitted [`CostModel`] (Table I) and runs either aggregation-first or
//! combination-first, whichever the model predicts cheaper for the layer's
//! dimensionality — "it conditionally performs the dynamic kernel placement
//! at a construction time of GNN's dataflow graph".

pub mod cost;
pub mod dkp;
pub mod drift;

pub use cost::{CostModel, Dims, Placement};
pub use dkp::{apply_dkp, CostDkp, DkpPair};
pub use drift::{DecisionRecord, DriftAction, DriftConfig, DriftMonitor};
