//! The DKP cost model (§V-A, Table I).
//!
//! Kernel latency is modeled as an affine function of three work terms:
//!
//! ```text
//! latency ≈ c₀ + c₁·agg_work + c₂·comb_flops + c₃·comb_mem
//! ```
//!
//! * `agg_work` — edge·width products of the aggregation (memory-bound
//!   gather traffic);
//! * `comb_flops` — row·in·out products of the combination's MatMul;
//! * `comb_mem` — row·(in+out) elements the MatMul streams; at GNN layer
//!   shapes MatMuls are usually *memory*-bound, so this term is what makes
//!   the model prefer aggregation-first when the width barely shrinks.
//!
//! Placement economics (Fig 11a): aggregation-first shrinks the MatMul's
//! rows from `n_src` to `n_dst`; combination-first shrinks the aggregation's
//! width from `n_feat` to `n_hid`. BWP mirrors FWP; for the *first* GNN
//! layer (executed last in BWP) aggregation-first skips the aggregation
//! backward entirely, because input features need no gradient — "the
//! aggregation-first's BWP does not need to perform aggregation's BWP for
//! calculating the gradient for MLP parameters".
//!
//! Coefficients start from device-derived defaults and are refined by
//! least-squares over kernel latencies measured during the first training
//! epoch, exactly as §V-A describes; the paper reports 12.5% residual error.

use gt_sim::DeviceSpec;
use gt_tensor::lstsq::{mape, try_lstsq};
use parking_lot::{Mutex, RwLock};

/// Layer dimensionality, the cost model's input (Fig 11a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Source vertices feeding the layer.
    pub n_src: usize,
    /// Destination vertices the layer produces.
    pub n_dst: usize,
    /// Edges in the layer's subgraph.
    pub n_edges: usize,
    /// Input feature dimension.
    pub n_feat: usize,
    /// Hidden (output) dimension of the layer's MLP.
    pub n_hid: usize,
}

/// The two kernel orders DKP chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Aggregate (Pull) first, then combine (MatMul) — the static default
    /// of DGL/PyG/GNNAdvisor.
    AggregationFirst,
    /// Combine first, then aggregate in the hidden dimension.
    CombinationFirst,
}

impl Placement {
    /// Stable label for logs and structured events.
    pub fn label(self) -> &'static str {
        match self {
            Placement::AggregationFirst => "aggregation_first",
            Placement::CombinationFirst => "combination_first",
        }
    }
}

/// Work terms of one combination kernel: `rows×f·h` over `passes` passes.
fn comb_terms(rows: usize, f: usize, h: usize, passes: usize) -> (f64, f64) {
    let flops = (rows * f * h * passes) as f64;
    let mem = (rows * (f + h) * passes) as f64;
    (flops, mem)
}

/// One calibration observation: `[1, agg, comb_flops, comb_mem] → µs`.
type Sample = ([f64; 4], f64);

/// Observation vector of a sample set.
fn b_vec(samples: &[Sample]) -> Vec<f64> {
    samples.iter().map(|(_, y)| *y).collect()
}

/// The fitted latency model shared by all Cost-DKP nodes of a trainer.
#[derive(Debug)]
pub struct CostModel {
    /// `[c0, c1, c2, c3]` (µs, µs/agg-unit, µs/flop-unit, µs/mem-unit).
    coef: RwLock<[f64; 4]>,
    samples: Mutex<Vec<Sample>>,
    /// Fit residual (MAPE) of the last calibration, if any.
    fit_error: RwLock<Option<f64>>,
    /// Latched when a fit came back singular: the model stops trusting its
    /// (device-seeded, uncalibrated) coefficients and [`CostModel::decide`]
    /// degrades to the static aggregation-first placement every framework
    /// defaults to.
    static_fallback: RwLock<bool>,
}

impl CostModel {
    /// Seed coefficients from the device's roofline: aggregation gathers
    /// ≈8 bytes/unit; combination does 2 FLOPs/flop-unit and streams
    /// ≈4 bytes/mem-unit.
    pub fn from_device(dev: &DeviceSpec) -> Self {
        let bw = dev.effective_bw_per_us(false);
        CostModel {
            coef: RwLock::new([
                dev.kernel_launch_us,
                8.0 / bw,
                2.0 / (dev.peak_flops / 1.0e6),
                4.0 / bw,
            ]),
            samples: Mutex::new(Vec::new()),
            fit_error: RwLock::new(None),
            static_fallback: RwLock::new(false),
        }
    }

    /// Current coefficients.
    pub fn coefficients(&self) -> [f64; 4] {
        *self.coef.read()
    }

    /// Predicted latency (µs) for the given work terms.
    pub fn predict(&self, agg_work: f64, comb_flops: f64, comb_mem: f64) -> f64 {
        let c = self.coef.read();
        c[0] + c[1] * agg_work + c[2] * comb_flops + c[3] * comb_mem
    }

    /// Record a measured aggregation kernel (first-epoch calibration).
    pub fn record_agg_sample(&self, agg_work: f64, latency_us: f64) {
        self.samples
            .lock()
            .push(([1.0, agg_work, 0.0, 0.0], latency_us));
    }

    /// Record a measured combination kernel.
    pub fn record_comb_sample(
        &self,
        rows: usize,
        f: usize,
        h: usize,
        passes: usize,
        latency_us: f64,
    ) {
        let (flops, mem) = comb_terms(rows, f, h, passes);
        self.samples
            .lock()
            .push(([1.0, 0.0, flops, mem], latency_us));
    }

    /// Number of recorded calibration samples.
    pub fn num_samples(&self) -> usize {
        self.samples.lock().len()
    }

    /// Discard all calibration samples (start of a drift-refit collection
    /// window: the stale epoch's samples must not outvote the fresh ones).
    pub fn clear_samples(&self) {
        self.samples.lock().clear();
    }

    /// Replace the coefficients wholesale. An ops/test hook — production
    /// refits go through [`CostModel::fit`], which also validates the
    /// system's conditioning. Leaves `fit_error` untouched.
    pub fn set_coefficients(&self, coef: [f64; 4]) {
        *self.coef.write() = coef;
    }

    /// Least-squares refit over recorded samples; returns the residual MAPE.
    /// Keeps prior coefficients if the system is singular or underdetermined.
    ///
    /// Coefficients are work rates, so they must be non-negative: a plain
    /// OLS fit over correlated features can go negative and then predict
    /// negative latencies when extrapolated to large layers. We apply the
    /// standard active-set trick: fit, and while any work coefficient is
    /// negative, pin it to zero and refit the rest.
    pub fn fit(&self) -> Option<f64> {
        let samples = self.samples.lock();
        if samples.len() < 6 {
            return None;
        }
        let mut active = [true; 4]; // c0 may stay free; work terms 1..4
        let coef = loop {
            let cols: Vec<usize> = (0..4).filter(|&i| active[i]).collect();
            if cols.is_empty() {
                *self.static_fallback.write() = true;
                return None;
            }
            let mut a = Vec::with_capacity(samples.len() * cols.len());
            let mut b = Vec::with_capacity(samples.len());
            for (row, y) in samples.iter() {
                for &c in &cols {
                    a.push(row[c]);
                }
                b.push(*y);
            }
            let partial = match try_lstsq(&a, cols.len(), &b) {
                Ok(c) => c,
                Err(_) => {
                    // Rank-deficient calibration (e.g. every sample saw the
                    // same layer shape). Rather than trust coefficients we
                    // could not fit, pin DKP to the static placement.
                    *self.static_fallback.write() = true;
                    return None;
                }
            };
            let mut full = [0.0f64; 4];
            for (k, &c) in cols.iter().enumerate() {
                full[c] = partial[k];
            }
            // Pin the most negative work coefficient (indices 1..4) to 0.
            let worst = (1..4)
                .filter(|&i| active[i] && full[i] < 0.0)
                .min_by(|&i, &j| full[i].total_cmp(&full[j]));
            match worst {
                Some(i) => active[i] = false,
                None => break full,
            }
        };
        let predicted: Vec<f64> = samples
            .iter()
            .map(|(r, _)| coef[0] + coef[1] * r[1] + coef[2] * r[2] + coef[3] * r[3])
            .collect();
        let err = mape(&predicted, &b_vec(&samples));
        *self.coef.write() = coef;
        *self.fit_error.write() = Some(err);
        *self.static_fallback.write() = false;
        Some(err)
    }

    /// Residual error of the last fit (Table I reports ≈12.5%).
    pub fn fit_error(&self) -> Option<f64> {
        *self.fit_error.read()
    }

    /// True when a singular calibration fit pinned DKP to the static
    /// aggregation-first placement.
    pub fn is_static_fallback(&self) -> bool {
        *self.static_fallback.read()
    }

    /// FWP + BWP cost of aggregation-first for `d`.
    pub fn cost_aggregation_first(&self, d: &Dims, needs_input_grad: bool) -> f64 {
        let (cf, cm) = comb_terms(d.n_dst, d.n_feat, d.n_hid, 1);
        let fwd = self.predict((d.n_edges * d.n_feat) as f64, cf, cm);
        // BWP: combination' (dX and dW → 2 passes), then aggregation'
        // (skipped entirely when input grads are unneeded).
        let bwd_agg = if needs_input_grad {
            (d.n_edges * d.n_feat) as f64
        } else {
            0.0
        };
        let (bf, bm) = comb_terms(d.n_dst, d.n_feat, d.n_hid, 2);
        fwd + self.predict(bwd_agg, bf, bm)
    }

    /// FWP + BWP cost of combination-first for `d`.
    pub fn cost_combination_first(&self, d: &Dims, needs_input_grad: bool) -> f64 {
        let (cf, cm) = comb_terms(d.n_src, d.n_feat, d.n_hid, 1);
        let fwd = self.predict((d.n_edges * d.n_hid) as f64, cf, cm);
        // BWP: aggregation' in the hidden dim is always needed (dW depends
        // on it), then combination' (dW, plus dX when required).
        let passes = if needs_input_grad { 2 } else { 1 };
        let (bf, bm) = comb_terms(d.n_src, d.n_feat, d.n_hid, passes);
        fwd + self.predict((d.n_edges * d.n_hid) as f64, bf, bm)
    }

    /// Choose the placement for a layer. Weighted (NGCF-style, vector
    /// edge weights folded by `h`) layers cannot commute the MatMul past
    /// the weighting, so they always aggregate first (§VI-A: edge weighting
    /// "is hard to get benefit from kernel scheduling").
    pub fn decide(&self, d: &Dims, weighted: bool, needs_input_grad: bool) -> Placement {
        if weighted || *self.static_fallback.read() {
            return Placement::AggregationFirst;
        }
        if self.cost_combination_first(d, needs_input_grad)
            < self.cost_aggregation_first(d, needs_input_grad)
        {
            Placement::CombinationFirst
        } else {
            Placement::AggregationFirst
        }
    }

    /// Input-tensor size reduction of combination-first relative to
    /// aggregation-first (Fig 11b): positive values mean combination-first
    /// shrinks the data the aggregation must touch.
    pub fn reduction_rate(d: &Dims) -> f64 {
        let agg_first_bytes = (d.n_edges * d.n_feat) as f64;
        let comb_first_bytes = (d.n_edges * d.n_hid) as f64;
        1.0 - comb_first_bytes / agg_first_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::from_device(&DeviceSpec::rtx3090())
    }

    fn dims(n_src: usize, n_dst: usize, n_edges: usize, n_feat: usize, n_hid: usize) -> Dims {
        Dims {
            n_src,
            n_dst,
            n_edges,
            n_feat,
            n_hid,
        }
    }

    #[test]
    fn heavy_features_prefer_combination_first() {
        // wiki-talk-like: 4353-dim features, 64 hidden, sparse sampled graph.
        let m = model();
        let d = dims(30_000, 8_000, 60_000, 4353, 64);
        assert_eq!(m.decide(&d, false, true), Placement::CombinationFirst);
        assert!(CostModel::reduction_rate(&d) > 0.9);
    }

    #[test]
    fn light_features_keep_aggregation_first() {
        // Hidden-to-output layer: 64 → 47 barely narrows the aggregation,
        // while combination-first would matmul 16× more rows.
        let m = model();
        let d = dims(50_000, 3_000, 110_000, 64, 47);
        assert_eq!(m.decide(&d, false, true), Placement::AggregationFirst);
    }

    #[test]
    fn weighted_layers_never_swap() {
        let m = model();
        let d = dims(30_000, 8_000, 60_000, 4353, 64);
        assert_eq!(m.decide(&d, true, true), Placement::AggregationFirst);
    }

    #[test]
    fn first_layer_bwp_skip_biases_toward_agg_first() {
        let m = model();
        let d = dims(10_000, 5_000, 40_000, 256, 64);
        let af_with = m.cost_aggregation_first(&d, true);
        let af_without = m.cost_aggregation_first(&d, false);
        assert!(af_without < af_with);
    }

    #[test]
    fn fit_recovers_planted_coefficients() {
        let m = model();
        let truth = [7.0, 3.0e-5, 1.2e-8, 4.0e-6];
        for i in 1..60u64 {
            let agg = if i % 2 == 0 { (i * 1000) as f64 } else { 0.0 };
            let (cf, cm) = if i % 2 == 1 {
                comb_terms(i as usize * 100, 32 + i as usize, 16, 1)
            } else {
                (0.0, 0.0)
            };
            m.samples.lock().push((
                [1.0, agg, cf, cm],
                truth[0] + truth[1] * agg + truth[2] * cf + truth[3] * cm,
            ));
        }
        let err = m.fit().unwrap();
        assert!(err < 1e-6, "residual {err}");
        let c = m.coefficients();
        for i in 0..4 {
            assert!(
                (c[i] - truth[i]).abs() / truth[i] < 1e-5,
                "c[{i}] = {} vs {}",
                c[i],
                truth[i]
            );
        }
        assert_eq!(m.fit_error(), Some(err));
    }

    #[test]
    fn fit_needs_enough_samples() {
        let m = model();
        m.record_agg_sample(1.0, 1.0);
        assert!(m.fit().is_none());
        assert_eq!(m.num_samples(), 1);
    }

    #[test]
    fn singular_fit_degrades_to_static_placement() {
        let m = model();
        // Every sample saw the exact same layer shape: the normal equations
        // are rank-deficient, so the fit must refuse and latch the fallback.
        for _ in 0..8 {
            m.record_comb_sample(100, 32, 16, 1, 50.0);
        }
        assert!(m.fit().is_none());
        assert!(m.is_static_fallback());
        // Even a shape that overwhelmingly favors combination-first now
        // takes the static default.
        let d = dims(30_000, 8_000, 60_000, 4353, 64);
        assert_eq!(m.decide(&d, false, true), Placement::AggregationFirst);
        // A later well-conditioned fit clears the fallback.
        m.samples.lock().clear();
        for i in 1..30u64 {
            let agg = if i % 2 == 0 { (i * 1000) as f64 } else { 0.0 };
            let (cf, cm) = if i % 2 == 1 {
                comb_terms(i as usize * 100, 32 + i as usize, 16, 1)
            } else {
                (0.0, 0.0)
            };
            m.samples.lock().push((
                [1.0, agg, cf, cm],
                7.0 + 3.0e-5 * agg + 1.2e-8 * cf + 4.0e-6 * cm,
            ));
        }
        assert!(m.fit().is_some());
        assert!(!m.is_static_fallback());
        assert_eq!(m.decide(&d, false, true), Placement::CombinationFirst);
    }

    #[test]
    fn prediction_is_monotone_in_work() {
        let m = model();
        assert!(m.predict(1e6, 1e6, 1e6) > m.predict(1e5, 1e6, 1e6));
        assert!(m.predict(1e6, 1e6, 1e6) > m.predict(1e6, 1e5, 1e5));
    }

    #[test]
    fn sample_recorders_tag_the_right_terms() {
        let m = model();
        m.record_agg_sample(123.0, 1.0);
        m.record_comb_sample(10, 4, 2, 2, 1.0);
        let s = m.samples.lock();
        assert_eq!(s[0].0, [1.0, 123.0, 0.0, 0.0]);
        assert_eq!(s[1].0, [1.0, 0.0, 160.0, 120.0]);
    }
}
