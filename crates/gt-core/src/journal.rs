//! Write-ahead outcome journal for durable serving.
//!
//! Every [`BatchOutcome`](crate::framework::BatchOutcome) the supervisor
//! resolves — and every [`QuarantineRecord`](crate::serve::QuarantineRecord)
//! it files — is appended here *before* the outcome is returned to the
//! caller, so a crash can never lose an acknowledged result. Recovery
//! ([`Supervisor::recover`](crate::serve::Supervisor::recover)) replays the
//! journal against a fresh trainer; because the whole pipeline is
//! deterministic (docs/parallelism.md), the replayed run is bit-identical
//! to the uninterrupted one, and the journal doubles as a cross-check: any
//! divergence between recorded and replayed outcomes is a typed error.
//!
//! # On-disk format
//!
//! ```text
//! "GTJRNL01"                                   8-byte magic
//! repeat:  [u32 len][u32 crc32(payload)][payload]   one record
//! ```
//!
//! Payloads are JSON documents produced by the same
//! [`ToJson`](gt_telemetry::ToJson) impls the telemetry exporters use —
//! one serializer, two sinks. Each record is framed with its byte length
//! and a CRC-32 of the payload.
//!
//! # Torn-tail policy
//!
//! An append interrupted by a crash leaves a partial record at the tail.
//! [`scan`] distinguishes the two failure shapes:
//!
//! * a record that **extends past end-of-file**, or whose CRC mismatches
//!   **at the very tail**, is a torn append — the valid prefix is returned
//!   with `torn_tail: true` and recovery truncates it away (the in-flight
//!   outcome was never acknowledged, so dropping it is correct);
//! * a CRC mismatch **mid-file** (valid records follow) cannot be a torn
//!   append — that is bit rot or tampering, surfaced as
//!   [`GtError::CorruptJournal`].
//!
//! The scanner parses from a fully-read buffer and validates every length
//! field against the bytes actually present, so a corrupt length cannot
//! drive an allocation larger than the file itself.

use crate::error::GtError;
use crate::framework::BatchOutcome;
use crate::serve::QuarantineRecord;
use gt_graph::VId;
use gt_sim::IoTarget;
use gt_telemetry::json::obj;
use gt_telemetry::{Json, ToJson};
use gt_tensor::{chaosio, crc32::crc32};
use std::io::Write;
use std::path::Path;

/// Journal file magic (version 01).
pub const MAGIC: &[u8; 8] = b"GTJRNL01";

/// Hard ceiling on one record's payload length (16 MiB). A journal record
/// is a small JSON document — a few KiB at most — so a length field past
/// this bound cannot be real. It also cannot be a torn append: a torn
/// write leaves a *prefix* of a valid frame, so the length field is either
/// incomplete (handled as a torn header) or intact and plausible. An
/// absurd length is therefore corruption, rejected before any reader could
/// size an allocation from it.
pub const MAX_RECORD_LEN: usize = 16 << 20;

/// An open, append-only journal. Every append is framed, written, and
/// fsynced before returning — the write-ahead guarantee.
pub struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Create (or truncate) the journal at `path` and write the header.
    pub fn create(path: impl AsRef<Path>) -> Result<Journal, GtError> {
        let mut file = std::fs::File::create(path.as_ref())?;
        file.write_all(MAGIC)?;
        file.sync_all()?;
        Ok(Journal { file })
    }

    /// Open an existing journal for appending (after recovery has scanned
    /// it and truncated any torn tail).
    pub fn open_append(path: impl AsRef<Path>) -> Result<Journal, GtError> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path.as_ref())?;
        Ok(Journal { file })
    }

    fn frame(payload: &str) -> Vec<u8> {
        let bytes = payload.as_bytes();
        let mut out = Vec::with_capacity(8 + bytes.len());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(bytes).to_le_bytes());
        out.extend_from_slice(bytes);
        out
    }

    /// Append one record durably: frame, write, fsync. The write goes
    /// through the chaos IO shim — identity in production, the injection
    /// point for torn-write/ENOSPC/bit-flip campaigns.
    pub fn append(&mut self, record: &Json) -> Result<(), GtError> {
        let frame = Self::frame(&record.to_json_string());
        chaosio::append(IoTarget::Journal, &mut self.file, &frame)?;
        Ok(())
    }

    /// Simulate a crash mid-append: write the frame header plus half the
    /// payload, fsync, and stop — exactly the torn tail a process killed
    /// inside `write_all` leaves behind. Used by crash injection
    /// ([`gt_sim::CrashSite::MidJournal`]).
    pub fn append_torn(&mut self, record: &Json) -> Result<(), GtError> {
        let frame = Self::frame(&record.to_json_string());
        let keep = 8 + (frame.len() - 8) / 2;
        self.file.write_all(&frame[..keep])?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// Result of scanning a journal: the parsed valid prefix, how many bytes
/// it spans, and whether a torn tail was dropped.
#[derive(Debug)]
pub struct JournalScan {
    /// Every valid record, in append order.
    pub records: Vec<Json>,
    /// Bytes of the valid prefix (magic + whole records). Recovery
    /// truncates the file to this length before appending again.
    pub valid_len: u64,
    /// True when bytes past `valid_len` were dropped as a torn append.
    pub torn_tail: bool,
}

/// Read and scan the journal at `path`.
///
/// The read is validated against file metadata: fewer bytes than the file
/// holds (an interrupted syscall, a flaky network filesystem — or an
/// injected [`gt_sim::IoFault::ShortRead`]) is a retryable [`GtError::Io`],
/// never silently scanned as if the missing tail were a torn append. A
/// short read that truncated a committed record would otherwise replay as
/// data loss.
pub fn read_journal(path: impl AsRef<Path>) -> Result<JournalScan, GtError> {
    let path = path.as_ref();
    let bytes = chaosio::read_file(IoTarget::Journal, path)?;
    let expected = std::fs::metadata(path)?.len();
    if (bytes.len() as u64) < expected {
        return Err(GtError::Io {
            detail: format!(
                "short read on {}: got {} of {expected} bytes; retry",
                path.display(),
                bytes.len()
            ),
        });
    }
    scan(&bytes)
}

/// Scan a journal image (see the module docs for the torn-tail policy).
pub fn scan(bytes: &[u8]) -> Result<JournalScan, GtError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC[..] {
        return Err(GtError::CorruptJournal {
            offset: 0,
            detail: "missing GTJRNL01 magic".to_string(),
        });
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    let mut torn_tail = false;
    while pos < bytes.len() {
        if pos + 8 > bytes.len() {
            torn_tail = true; // header torn mid-write
            break;
        }
        let len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4-byte slice")) as usize;
        // A fully-present length field past the record ceiling cannot come
        // from a torn append (torn writes leave prefixes of valid frames);
        // reject it as corruption before any size could be trusted.
        if len > MAX_RECORD_LEN {
            return Err(GtError::CorruptJournal {
                offset: pos as u64,
                detail: format!("record length {len} exceeds the {MAX_RECORD_LEN}-byte ceiling"),
            });
        }
        let stored = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4-byte slice"));
        let end = pos + 8 + len;
        if end > bytes.len() {
            torn_tail = true; // payload torn mid-write (or a corrupt length
            break; // field — indistinguishable, and both drop only the tail)
        }
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != stored {
            if end == bytes.len() {
                torn_tail = true; // last record: torn payload bytes
                break;
            }
            return Err(GtError::CorruptJournal {
                offset: pos as u64,
                detail: format!("CRC mismatch in {len}-byte record"),
            });
        }
        let text = std::str::from_utf8(payload).map_err(|e| GtError::CorruptJournal {
            offset: pos as u64,
            detail: format!("non-UTF-8 payload: {e}"),
        })?;
        let json = gt_telemetry::json::parse(text).map_err(|e| GtError::CorruptJournal {
            offset: pos as u64,
            detail: format!("unparseable payload: {e}"),
        })?;
        records.push(json);
        pos = end;
    }
    Ok(JournalScan {
        records,
        valid_len: pos as u64,
        torn_tail,
    })
}

/// Truncate the journal at `path` to its valid prefix (drop a torn tail).
pub fn truncate_to(path: impl AsRef<Path>, valid_len: u64) -> Result<(), GtError> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path.as_ref())?;
    file.set_len(valid_len)?;
    file.sync_all()?;
    Ok(())
}

/// The record appended for every resolved batch: its serving index, the
/// vertex ids as submitted (what replay re-serves), the sampling fanout
/// the batch was actually served with (the gateway reduces it under
/// load, and replay must match), and the outcome in its canonical
/// telemetry JSON form.
pub fn batch_record(
    batch_index: usize,
    batch: &[VId],
    outcome: &BatchOutcome,
    fanout: usize,
) -> Json {
    batch_record_tagged(batch_index, batch, outcome, fanout, None)
}

/// [`batch_record`] with an optional owning-worker tag. The cluster
/// supervisor tags every batch with the worker whose partition owned it,
/// so recovery can enforce the per-worker batch-index ordering invariant;
/// single-node journals omit the field (and old journals never had it).
pub fn batch_record_tagged(
    batch_index: usize,
    batch: &[VId],
    outcome: &BatchOutcome,
    fanout: usize,
    worker: Option<usize>,
) -> Json {
    let mut pairs = vec![
        ("type", "batch".into()),
        ("batch_index", batch_index.into()),
        (
            "batch",
            Json::Arr(batch.iter().map(|&v| Json::from(v as u64)).collect()),
        ),
        ("fanout", fanout.into()),
        ("outcome", outcome.to_json()),
    ];
    if let Some(w) = worker {
        pairs.push(("worker", w.into()));
    }
    obj(pairs)
}

/// The record the cluster supervisor appends when a straggler hedge
/// resolves: which batch was hedged, the slow worker, the backup that ran
/// the duplicate, and which copy won. Replay skips these (they annotate
/// the schedule, not the outcome stream), but the hedge counters must
/// reconcile exactly against them.
pub fn hedge_record(batch_index: usize, victim: usize, backup: usize, backup_won: bool) -> Json {
    obj([
        ("type", "hedge".into()),
        ("batch_index", batch_index.into()),
        ("victim", victim.into()),
        ("backup", backup.into()),
        ("backup_won", Json::Bool(backup_won)),
    ])
}

/// The record appended when a batch is quarantined — the
/// [`QuarantineRecord`]'s own `ToJson` form, wrapped with a type tag.
pub fn quarantine_record(rec: &QuarantineRecord) -> Json {
    obj([("type", "quarantine".into()), ("record", rec.to_json())])
}

/// The marker appended after a checkpoint save commits: which batch the
/// parameters reflect and the CRC-32 of the full checkpoint image, so
/// replay can verify the recovered parameters byte-for-byte.
pub fn checkpoint_record(batch_index: usize, image_crc: u32) -> Json {
    obj([
        ("type", "checkpoint".into()),
        ("batch_index", batch_index.into()),
        ("image_crc", (image_crc as u64).into()),
    ])
}

/// A record's `"type"` tag.
pub fn record_type(rec: &Json) -> Option<&str> {
    rec.get("type").and_then(|t| t.as_str())
}

/// A batch record's vertex ids.
pub fn batch_ids(rec: &Json) -> Option<Vec<VId>> {
    let arr = rec.get("batch")?.as_arr()?;
    arr.iter()
        .map(|v| v.as_f64().map(|f| f as VId))
        .collect::<Option<Vec<VId>>>()
}

/// A record's `"batch_index"` field.
pub fn record_batch_index(rec: &Json) -> Option<usize> {
    rec.get("batch_index")
        .and_then(|v| v.as_f64())
        .map(|f| f as usize)
}

/// A batch record's `"fanout"` field (absent in journals written before
/// the field existed; replay then uses the configured fanout).
pub fn record_fanout(rec: &Json) -> Option<usize> {
    rec.get("fanout")
        .and_then(|v| v.as_f64())
        .map(|f| f as usize)
}

/// A batch record's owning-worker tag (absent for single-node journals).
pub fn record_worker(rec: &Json) -> Option<usize> {
    rec.get("worker")
        .and_then(|v| v.as_f64())
        .map(|f| f as usize)
}

/// A hedge record's `(victim, backup, backup_won)` triple.
pub fn hedge_fields(rec: &Json) -> Option<(usize, usize, bool)> {
    let victim = rec.get("victim")?.as_f64()? as usize;
    let backup = rec.get("backup")?.as_f64()? as usize;
    let won = matches!(rec.get("backup_won")?, Json::Bool(true));
    Some((victim, backup, won))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FailReason;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gt_journal_{name}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<Json> {
        vec![
            batch_record(0, &[1, 2, 3], &BatchOutcome::Succeeded, 4),
            batch_record(1, &[4, 5], &BatchOutcome::Recovered { retries: 2 }, 4),
            quarantine_record(&QuarantineRecord {
                batch_index: 2,
                batch: vec![9, 9],
                reason: FailReason::InvalidBatch,
                attempts: 0,
            }),
            checkpoint_record(2, 0xDEAD_BEEF),
        ]
    }

    #[test]
    fn roundtrip_preserves_records() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("outcomes.gtj");
        let mut j = Journal::create(&path).unwrap();
        let recs = sample_records();
        for r in &recs {
            j.append(r).unwrap();
        }
        drop(j);
        let s = read_journal(&path).unwrap();
        assert!(!s.torn_tail);
        assert_eq!(s.records, recs);
        assert_eq!(s.valid_len, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_accessors() {
        let r = batch_record(7, &[10, 20], &BatchOutcome::Succeeded, 6);
        assert_eq!(record_type(&r), Some("batch"));
        assert_eq!(record_batch_index(&r), Some(7));
        assert_eq!(batch_ids(&r), Some(vec![10, 20]));
        assert_eq!(record_fanout(&r), Some(6));
        assert_eq!(record_worker(&r), None, "untagged batch has no worker");
        let c = checkpoint_record(3, 42);
        assert_eq!(record_type(&c), Some("checkpoint"));
        assert_eq!(batch_ids(&c), None);
        assert_eq!(record_fanout(&c), None);
    }

    #[test]
    fn worker_tagged_and_hedge_records_round_trip() {
        let r = batch_record_tagged(5, &[8, 9], &BatchOutcome::Succeeded, 6, Some(2));
        assert_eq!(record_type(&r), Some("batch"));
        assert_eq!(record_worker(&r), Some(2));
        assert_eq!(record_batch_index(&r), Some(5));
        // The tag is additive: every untagged accessor still works.
        assert_eq!(batch_ids(&r), Some(vec![8, 9]));
        assert_eq!(record_fanout(&r), Some(6));

        let h = hedge_record(5, 1, 3, true);
        assert_eq!(record_type(&h), Some("hedge"));
        assert_eq!(record_batch_index(&h), Some(5));
        assert_eq!(hedge_fields(&h), Some((1, 3, true)));
        assert_eq!(hedge_fields(&r), None);

        // Both survive the framed on-disk round trip.
        let dir = tmp_dir("tagged");
        let path = dir.join("outcomes.gtj");
        let mut j = Journal::create(&path).unwrap();
        j.append(&r).unwrap();
        j.append(&h).unwrap();
        drop(j);
        let s = read_journal(&path).unwrap();
        assert_eq!(s.records, vec![r, h]);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncate a journal at EVERY byte length: the scan must never panic,
    /// never error (the damage is at the tail), and always return the
    /// longest prefix of whole records.
    #[test]
    fn truncation_sweep_recovers_valid_prefix() {
        let mut bytes = MAGIC.to_vec();
        let recs = sample_records();
        let mut boundaries = vec![bytes.len()];
        for r in &recs {
            let frame = Journal::frame(&r.to_json_string());
            bytes.extend_from_slice(&frame);
            boundaries.push(bytes.len());
        }
        for cut in MAGIC.len()..=bytes.len() {
            let s = scan(&bytes[..cut]).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(s.records.len(), whole, "cut at {cut}");
            assert_eq!(s.records[..], recs[..whole], "cut at {cut}");
            assert_eq!(s.valid_len, boundaries[whole] as u64, "cut at {cut}");
            assert_eq!(s.torn_tail, cut != boundaries[whole], "cut at {cut}");
        }
        // Cutting into the magic itself is unrecoverable corruption.
        for cut in 0..MAGIC.len() {
            assert!(matches!(
                scan(&bytes[..cut]),
                Err(GtError::CorruptJournal { .. })
            ));
        }
    }

    /// Flip a byte at every offset: either the valid prefix survives (tail
    /// damage) or a typed CorruptJournal comes back — never a panic, never
    /// a wrong record.
    #[test]
    fn corruption_sweep_typed_errors_only() {
        let mut bytes = MAGIC.to_vec();
        let recs = sample_records();
        for r in &recs {
            bytes.extend_from_slice(&Journal::frame(&r.to_json_string()));
        }
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x40;
            match scan(&copy) {
                Ok(s) => {
                    for (got, want) in s.records.iter().zip(&recs) {
                        assert_eq!(got, want, "flip at {i} produced a wrong record");
                    }
                    assert!(
                        s.records.len() < recs.len() || i >= bytes.len() - 1,
                        "flip at {i} went unnoticed"
                    );
                }
                Err(GtError::CorruptJournal { .. }) => {}
                Err(e) => panic!("flip at {i}: unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn torn_append_is_dropped_and_truncated() {
        let dir = tmp_dir("torn");
        let path = dir.join("outcomes.gtj");
        let mut j = Journal::create(&path).unwrap();
        let full = batch_record(0, &[1], &BatchOutcome::Succeeded, 4);
        j.append(&full).unwrap();
        j.append_torn(&batch_record(1, &[2], &BatchOutcome::Succeeded, 4))
            .unwrap();
        drop(j);
        let s = read_journal(&path).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.records, vec![full.clone()]);
        truncate_to(&path, s.valid_len).unwrap();
        // After truncation the journal is clean and appendable again.
        let mut j = Journal::open_append(&path).unwrap();
        let next = batch_record(1, &[2], &BatchOutcome::Succeeded, 4);
        j.append(&next).unwrap();
        drop(j);
        let s = read_journal(&path).unwrap();
        assert!(!s.torn_tail);
        assert_eq!(s.records, vec![full, next]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn midfile_corruption_is_a_typed_error() {
        let mut bytes = MAGIC.to_vec();
        let recs = sample_records();
        for r in &recs {
            bytes.extend_from_slice(&Journal::frame(&r.to_json_string()));
        }
        // Flip one payload byte of the FIRST record (offset 16 is inside
        // its payload); valid records follow, so this is not a torn tail.
        bytes[20] ^= 0x01;
        match scan(&bytes) {
            Err(GtError::CorruptJournal { offset, .. }) => assert_eq!(offset, 8),
            other => panic!("expected CorruptJournal, got {other:?}"),
        }
    }

    /// A corrupt length field past the record ceiling is typed corruption,
    /// rejected before any reader could size an allocation from it. It is
    /// NOT a torn tail: a torn append leaves a prefix of a valid frame, so
    /// a fully-present absurd length can only be bit rot or tampering.
    #[test]
    fn huge_length_claim_is_corruption_not_torn_tail() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // len: 4 GiB
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"tiny");
        match scan(&bytes) {
            Err(GtError::CorruptJournal { offset, detail }) => {
                assert_eq!(offset, MAGIC.len() as u64);
                assert!(detail.contains("ceiling"), "{detail}");
            }
            other => panic!("expected CorruptJournal, got {other:?}"),
        }
        // Just under the ceiling the length is plausible, so a record that
        // extends past end-of-file is still handled as a torn tail.
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&(MAX_RECORD_LEN as u32).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"tiny");
        let s = scan(&bytes).unwrap();
        assert!(s.torn_tail);
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, MAGIC.len() as u64);
    }

    /// Journal reads validate byte counts against metadata: a short read
    /// must surface as a retryable I/O error, not scan the truncated
    /// buffer (which would silently drop committed records as a "torn
    /// tail" and replay as data loss).
    #[test]
    fn short_read_is_retryable_not_data_loss() {
        let dir = tmp_dir("short_read");
        let path = dir.join("outcomes.gtj");
        let mut j = Journal::create(&path).unwrap();
        for r in &sample_records() {
            j.append(r).unwrap();
        }
        drop(j);
        let _g = gt_tensor::chaosio::arm(&[(IoTarget::Journal, gt_sim::IoFault::ShortRead)]);
        match read_journal(&path) {
            Err(GtError::Io { detail }) => assert!(detail.contains("short read"), "{detail}"),
            other => panic!("expected retryable Io error, got {other:?}"),
        }
        // The fault was consumed; the retry sees every record.
        let s = read_journal(&path).unwrap();
        assert_eq!(s.records.len(), sample_records().len());
        assert!(!s.torn_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Injected journal append faults leave exactly the residue recovery
    /// is built for: a torn half-frame (truncatable tail), nothing at all
    /// (ENOSPC), or a CRC-detectable flipped record.
    #[test]
    fn injected_append_faults_leave_recoverable_residue() {
        use gt_sim::IoFault;
        let dir = tmp_dir("inject");
        let path = dir.join("outcomes.gtj");
        let rec = batch_record(0, &[1], &BatchOutcome::Succeeded, 4);

        // Torn write: valid prefix survives, tail truncates away.
        let mut j = Journal::create(&path).unwrap();
        j.append(&rec).unwrap();
        let g = gt_tensor::chaosio::arm(&[(IoTarget::Journal, IoFault::TornWrite)]);
        assert!(j.append(&rec).is_err());
        drop(g);
        let s = read_journal(&path).unwrap();
        assert!(s.torn_tail);
        assert_eq!(s.records, vec![rec.clone()]);

        // ENOSPC: nothing persisted, journal still clean after truncation.
        truncate_to(&path, s.valid_len).unwrap();
        let mut j = Journal::open_append(&path).unwrap();
        let g = gt_tensor::chaosio::arm(&[(IoTarget::Journal, IoFault::Enospc)]);
        assert!(j.append(&rec).is_err());
        drop(g);
        let s = read_journal(&path).unwrap();
        assert!(!s.torn_tail);
        assert_eq!(s.records, vec![rec.clone()]);

        // Bit flip: append "succeeds" but the CRC framing catches it —
        // either a droppable tail or typed corruption, never a wrong
        // record (the corruption-sweep test covers every flip position).
        let g = gt_tensor::chaosio::arm(&[(IoTarget::Journal, IoFault::BitFlip { bit: 70 })]);
        j.append(&rec).unwrap();
        drop(g);
        match read_journal(&path) {
            Ok(s) => assert_eq!(s.records, vec![rec.clone()], "flip must not alter records"),
            Err(GtError::CorruptJournal { .. }) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
