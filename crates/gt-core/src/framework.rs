//! The common interface every evaluated framework implements, plus the
//! per-batch report all figures are computed from.
//!
//! The paper compares PyG, DGL, GNNAdvisor, SALIENT, and three GraphTensor
//! variants on identical workloads; implementing them behind one trait on
//! one substrate is what makes the comparison apples-to-apples.

use crate::data::GraphData;
use gt_graph::VId;
use gt_sim::{Phase, Schedule, SimContext};

/// Qualitative properties of a framework — one row of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameworkTraits {
    /// Storage format the framework keeps resident ("CSR" or "COO").
    pub initial_format: &'static str,
    /// Suffers GPU memory bloat (sparse→dense conversion)?
    pub memory_bloat: bool,
    /// Performs GPU format translation per batch?
    pub format_translation: bool,
    /// Suffers GPU cache bloat (edge-wise scheduling)?
    pub cache_bloat: bool,
    /// Preprocessing overhead: `'O'` high, `'D'` partial (△), `'X'` none.
    pub prepro_overhead: char,
}

/// Everything measured while training one batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Training loss of the batch.
    pub loss: f32,
    /// GPU-side accounting (kernel records, memory peaks, counters).
    pub sim: SimContext,
    /// DES schedule of the preprocessing, when the framework models one.
    pub prepro: Option<Schedule>,
    /// Sampled nodes this batch.
    pub num_nodes: usize,
    /// Sampled edges this batch (all hops).
    pub num_edges: usize,
    /// Device out-of-memory, if the run exceeded GPU capacity.
    pub oom: Option<String>,
}

impl BatchReport {
    /// Modeled GPU compute latency (all non-preprocessing phases), µs.
    pub fn gpu_us(&self) -> f64 {
        self.sim
            .records()
            .iter()
            .filter(|r| !r.phase.is_preprocessing())
            .map(|r| r.modeled_us)
            .sum()
    }

    /// GPU latency of one phase, µs.
    pub fn phase_us(&self, phase: Phase) -> f64 {
        self.sim.phase_us(phase)
    }

    /// Preprocessing makespan, µs (0 when not modeled).
    pub fn prepro_us(&self) -> f64 {
        self.prepro.as_ref().map_or(0.0, |s| s.makespan_us)
    }

    /// Steady-state end-to-end batch latency: frameworks that overlap
    /// preprocessing with the previous batch's GPU work pay the max of the
    /// two; others pay the sum (§VI-B).
    pub fn e2e_us(&self, overlapped: bool) -> f64 {
        let p = self.prepro_us();
        let g = self.gpu_us();
        if overlapped {
            p.max(g)
        } else {
            p + g
        }
    }
}

/// A GNN training framework under evaluation.
pub trait Framework {
    /// Display name ("DGL", "Dynamic-GT", ...).
    fn name(&self) -> String;

    /// Table III row.
    fn traits(&self) -> FrameworkTraits;

    /// Whether preprocessing overlaps the previous batch's GPU compute
    /// ("a common practice for the existing deep learning frameworks").
    fn overlaps_batches(&self) -> bool;

    /// Train one batch end to end (preprocess, FWP, BWP, SGD step).
    fn train_batch(&mut self, data: &GraphData, batch: &[VId]) -> BatchReport;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::DeviceSpec;

    #[test]
    fn e2e_overlap_semantics() {
        let mut sim = SimContext::new(DeviceSpec::tiny());
        sim.record_gpu(
            Phase::Aggregation,
            gt_sim::KernelStats {
                flops: 100_000_000, // 1000 µs on tiny
                ..Default::default()
            },
        );
        let mut s = gt_sim::Simulator::new(1);
        s.add(gt_sim::TaskSpec::new(
            "S",
            gt_sim::Resource::HostCore,
            400.0,
            Phase::Sampling,
        ));
        let report = BatchReport {
            loss: 0.0,
            sim,
            prepro: Some(s.run()),
            num_nodes: 1,
            num_edges: 1,
            oom: None,
        };
        let g = report.gpu_us();
        assert!((report.e2e_us(true) - g.max(400.0)).abs() < 1e-6);
        assert!((report.e2e_us(false) - (g + 400.0)).abs() < 1e-6);
    }
}
