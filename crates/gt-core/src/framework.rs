//! The common interface every evaluated framework implements, plus the
//! per-batch report all figures are computed from.
//!
//! The paper compares PyG, DGL, GNNAdvisor, SALIENT, and three GraphTensor
//! variants on identical workloads; implementing them behind one trait on
//! one substrate is what makes the comparison apples-to-apples.

use crate::data::GraphData;
use gt_graph::VId;
use gt_sim::{Phase, Schedule, SimContext};

/// Qualitative properties of a framework — one row of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameworkTraits {
    /// Storage format the framework keeps resident ("CSR" or "COO").
    pub initial_format: &'static str,
    /// Suffers GPU memory bloat (sparse→dense conversion)?
    pub memory_bloat: bool,
    /// Performs GPU format translation per batch?
    pub format_translation: bool,
    /// Suffers GPU cache bloat (edge-wise scheduling)?
    pub cache_bloat: bool,
    /// Preprocessing overhead: `'O'` high, `'D'` partial (△), `'X'` none.
    pub prepro_overhead: char,
}

/// Why a batch failed (or kept failing) under the serving supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// A host→device transfer failed (fault-injected or real).
    TransferFailure,
    /// The batch exceeded device memory.
    OutOfMemory,
    /// The batch itself was invalid (empty, out-of-range vertex ids).
    InvalidBatch,
    /// Preprocessing repeatedly exceeded its latency budget.
    PreproStall,
}

/// A degradation the supervisor applied to get a batch through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// The batch was shrunk to fit device memory.
    HalvedBatch {
        /// Original batch size.
        from: usize,
        /// Size actually trained.
        to: usize,
    },
    /// Preprocessing fell back from the pipelined strategy to serialized.
    SerializedPrepro,
    /// The overload gateway reduced the sampling fanout to cut per-batch
    /// work while the admission queue drains.
    ReducedFanout {
        /// Configured fanout.
        from: usize,
        /// Fanout actually sampled with.
        to: usize,
    },
    /// Both overload rungs at once: the queue was deep enough that the
    /// batch was halved *and* sampled with reduced fanout. Reported as one
    /// composed action so the caller (and the degrade telemetry) sees the
    /// full extent of what it gave up.
    HalvedBatchReducedFanout {
        /// Original batch size.
        from: usize,
        /// Size actually trained.
        to: usize,
        /// Configured fanout.
        fanout_from: usize,
        /// Fanout actually sampled with.
        fanout_to: usize,
    },
}

/// Why the overload gateway refused to serve a batch at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The admission queue was full when the request arrived.
    QueueFull,
    /// The request waited (or provably would wait) past its deadline;
    /// serving it would return an answer nobody is waiting for anymore.
    DeadlineExpired,
    /// The tenant's token-bucket quota was exhausted at admission; one
    /// tenant's burst may not starve the others.
    QuotaExceeded,
}

impl ShedCause {
    /// Stable kebab-case label used in telemetry events and JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            ShedCause::QueueFull => "queue-full",
            ShedCause::DeadlineExpired => "deadline-expired",
            ShedCause::QuotaExceeded => "quota-exceeded",
        }
    }
}

/// Structured outcome of one serving attempt ladder.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BatchOutcome {
    /// First attempt trained cleanly.
    #[default]
    Succeeded,
    /// Trained after retrying transient faults.
    Recovered {
        /// Retries spent before success.
        retries: usize,
    },
    /// Trained, but only after a degradation (smaller batch, serialized
    /// preprocessing).
    Degraded {
        /// What was given up.
        action: DegradeAction,
        /// Retries spent before success.
        retries: usize,
    },
    /// A single attempt failed (trainer-level fail-fast report; the
    /// supervisor turns these into retries or quarantine).
    Failed {
        /// Why the attempt failed.
        reason: FailReason,
    },
    /// Every attempt failed; the batch was quarantined.
    Quarantined {
        /// The final failure reason.
        reason: FailReason,
        /// Attempts spent (including the first).
        attempts: usize,
    },
    /// The overload gateway dropped the batch without serving it (queue
    /// overflow or an expired deadline). No training step happened.
    Shed {
        /// Why the gateway refused the batch.
        cause: ShedCause,
    },
}

impl FailReason {
    /// Stable kebab-case label used in telemetry events and JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            FailReason::TransferFailure => "transfer-failure",
            FailReason::OutOfMemory => "out-of-memory",
            FailReason::InvalidBatch => "invalid-batch",
            FailReason::PreproStall => "prepro-stall",
        }
    }
}

impl BatchOutcome {
    /// True when the batch produced a committed training step.
    pub fn trained(&self) -> bool {
        matches!(
            self,
            BatchOutcome::Succeeded
                | BatchOutcome::Recovered { .. }
                | BatchOutcome::Degraded { .. }
        )
    }

    /// Stable kebab-case label used in telemetry events and JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            BatchOutcome::Succeeded => "succeeded",
            BatchOutcome::Recovered { .. } => "recovered",
            BatchOutcome::Degraded { .. } => "degraded",
            BatchOutcome::Failed { .. } => "failed",
            BatchOutcome::Quarantined { .. } => "quarantined",
            BatchOutcome::Shed { .. } => "shed",
        }
    }
}

/// Everything measured while training one batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Training loss of the batch.
    pub loss: f32,
    /// GPU-side accounting (kernel records, memory peaks, counters).
    pub sim: SimContext,
    /// DES schedule of the preprocessing, when the framework models one.
    pub prepro: Option<Schedule>,
    /// Sampled nodes this batch.
    pub num_nodes: usize,
    /// Sampled edges this batch (all hops).
    pub num_edges: usize,
    /// Device out-of-memory, if the run exceeded GPU capacity.
    pub oom: Option<String>,
    /// How the batch resolved (always `Succeeded` outside the supervisor).
    pub outcome: BatchOutcome,
    /// Handle to the telemetry (spans, events, metrics) recorded while this
    /// batch ran; [`gt_telemetry::Telemetry::null`] unless the trainer was
    /// given a recording handle.
    pub telemetry: gt_telemetry::Telemetry,
}

impl BatchReport {
    /// Modeled GPU compute latency (all non-preprocessing phases), µs.
    pub fn gpu_us(&self) -> f64 {
        self.sim
            .records()
            .iter()
            .filter(|r| !r.phase.is_preprocessing())
            .map(|r| r.modeled_us)
            .sum()
    }

    /// GPU latency of one phase, µs.
    pub fn phase_us(&self, phase: Phase) -> f64 {
        self.sim.phase_us(phase)
    }

    /// Preprocessing makespan, µs (0 when not modeled).
    pub fn prepro_us(&self) -> f64 {
        self.prepro.as_ref().map_or(0.0, |s| s.makespan_us)
    }

    /// Steady-state end-to-end batch latency: frameworks that overlap
    /// preprocessing with the previous batch's GPU work pay the max of the
    /// two; others pay the sum (§VI-B).
    pub fn e2e_us(&self, overlapped: bool) -> f64 {
        let p = self.prepro_us();
        let g = self.gpu_us();
        if overlapped {
            p.max(g)
        } else {
            p + g
        }
    }
}

/// A GNN training framework under evaluation.
pub trait Framework {
    /// Display name ("DGL", "Dynamic-GT", ...).
    fn name(&self) -> String;

    /// Table III row.
    fn traits(&self) -> FrameworkTraits;

    /// Whether preprocessing overlaps the previous batch's GPU compute
    /// ("a common practice for the existing deep learning frameworks").
    fn overlaps_batches(&self) -> bool;

    /// Train one batch end to end (preprocess, FWP, BWP, SGD step).
    fn train_batch(&mut self, data: &GraphData, batch: &[VId]) -> BatchReport;
}

/// Machine-readable forms for the serving/report types, implemented over
/// the in-tree JSON layer (the offline build cannot vendor serde proper;
/// see gt-telemetry's crate docs). Unconditional: the write-ahead outcome
/// journal serializes through these exact impls, so telemetry exports and
/// journal records are produced by one serializer.
mod machine_readable {
    use super::*;
    use gt_telemetry::json::obj;
    use gt_telemetry::{Json, ToJson};

    impl ToJson for FailReason {
        fn to_json(&self) -> Json {
            Json::from(self.label())
        }
    }

    impl ToJson for DegradeAction {
        fn to_json(&self) -> Json {
            match self {
                DegradeAction::HalvedBatch { from, to } => obj([
                    ("action", "halved-batch".into()),
                    ("from", (*from).into()),
                    ("to", (*to).into()),
                ]),
                DegradeAction::SerializedPrepro => obj([("action", "serialized-prepro".into())]),
                DegradeAction::ReducedFanout { from, to } => obj([
                    ("action", "reduced-fanout".into()),
                    ("from", (*from).into()),
                    ("to", (*to).into()),
                ]),
                DegradeAction::HalvedBatchReducedFanout {
                    from,
                    to,
                    fanout_from,
                    fanout_to,
                } => obj([
                    ("action", "halved-batch+reduced-fanout".into()),
                    ("from", (*from).into()),
                    ("to", (*to).into()),
                    ("fanout_from", (*fanout_from).into()),
                    ("fanout_to", (*fanout_to).into()),
                ]),
            }
        }
    }

    impl ToJson for ShedCause {
        fn to_json(&self) -> Json {
            Json::from(self.label())
        }
    }

    impl ToJson for BatchOutcome {
        fn to_json(&self) -> Json {
            let mut pairs = vec![("outcome", Json::from(self.label()))];
            match self {
                BatchOutcome::Succeeded => {}
                BatchOutcome::Recovered { retries } => pairs.push(("retries", (*retries).into())),
                BatchOutcome::Degraded { action, retries } => {
                    pairs.push(("action", action.to_json()));
                    pairs.push(("retries", (*retries).into()));
                }
                BatchOutcome::Failed { reason } => pairs.push(("reason", reason.to_json())),
                BatchOutcome::Quarantined { reason, attempts } => {
                    pairs.push(("reason", reason.to_json()));
                    pairs.push(("attempts", (*attempts).into()));
                }
                BatchOutcome::Shed { cause } => pairs.push(("cause", cause.to_json())),
            }
            obj(pairs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::DeviceSpec;

    #[test]
    fn e2e_overlap_semantics() {
        let mut sim = SimContext::new(DeviceSpec::tiny());
        sim.record_gpu(
            Phase::Aggregation,
            gt_sim::KernelStats {
                flops: 100_000_000, // 1000 µs on tiny
                ..Default::default()
            },
        );
        let mut s = gt_sim::Simulator::new(1);
        s.add(gt_sim::TaskSpec::new(
            "S",
            gt_sim::Resource::HostCore,
            400.0,
            Phase::Sampling,
        ));
        let report = BatchReport {
            loss: 0.0,
            sim,
            prepro: Some(s.run()),
            num_nodes: 1,
            num_edges: 1,
            oom: None,
            outcome: BatchOutcome::Succeeded,
            telemetry: gt_telemetry::Telemetry::null(),
        };
        let g = report.gpu_us();
        assert!((report.e2e_us(true) - g.max(400.0)).abs() < 1e-6);
        assert!((report.e2e_us(false) - (g + 400.0)).abs() < 1e-6);
    }

    #[test]
    fn outcomes_render_to_json() {
        use crate::framework::DegradeAction;
        use gt_telemetry::ToJson;
        let o = BatchOutcome::Degraded {
            action: DegradeAction::HalvedBatch { from: 64, to: 16 },
            retries: 2,
        };
        let j = o.to_json();
        assert_eq!(j.get("outcome").unwrap().as_str(), Some("degraded"));
        let action = j.get("action").unwrap();
        assert_eq!(action.get("from").unwrap().as_f64(), Some(64.0));
        assert_eq!(action.get("to").unwrap().as_f64(), Some(16.0));

        let q = BatchOutcome::Quarantined {
            reason: FailReason::OutOfMemory,
            attempts: 4,
        };
        let text = q.to_json().to_json_string();
        assert!(text.contains("\"quarantined\""));
        assert!(text.contains("\"out-of-memory\""));
    }
}
