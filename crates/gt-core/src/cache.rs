//! Skew-exploiting serving caches.
//!
//! Million-user query streams are heavily skewed: a small hot set of
//! vertices draws most lookups (the power-law access pattern of GNN
//! inference), and popular queries repeat verbatim. Two caches exploit
//! that inside [`Supervisor::serve_batch`](crate::serve::Supervisor::serve_batch):
//!
//! * the **historical-embedding cache** — a bounded LRU over vertex ids.
//!   A hit means the vertex's embedding row was fetched recently and the
//!   feature-lookup (K) phase need not re-fetch it; the modeled lookup
//!   time shrinks by the batch's hit fraction.
//! * the **sampled-subgraph cache** — keyed by `(vertex-set digest,
//!   fanout, epoch)`. A hit means the exact query (same vertex set, same
//!   fanout, same parameter epoch) was sampled recently, so the sampling
//!   (S) and reindex (R) phases are skipped entirely.
//!
//! Both caches shape *modeled service time only*: the trainer still runs
//! every batch, so parameters, journal records, and checkpoint CRCs are
//! byte-identical with caches on or off — the caches are a serving-latency
//! optimization, not a numerics change. Savings are capped at the batch's
//! preprocessing makespan and priced by the gateway
//! ([`Gateway`](crate::overload::Gateway)) when it charges service time.
//!
//! **Invalidation.** The subgraph key includes a parameter *epoch* that
//! bumps on every committed checkpoint, so entries sampled against stale
//! parameters age out naturally. A checkpoint restore
//! ([`Supervisor::recover`](crate::serve::Supervisor::recover)) resets both
//! caches to empty at epoch 0 and lets the deterministic journal replay
//! repopulate them — a recovered process therefore reaches the exact cache
//! state (and hit counters) the crashed one had.
//!
//! **Determinism.** Eviction is strict least-recently-used with ties
//! impossible (a global use tick orders every touch); no hash-map
//! iteration order ever influences behavior, so cache decisions are
//! bit-identical across `GT_THREADS` widths and machines.

use gt_graph::VId;
use std::collections::{BTreeSet, HashMap};

/// Sizing of the serving caches.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Vertices retained by the historical-embedding cache (0 disables it).
    pub embedding_capacity: usize,
    /// Entries retained by the sampled-subgraph cache (0 disables it).
    pub subgraph_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            embedding_capacity: 4096,
            subgraph_capacity: 256,
        }
    }
}

/// A bounded LRU set with deterministic eviction: every touch gets a
/// fresh global tick, and eviction always removes the smallest
/// `(tick, key)` pair — never anything order-dependent.
#[derive(Debug)]
struct Lru<K: Copy + Ord + std::hash::Hash> {
    capacity: usize,
    tick: u64,
    last_use: HashMap<K, u64>,
    order: BTreeSet<(u64, K)>,
}

impl<K: Copy + Ord + std::hash::Hash> Lru<K> {
    fn new(capacity: usize) -> Self {
        Lru {
            capacity,
            tick: 0,
            last_use: HashMap::new(),
            order: BTreeSet::new(),
        }
    }

    /// Look `key` up, refreshing its recency on a hit.
    fn lookup(&mut self, key: K) -> bool {
        let Some(t) = self.last_use.get_mut(&key) else {
            return false;
        };
        self.tick += 1;
        self.order.remove(&(*t, key));
        *t = self.tick;
        self.order.insert((self.tick, key));
        true
    }

    /// Insert `key` as most recent, evicting the least recent at capacity.
    fn insert(&mut self, key: K) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(t) = self.last_use.get_mut(&key) {
            self.order.remove(&(*t, key));
            *t = self.tick;
        } else {
            if self.last_use.len() >= self.capacity {
                let oldest = *self.order.iter().next().expect("non-empty at capacity");
                self.order.remove(&oldest);
                self.last_use.remove(&oldest.1);
            }
            self.last_use.insert(key, self.tick);
        }
        self.order.insert((self.tick, key));
    }

    fn len(&self) -> usize {
        self.last_use.len()
    }

    fn clear(&mut self) {
        self.tick = 0;
        self.last_use.clear();
        self.order.clear();
    }
}

/// What the caches said about one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLookup {
    /// Batch vertices whose embedding row was cached.
    pub embedding_hits: usize,
    /// Batch vertices in total (the hit-fraction denominator).
    pub batch_len: usize,
    /// True when the exact sampled subgraph was cached.
    pub subgraph_hit: bool,
}

/// Running totals, for hit-rate metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Embedding-cache hits across all batches.
    pub embedding_hits: u64,
    /// Embedding-cache misses across all batches.
    pub embedding_misses: u64,
    /// Subgraph-cache hits across all batches.
    pub subgraph_hits: u64,
    /// Subgraph-cache misses across all batches.
    pub subgraph_misses: u64,
    /// Modeled preprocessing µs saved in total.
    pub saved_us: f64,
}

impl CacheStats {
    /// Embedding hit rate in [0, 1] (0 before any lookup).
    pub fn embedding_hit_rate(&self) -> f64 {
        let total = self.embedding_hits + self.embedding_misses;
        if total == 0 {
            0.0
        } else {
            self.embedding_hits as f64 / total as f64
        }
    }

    /// Subgraph hit rate in [0, 1] (0 before any lookup).
    pub fn subgraph_hit_rate(&self) -> f64 {
        let total = self.subgraph_hits + self.subgraph_misses;
        if total == 0 {
            0.0
        } else {
            self.subgraph_hits as f64 / total as f64
        }
    }
}

/// FNV-1a over the sorted vertex set plus fanout and epoch — the
/// order-insensitive identity of one sampled-subgraph query.
fn subgraph_key(batch: &[VId], fanout: usize, epoch: u64) -> u64 {
    let mut ids: Vec<VId> = batch.to_vec();
    ids.sort_unstable();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for id in ids {
        mix(id as u64);
    }
    mix(fanout as u64);
    mix(epoch);
    h
}

/// Both serving caches plus their accounting, owned by the
/// [`Supervisor`](crate::serve::Supervisor) when caching is enabled.
#[derive(Debug)]
pub struct ServingCaches {
    config: CacheConfig,
    embedding: Lru<VId>,
    subgraph: Lru<u64>,
    epoch: u64,
    stats: CacheStats,
    /// Modeled µs the *last* batch saved — read by the gateway's pricing.
    last_saved_us: f64,
}

impl ServingCaches {
    /// Empty caches sized by `config`, at parameter epoch 0.
    pub fn new(config: CacheConfig) -> Self {
        ServingCaches {
            embedding: Lru::new(config.embedding_capacity),
            subgraph: Lru::new(config.subgraph_capacity),
            config,
            epoch: 0,
            stats: CacheStats::default(),
            last_saved_us: 0.0,
        }
    }

    /// Consult both caches for `batch` sampled at `fanout`, then populate
    /// them (misses inserted, hits refreshed).
    pub fn consult(&mut self, batch: &[VId], fanout: usize) -> CacheLookup {
        let mut embedding_hits = 0usize;
        for &v in batch {
            if self.embedding.lookup(v) {
                embedding_hits += 1;
            } else {
                self.embedding.insert(v);
            }
        }
        let key = subgraph_key(batch, fanout, self.epoch);
        let subgraph_hit = self.subgraph.lookup(key);
        if !subgraph_hit {
            self.subgraph.insert(key);
        }
        self.stats.embedding_hits += embedding_hits as u64;
        self.stats.embedding_misses += (batch.len() - embedding_hits) as u64;
        if subgraph_hit {
            self.stats.subgraph_hits += 1;
        } else {
            self.stats.subgraph_misses += 1;
        }
        CacheLookup {
            embedding_hits,
            batch_len: batch.len(),
            subgraph_hit,
        }
    }

    /// Record the modeled µs the last batch saved (already capped by the
    /// caller at the batch's preprocessing makespan).
    pub fn note_saved(&mut self, saved_us: f64) {
        self.last_saved_us = saved_us;
        self.stats.saved_us += saved_us;
    }

    /// Modeled µs the most recent batch saved (0 when the last batch
    /// missed everything or none was served yet).
    pub fn last_saved_us(&self) -> f64 {
        self.last_saved_us
    }

    /// Current parameter epoch (part of the subgraph key).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the parameter epoch — called on every committed checkpoint,
    /// so subgraph entries sampled against older parameters stop matching.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Drop everything and return to epoch 0 — called on checkpoint
    /// restore, so the deterministic replay rebuilds the exact cache state
    /// the crashed process had.
    pub fn reset(&mut self) {
        self.embedding.clear();
        self.subgraph.clear();
        self.epoch = 0;
        self.stats = CacheStats::default();
        self.last_saved_us = 0.0;
    }

    /// Running totals.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Vertices currently cached.
    pub fn embedding_len(&self) -> usize {
        self.embedding.len()
    }

    /// Subgraph entries currently cached.
    pub fn subgraph_len(&self) -> usize {
        self.subgraph.len()
    }

    /// The sizing this instance was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used_deterministically() {
        let mut lru = Lru::new(2);
        lru.insert(1u32);
        lru.insert(2);
        assert!(lru.lookup(1)); // refresh 1; 2 is now oldest
        lru.insert(3); // evicts 2
        assert!(lru.lookup(1));
        assert!(lru.lookup(3));
        assert!(!lru.lookup(2));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_without_panicking() {
        let mut c = ServingCaches::new(CacheConfig {
            embedding_capacity: 0,
            subgraph_capacity: 0,
        });
        let l = c.consult(&[1, 2, 3], 4);
        assert_eq!(l.embedding_hits, 0);
        assert!(!l.subgraph_hit);
        let l = c.consult(&[1, 2, 3], 4);
        assert_eq!(l.embedding_hits, 0, "disabled cache must never hit");
        assert!(!l.subgraph_hit);
    }

    #[test]
    fn repeated_query_hits_subgraph_and_embeddings() {
        let mut c = ServingCaches::new(CacheConfig::default());
        let batch = [5u32, 9, 2];
        let first = c.consult(&batch, 6);
        assert_eq!(first.embedding_hits, 0);
        assert!(!first.subgraph_hit);
        // Same vertex set in a different order is the same query.
        let second = c.consult(&[2u32, 5, 9], 6);
        assert_eq!(second.embedding_hits, 3);
        assert!(second.subgraph_hit);
        // A different fanout is a different subgraph.
        let third = c.consult(&batch, 3);
        assert_eq!(third.embedding_hits, 3);
        assert!(!third.subgraph_hit);
    }

    #[test]
    fn epoch_bump_invalidates_subgraphs_but_not_embeddings() {
        let mut c = ServingCaches::new(CacheConfig::default());
        let batch = [1u32, 2, 3];
        c.consult(&batch, 4);
        c.bump_epoch();
        let l = c.consult(&batch, 4);
        assert!(!l.subgraph_hit, "stale-epoch subgraph must not match");
        assert_eq!(l.embedding_hits, 3, "embedding rows survive the epoch");
    }

    #[test]
    fn reset_forgets_everything() {
        let mut c = ServingCaches::new(CacheConfig::default());
        c.consult(&[1u32, 2], 4);
        c.note_saved(12.5);
        c.bump_epoch();
        c.reset();
        assert_eq!(c.epoch(), 0);
        assert_eq!(c.embedding_len(), 0);
        assert_eq!(c.subgraph_len(), 0);
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.last_saved_us(), 0.0);
    }

    #[test]
    fn stats_and_rates_accumulate() {
        let mut c = ServingCaches::new(CacheConfig::default());
        c.consult(&[1u32, 2], 4);
        c.consult(&[1u32, 2], 4);
        let s = c.stats();
        assert_eq!(s.embedding_hits, 2);
        assert_eq!(s.embedding_misses, 2);
        assert_eq!(s.subgraph_hits, 1);
        assert_eq!(s.subgraph_misses, 1);
        assert_eq!(s.embedding_hit_rate(), 0.5);
        assert_eq!(s.subgraph_hit_rate(), 0.5);
    }
}
