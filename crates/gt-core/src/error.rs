//! The unified error type for the serving pipeline.
//!
//! Each substrate crate reports its own failures ([`GraphError`],
//! [`SampleError`], [`TensorError`], [`OutOfMemory`]); the serving
//! supervisor needs one type that also covers the failures only visible at
//! the pipeline level — a transfer that the fault plan killed, a
//! preprocessing schedule that blew through its latency budget. `GtError`
//! is that union, with `From` impls so `?` composes across crates.

use gt_graph::GraphError;
use gt_sample::SampleError;
use gt_sim::{CrashSite, OutOfMemory};
use gt_tensor::TensorError;

/// Any failure the serving pipeline can observe, as a value.
#[derive(Debug, Clone, PartialEq)]
pub enum GtError {
    /// Graph structural-invariant violation.
    Graph(GraphError),
    /// Preprocessing-stage failure (bad batch, missing mapping).
    Sample(SampleError),
    /// Tensor-substrate failure (wiring bug, singular fit).
    Tensor(TensorError),
    /// Device memory exhausted.
    Oom(OutOfMemory),
    /// Host→device transfers failed this batch (injected or real).
    TransferFailed {
        /// How many PCIe tasks in the schedule failed.
        failed_tasks: usize,
    },
    /// The preprocessing schedule exceeded its latency budget.
    PreproStalled {
        /// Observed makespan, µs.
        makespan_us: f64,
        /// Configured budget, µs.
        limit_us: f64,
    },
    /// An underlying I/O operation failed (journal append, checkpoint
    /// write). Message kept as a string so the error stays `Clone + Eq`.
    Io {
        /// The I/O error's message.
        detail: String,
    },
    /// The outcome journal failed validation mid-file: a record whose CRC
    /// does not match its payload but that is *not* the torn tail of an
    /// interrupted append (torn tails are recoverable and silently dropped;
    /// mid-file corruption means bit rot or tampering and is surfaced).
    CorruptJournal {
        /// Byte offset of the offending record.
        offset: u64,
        /// What failed to validate.
        detail: String,
    },
    /// Deterministic replay of the journal produced a different outcome
    /// than the one recorded — the journal and the code disagree, so the
    /// recovered state cannot be trusted.
    ReplayDiverged {
        /// Serving index of the diverging batch.
        batch_index: usize,
        /// What diverged (recorded vs replayed).
        detail: String,
    },
    /// A [`gt_sim::FaultKind::Crash`] fired: the simulated process died at
    /// `site`. The supervisor must be rebuilt and recovered from its
    /// journal, exactly as a real process would be after `kill -9`.
    InjectedCrash {
        /// Where in the durability protocol the process died.
        site: CrashSite,
    },
}

impl std::fmt::Display for GtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GtError::Graph(e) => write!(f, "graph error: {e}"),
            GtError::Sample(e) => write!(f, "preprocessing error: {e}"),
            GtError::Tensor(e) => write!(f, "tensor error: {e}"),
            GtError::Oom(e) => write!(f, "device OOM: {e}"),
            GtError::TransferFailed { failed_tasks } => {
                write!(f, "{failed_tasks} host→device transfer(s) failed")
            }
            GtError::PreproStalled {
                makespan_us,
                limit_us,
            } => write!(
                f,
                "preprocessing stalled: {makespan_us:.0}µs exceeds budget {limit_us:.0}µs"
            ),
            GtError::Io { detail } => write!(f, "i/o error: {detail}"),
            GtError::CorruptJournal { offset, detail } => {
                write!(f, "corrupt journal at byte {offset}: {detail}")
            }
            GtError::ReplayDiverged {
                batch_index,
                detail,
            } => write!(f, "replay diverged at batch {batch_index}: {detail}"),
            GtError::InjectedCrash { site } => {
                write!(f, "injected crash ({})", site.label())
            }
        }
    }
}

impl std::error::Error for GtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GtError::Graph(e) => Some(e),
            GtError::Sample(e) => Some(e),
            GtError::Tensor(e) => Some(e),
            GtError::Oom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for GtError {
    fn from(e: GraphError) -> Self {
        GtError::Graph(e)
    }
}

impl From<SampleError> for GtError {
    fn from(e: SampleError) -> Self {
        GtError::Sample(e)
    }
}

impl From<TensorError> for GtError {
    fn from(e: TensorError) -> Self {
        GtError::Tensor(e)
    }
}

impl From<OutOfMemory> for GtError {
    fn from(e: OutOfMemory) -> Self {
        GtError::Oom(e)
    }
}

impl From<std::io::Error> for GtError {
    fn from(e: std::io::Error) -> Self {
        GtError::Io {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_compose_with_question_mark() {
        fn inner() -> Result<(), SampleError> {
            Err(SampleError::EmptyBatch)
        }
        fn outer() -> Result<(), GtError> {
            inner()?;
            Ok(())
        }
        assert_eq!(outer(), Err(GtError::Sample(SampleError::EmptyBatch)));
    }

    #[test]
    fn display_carries_inner_message() {
        let e = GtError::Sample(SampleError::EmptyBatch);
        assert!(e.to_string().contains("empty batch"));
        let e = GtError::TransferFailed { failed_tasks: 2 };
        assert!(e.to_string().contains("2"));
    }
}
