//! The NAPA programming model (§IV-B): `NeighborApply`, `Pull`, `Apply`.
//!
//! All three primitives traverse per-layer subgraphs **in CSR only**
//! (dst-indexed), walk destinations rather than edges, and schedule work
//! feature-wise: every feature element belonging to one destination is
//! processed within the same (modeled) SM, so destination embeddings are
//! loaded once and reused (Fig 9). `Apply` is plain dense MLP work and maps
//! to [`gt_tensor::dfg::Linear`]/[`gt_tensor::dfg::Relu`] — "MLP computations
//! are mostly dense matrix transformation, which is already well harmonized
//! with GPU's massive computing".

pub mod neighbor_apply;
pub mod pull;
pub mod schedule;

pub use neighbor_apply::NeighborApply;
pub use pull::Pull;
