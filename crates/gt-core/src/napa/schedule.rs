//! Cache accounting for destination-centric, feature-wise thread scheduling
//! (Fig 9a).
//!
//! NAPA assigns all features of one destination to one SM (thread blocks are
//! indexed by dst and land on SM `dst % num_sms`). A destination's own
//! embedding is therefore loaded exactly once, and a source embedding is
//! loaded once per SM that references it — far fewer duplicates than
//! edge-wise scheduling, where every edge is its own block and a hub
//! vertex's embedding lands on many SMs (the cache bloat of §III).

use gt_sample::LayerGraph;
use gt_sim::CacheSim;

/// Cache traffic of a feature-wise, dst-centric kernel over `layer`:
/// each dst's block touches its own row and every src row.
/// Returns the populated [`CacheSim`].
pub fn feature_wise_cache(layer: &LayerGraph, row_bytes: u64, num_sms: usize) -> CacheSim {
    let mut cache = CacheSim::new(num_sms);
    for (d, srcs) in layer.csr.iter() {
        if srcs.is_empty() {
            continue;
        }
        let block = d as usize; // one block per destination
        cache.touch_block(block, d as u64, row_bytes);
        for &s in srcs {
            cache.touch_block(block, s as u64, row_bytes);
        }
    }
    cache
}

/// Cache traffic of an *edge-wise* kernel over the same layer: each edge is
/// its own block, touching its src and dst rows (Graph-approach, Fig 5c
/// bottom). Exposed here so benches can contrast the two policies directly;
/// the baselines crate uses it for DGL-style kernels.
pub fn edge_wise_cache(layer: &LayerGraph, row_bytes: u64, num_sms: usize) -> CacheSim {
    let mut cache = CacheSim::new(num_sms);
    let mut block = 0usize;
    for (d, srcs) in layer.csr.iter() {
        for &s in srcs {
            cache.touch_block(block, d as u64, row_bytes);
            cache.touch_block(block, s as u64, row_bytes);
            block += 1;
        }
    }
    cache
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::{Coo, Csc, Csr};

    /// A hub layer: many dsts all reading src 0, plus per-dst self rows.
    fn hub_layer(dsts: usize) -> LayerGraph {
        let mut edges = Vec::new();
        for d in 0..dsts as u32 {
            edges.push((dsts as u32, d)); // hub src = id `dsts`
            edges.push((d, d)); // self loop
        }
        let coo = Coo::from_edges(dsts + 1, &edges);
        let (csr_full, _) = gt_graph::convert::coo_to_csr(&coo);
        let csr = Csr::new(csr_full.indptr[..=dsts].to_vec(), csr_full.srcs.clone());
        let (csc, _) = gt_graph::convert::coo_to_csc(&coo);
        LayerGraph {
            csr,
            csc: Csc::new(csc.indptr, csc.dsts),
            num_dst: dsts,
            num_src: dsts + 1,
        }
    }

    #[test]
    fn feature_wise_loads_less_than_edge_wise() {
        let layer = hub_layer(64);
        let fw = feature_wise_cache(&layer, 256, 8);
        let ew = edge_wise_cache(&layer, 256, 8);
        assert!(
            fw.loaded_bytes() <= ew.loaded_bytes(),
            "feature-wise {} > edge-wise {}",
            fw.loaded_bytes(),
            ew.loaded_bytes()
        );
        // The hub row gets duplicated across SMs either way, but edge-wise
        // also duplicates dst rows; with one block per dst, feature-wise
        // loads each dst row exactly once.
        assert!(ew.duplicate_rows() > fw.duplicate_rows());
    }

    #[test]
    fn single_sm_has_no_bloat() {
        let layer = hub_layer(16);
        let fw = feature_wise_cache(&layer, 100, 1);
        assert_eq!(fw.duplicate_rows(), 0);
        assert_eq!(fw.unique_rows(), 17);
    }

    #[test]
    fn dst_rows_loaded_once_feature_wise() {
        let layer = hub_layer(32);
        let fw = feature_wise_cache(&layer, 1, 4);
        // unique rows = 33 (32 dsts + hub); duplicates only from the hub
        // row appearing on up to 4 SMs.
        assert!(fw.duplicate_rows() <= 3);
    }
}
