//! `Pull` — NAPA's aggregation primitive (§IV-B, Fig 9c).
//!
//! For every destination of a per-layer subgraph, Pull accumulates the
//! (optionally `h`-weighted) embeddings of its sources with `f`, walking the
//! CSR directly — fully realizing SpMM without format translation. Work is
//! parallelized over destinations (vertex-centric) and features; the output
//! row stays in the SM while `f` accumulates ("Pull reuses the output
//! embeddings when f accumulates all the target embeddings").
//!
//! Backward (`f'`, Fig 3b) traverses the same subgraph in CSC — "CSC is
//! better at traversing the graph in BWP" — producing per-source gradients,
//! plus per-edge weight gradients in CSR edge order.
//!
//! Row-parallelism runs on the deterministic `gt_par` pool: each output row
//! has exactly one writer and chunk geometry is fixed, so results are
//! bit-identical at any `GT_THREADS`.

use crate::config::HFn;
use gt_par::ThreadPool;
use gt_sample::LayerGraph;
use gt_sim::{KernelStats, Phase};
use gt_tensor::dense::Matrix;
use gt_tensor::dfg::{ExecCtx, Op, ParamStore};
use gt_tensor::sparse::Reduce;
use std::sync::Arc;

use super::schedule::feature_wise_cache;

/// Output rows per pool chunk (fixed — never derived from the worker count).
const ROW_CHUNK: usize = 64;

/// The Pull DFG op. Inputs: `[features]` (unweighted) or
/// `[features, edge_weights]` (weighted; weight row order = CSR edge order).
#[derive(Debug, Clone)]
pub struct Pull {
    /// The per-layer subgraph this Pull traverses.
    pub layer: Arc<LayerGraph>,
    /// Aggregation function `f`.
    pub agg: Reduce,
    /// `h`: how an edge weight transforms its src embedding. `None` for
    /// unweighted aggregation (GCN).
    pub h: Option<HFn>,
    /// Worker pool for row-parallel compute (the process pool by default).
    pub pool: &'static ThreadPool,
}

impl Pull {
    /// Unweighted aggregation (GCN-style).
    pub fn new(layer: Arc<LayerGraph>, agg: Reduce) -> Self {
        Pull {
            layer,
            agg,
            h: None,
            pool: ThreadPool::global(),
        }
    }

    /// Weighted aggregation: `h` folds NeighborApply's weights into sources.
    pub fn weighted(layer: Arc<LayerGraph>, agg: Reduce, h: HFn) -> Self {
        Pull {
            layer,
            agg,
            h: Some(h),
            pool: ThreadPool::global(),
        }
    }

    /// Same kernel on an explicit pool (determinism tests pin widths).
    pub fn with_pool(mut self, pool: &'static ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// Forward numerics, shared with the fused Cost-DKP node.
    pub fn compute(&self, features: &Matrix, weights: Option<&Matrix>) -> Matrix {
        assert_eq!(self.h.is_some(), weights.is_some(), "weight arity mismatch");
        let f = features.cols();
        let layer = &self.layer;
        assert!(
            features.rows() >= layer.num_src,
            "features cover the src id space"
        );
        if let Some(w) = weights {
            assert_eq!(w.rows(), layer.csr.num_edges(), "one weight row per edge");
            assert_eq!(w.cols(), f, "weight dim");
        }
        let mut out = Matrix::zeros(layer.num_dst, f);
        // Destination-centric: disjoint output rows → each row has exactly
        // one writer on the pool.
        self.pool
            .for_each_chunk_mut("napa.pull", out.data_mut(), ROW_CHUNK * f, |ci, chunk| {
                let row_base = ci * ROW_CHUNK;
                for (r, orow) in chunk.chunks_mut(f).enumerate() {
                    let d = row_base + r;
                    let srcs = layer.csr.srcs(d as u32);
                    if srcs.is_empty() {
                        continue;
                    }
                    let erange = layer.csr.edge_range(d as u32);
                    match self.agg {
                        Reduce::Sum | Reduce::Mean => {
                            for (&s, e) in srcs.iter().zip(erange) {
                                let srow = features.row(s as usize);
                                match (self.h, weights) {
                                    (Some(HFn::Mul), Some(w)) => {
                                        for ((o, &x), &wk) in
                                            orow.iter_mut().zip(srow).zip(w.row(e))
                                        {
                                            *o += x * wk;
                                        }
                                    }
                                    (Some(HFn::Add), Some(w)) => {
                                        for ((o, &x), &wk) in
                                            orow.iter_mut().zip(srow).zip(w.row(e))
                                        {
                                            *o += x + wk;
                                        }
                                    }
                                    _ => {
                                        for (o, &x) in orow.iter_mut().zip(srow) {
                                            *o += x;
                                        }
                                    }
                                }
                            }
                            if self.agg == Reduce::Mean {
                                let inv = 1.0 / srcs.len() as f32;
                                for o in orow.iter_mut() {
                                    *o *= inv;
                                }
                            }
                        }
                        Reduce::Max => {
                            orow.copy_from_slice(features.row(srcs[0] as usize));
                            for &s in &srcs[1..] {
                                for (o, &x) in orow.iter_mut().zip(features.row(s as usize)) {
                                    *o = o.max(x);
                                }
                            }
                        }
                    }
                }
            });
        out
    }

    /// Work this Pull charges the device (forward direction).
    pub fn forward_stats(&self, feat_dim: usize, num_sms: usize) -> KernelStats {
        let layer = &self.layer;
        let row_bytes = (feat_dim * 4) as u64;
        let cache = feature_wise_cache(layer, row_bytes, num_sms);
        let edges = layer.csr.num_edges() as u64;
        let weight_stream = if self.h.is_some() {
            edges * row_bytes // weight rows streamed once, no reuse needed
        } else {
            0
        };
        let h_flops = if self.h.is_some() {
            edges * feat_dim as u64
        } else {
            0
        };
        KernelStats {
            flops: edges * feat_dim as u64 + h_flops + (layer.num_dst * feat_dim) as u64,
            global_read_bytes: cache.loaded_bytes() + weight_stream + layer.csr.storage_bytes(),
            global_write_bytes: (layer.num_dst * feat_dim * 4) as u64,
            cache_loaded_bytes: cache.loaded_bytes(),
            launches: 1,
            ..Default::default()
        }
    }

    /// Backward numerics: returns `(d_features, d_weights)`.
    pub fn compute_backward(
        &self,
        features: &Matrix,
        weights: Option<&Matrix>,
        grad: &Matrix,
    ) -> (Matrix, Option<Matrix>) {
        assert!(
            self.agg != Reduce::Max,
            "Pull backward: Max needs argmax state"
        );
        let f = features.cols();
        let layer = &self.layer;
        // Degree of each dst (for Mean scaling).
        let deg = |d: u32| layer.csr.degree(d).max(1) as f32;

        // d_features via CSC: vertex-centric over sources (disjoint rows),
        // row-parallel on the pool like the forward pass.
        let mut dx = Matrix::zeros(features.rows(), f);
        self.pool.for_each_chunk_mut(
            "napa.pull_bwd",
            dx.data_mut(),
            ROW_CHUNK * f,
            |ci, chunk| {
                let row_base = ci * ROW_CHUNK;
                for (r, xrow) in chunk.chunks_mut(f).enumerate() {
                    let s = row_base + r;
                    if s >= layer.num_src {
                        continue;
                    }
                    let dsts = layer.csc.dsts(s as u32);
                    if dsts.is_empty() {
                        continue;
                    }
                    for &d in dsts {
                        let scale = match self.agg {
                            Reduce::Mean => 1.0 / deg(d),
                            _ => 1.0,
                        };
                        let grow = grad.row(d as usize);
                        match (self.h, weights) {
                            (Some(HFn::Mul), Some(w)) => {
                                // Need this edge's weight row: find the edge id
                                // in CSR order (s within dsts' src slice).
                                let e = edge_id(layer, d, s as u32);
                                for ((x, &g), &wk) in xrow.iter_mut().zip(grow).zip(w.row(e)) {
                                    *x += g * wk * scale;
                                }
                            }
                            _ => {
                                for (x, &g) in xrow.iter_mut().zip(grow) {
                                    *x += g * scale;
                                }
                            }
                        }
                    }
                }
            },
        );

        // d_weights via CSR: serial — dw rows are written in CSR edge order
        // while reading per-dst gradient rows; the loop is cheap relative
        // to dx and keeping it serial avoids a second edge-id index.
        let dw = match (self.h, weights) {
            (Some(HFn::Mul), Some(_)) | (Some(HFn::Add), Some(_)) => {
                let mut dw = Matrix::zeros(layer.csr.num_edges(), f);
                for (d, srcs) in layer.csr.iter() {
                    let scale = match self.agg {
                        Reduce::Mean => 1.0 / deg(d),
                        _ => 1.0,
                    };
                    let grow = grad.row(d as usize);
                    for (&s, e) in srcs.iter().zip(layer.csr.edge_range(d)) {
                        let wrow = dw.row_mut(e);
                        match self.h {
                            Some(HFn::Mul) => {
                                let srow = features.row(s as usize);
                                for ((o, &g), &x) in wrow.iter_mut().zip(grow).zip(srow) {
                                    *o = g * x * scale;
                                }
                            }
                            _ => {
                                for (o, &g) in wrow.iter_mut().zip(grow) {
                                    *o = g * scale;
                                }
                            }
                        }
                    }
                }
                Some(dw)
            }
            _ => None,
        };
        (dx, dw)
    }
}

/// CSR edge id of the (src, dst) pair; linear scan of the dst's slice is
/// fine because sampled degrees are small and even (§IV-B, Fig 8).
fn edge_id(layer: &LayerGraph, d: u32, s: u32) -> usize {
    let srcs = layer.csr.srcs(d);
    let base = layer.csr.edge_range(d).start;
    base + srcs.iter().position(|&x| x == s).expect("edge exists")
}

impl Op for Pull {
    fn name(&self) -> &str {
        "pull"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        let weights = inputs.get(1).copied();
        let out = self.compute(inputs[0], weights);
        let stats = self.forward_stats(inputs[0].cols(), ctx.sim.device().num_sms);
        ctx.sim.record_gpu(Phase::Aggregation, stats);
        out
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        let weights = inputs.get(1).copied();
        let (dx, dw) = self.compute_backward(inputs[0], weights, grad);
        // Backward is the same traversal in reverse (f' ≡ f, Fig 3b).
        let mut stats = self.forward_stats(inputs[0].cols(), ctx.sim.device().num_sms);
        stats.global_write_bytes = dx.bytes() + dw.as_ref().map_or(0, |w| w.bytes());
        ctx.sim.record_gpu(Phase::Aggregation, stats);
        if self.h.is_some() {
            vec![Some(dx), dw]
        } else {
            vec![Some(dx)]
        }
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], _params: &ParamStore) -> (usize, usize) {
        (self.layer.num_dst, in_shapes[0].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::convert::{coo_to_csc, coo_to_csr};
    use gt_graph::{Coo, Csr};
    use gt_tensor::sparse;

    /// Layer: dst 0 ← {1, 2}, dst 1 ← {1}, over 3 srcs.
    fn layer() -> Arc<LayerGraph> {
        let coo = Coo::from_edges(3, &[(1, 0), (2, 0), (1, 1)]);
        let (csr_full, _) = coo_to_csr(&coo);
        let csr = Csr::new(csr_full.indptr[..=2].to_vec(), csr_full.srcs.clone());
        let (csc, _) = coo_to_csc(&coo);
        Arc::new(LayerGraph {
            csr,
            csc,
            num_dst: 2,
            num_src: 3,
        })
    }

    fn feats() -> Matrix {
        Matrix::from_vec(3, 2, vec![1., 10., 2., 20., 3., 30.])
    }

    #[test]
    fn matches_spmm_oracle() {
        let l = layer();
        for agg in [Reduce::Sum, Reduce::Mean, Reduce::Max] {
            let pull = Pull::new(Arc::clone(&l), agg);
            let got = pull.compute(&feats(), None);
            let oracle = sparse::spmm(&l.csr, &feats(), agg);
            assert!(
                got.max_abs_diff(&oracle) < 1e-6,
                "agg {agg:?} diverged from oracle"
            );
        }
    }

    #[test]
    fn weighted_matches_oracle() {
        let l = layer();
        let w = Matrix::from_vec(3, 2, vec![0.5, 1.0, 2.0, 0.1, 1.5, 0.5]);
        let pull = Pull::weighted(Arc::clone(&l), Reduce::Sum, HFn::Mul);
        let got = pull.compute(&feats(), Some(&w));
        let oracle = sparse::spmm_weighted(&l.csr, &feats(), &w, Reduce::Sum);
        assert!(got.max_abs_diff(&oracle) < 1e-6);
    }

    #[test]
    fn backward_matches_oracle() {
        let l = layer();
        let pull = Pull::new(Arc::clone(&l), Reduce::Mean);
        let grad = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let (dx, dw) = pull.compute_backward(&feats(), None, &grad);
        let oracle = sparse::spmm_backward(&l.csr, &grad, 3, Reduce::Mean);
        assert!(dx.max_abs_diff(&oracle) < 1e-6);
        assert!(dw.is_none());
    }

    #[test]
    fn weighted_backward_finite_difference() {
        let l = layer();
        let pull = Pull::weighted(Arc::clone(&l), Reduce::Mean, HFn::Mul);
        let x0 = feats();
        let w0 = Matrix::from_vec(3, 2, vec![0.5, 1.0, 2.0, 0.1, 1.5, 0.5]);
        let loss = |x: &Matrix, w: &Matrix| pull.compute(x, Some(w)).data().iter().sum::<f32>();
        let ones = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let (dx, dw) = pull.compute_backward(&x0, Some(&w0), &ones);
        let dw = dw.unwrap();
        let eps = 1e-2f32;
        for i in 0..x0.len() {
            let mut p = x0.clone();
            p.data_mut()[i] += eps;
            let mut m = x0.clone();
            m.data_mut()[i] -= eps;
            let num = (loss(&p, &w0) - loss(&m, &w0)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-2, "dx[{i}]");
        }
        for i in 0..w0.len() {
            let mut p = w0.clone();
            p.data_mut()[i] += eps;
            let mut m = w0.clone();
            m.data_mut()[i] -= eps;
            let num = (loss(&x0, &p) - loss(&x0, &m)) / (2.0 * eps);
            assert!((num - dw.data()[i]).abs() < 1e-2, "dw[{i}]");
        }
    }

    #[test]
    fn charges_aggregation_phase_without_bloat() {
        use gt_sim::{DeviceSpec, SimContext};
        let l = layer();
        let pull = Pull::new(l, Reduce::Mean);
        let mut sim = SimContext::new(DeviceSpec::tiny());
        let mut params = ParamStore::new();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let f = feats();
        let _ = pull.forward(&[&f], &mut ctx);
        let s = ctx.sim.phase_stats(Phase::Aggregation);
        assert!(s.flops > 0);
        assert_eq!(s.alloc_bytes, 0, "NAPA allocates no conversion buffers");
        assert!(!s.irregular);
    }

    #[test]
    fn out_shape_is_dst_by_feat() {
        let l = layer();
        let pull = Pull::new(l, Reduce::Sum);
        let p = ParamStore::new();
        assert_eq!(pull.out_shape(&[(3, 7)], &p), (2, 7));
    }
}
