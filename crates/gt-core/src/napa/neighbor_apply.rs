//! `NeighborApply` — NAPA's edge-weighting primitive (§IV-B, Fig 9b).
//!
//! Applies `g` to every edge's (src, dst) embedding pair, fully realizing
//! SDDMM *without* sparse→dense conversion (DL-approach's memory bloat) and
//! without edge-wise scheduling (Graph-approach's cache bloat): all edges of
//! one destination are processed in the same SM, so "NAPA loads dst nodes'
//! embedding only once and reuses the embedding during NeighborApply".

use gt_par::ThreadPool;
use gt_sample::LayerGraph;
use gt_sim::{KernelStats, Phase};
use gt_tensor::dense::Matrix;
use gt_tensor::dfg::{ExecCtx, Op, ParamStore};
use gt_tensor::sparse::EdgeOp;
use std::sync::Arc;

use super::schedule::feature_wise_cache;

/// Edge rows per pool chunk (fixed — never derived from the worker count).
const EDGE_CHUNK: usize = 128;

/// The NeighborApply DFG op. Input: `[features]`; output: per-edge weight
/// vectors in CSR edge order (`num_edges × feat_dim`).
#[derive(Debug, Clone)]
pub struct NeighborApply {
    /// The per-layer subgraph whose edges are weighted.
    pub layer: Arc<LayerGraph>,
    /// The weight function `g`.
    pub g: EdgeOp,
    /// Worker pool for edge-row-parallel compute.
    pub pool: &'static ThreadPool,
}

impl NeighborApply {
    /// Weight `layer`'s edges with `g`.
    pub fn new(layer: Arc<LayerGraph>, g: EdgeOp) -> Self {
        NeighborApply {
            layer,
            g,
            pool: ThreadPool::global(),
        }
    }

    /// Same kernel on an explicit pool (determinism tests pin widths).
    pub fn with_pool(mut self, pool: &'static ThreadPool) -> Self {
        self.pool = pool;
        self
    }

    /// Forward numerics (shared with tests/benches).
    pub fn compute(&self, features: &Matrix) -> Matrix {
        let f = features.cols();
        let layer = &self.layer;
        assert!(features.rows() >= layer.num_src, "features cover src space");
        let mut out = Matrix::zeros(layer.csr.num_edges(), f);
        // Parallelize over edge rows: each edge owns one output row, so a
        // chunked split of the output is disjoint. The edge's dst is found
        // by binary search on indptr (edge ranges are dst-sorted).
        let indptr = &layer.csr.indptr;
        let srcs_arr = &layer.csr.srcs;
        let num_dst = layer.num_dst;
        self.pool.for_each_chunk_mut(
            "napa.neighbor_apply",
            out.data_mut(),
            EDGE_CHUNK * f,
            |ci, chunk| {
                let edge_base = ci * EDGE_CHUNK;
                for (r, wrow) in chunk.chunks_mut(f).enumerate() {
                    let e = edge_base + r;
                    // Find this edge's dst by binary search on indptr.
                    let d = match indptr.binary_search(&(e as u32)) {
                        Ok(mut i) => {
                            // Skip empty ranges that share the boundary.
                            while i < num_dst && indptr[i + 1] == e as u32 {
                                i += 1;
                            }
                            i
                        }
                        Err(i) => i - 1,
                    };
                    let s = srcs_arr[e] as usize;
                    let srow = features.row(s);
                    let drow = features.row(d);
                    match self.g {
                        EdgeOp::ElemMul => {
                            for ((o, &a), &b) in wrow.iter_mut().zip(srow).zip(drow) {
                                *o = a * b;
                            }
                        }
                        EdgeOp::ElemAdd => {
                            for ((o, &a), &b) in wrow.iter_mut().zip(srow).zip(drow) {
                                *o = a + b;
                            }
                        }
                        EdgeOp::Dot => {
                            let dot: f32 = srow.iter().zip(drow).map(|(&a, &b)| a * b).sum();
                            for o in wrow.iter_mut() {
                                *o = dot;
                            }
                        }
                    }
                }
            },
        );
        out
    }

    /// Backward numerics: gradient w.r.t. features.
    pub fn compute_backward(&self, features: &Matrix, grad: &Matrix) -> Matrix {
        let f = features.cols();
        let layer = &self.layer;
        let mut dx = Matrix::zeros(features.rows(), f);
        // Sequential edge scan: src and dst rows both accumulate, so the
        // dst-disjoint trick doesn't apply; sampled layers are small.
        for (d, srcs) in layer.csr.iter() {
            for (&s, e) in srcs.iter().zip(layer.csr.edge_range(d)) {
                let grow = grad.row(e).to_vec();
                match self.g {
                    EdgeOp::ElemMul => {
                        let srow: Vec<f32> = features.row(s as usize).to_vec();
                        let drow: Vec<f32> = features.row(d as usize).to_vec();
                        for ((x, &g), &b) in dx.row_mut(s as usize).iter_mut().zip(&grow).zip(&drow)
                        {
                            *x += g * b;
                        }
                        for ((x, &g), &a) in dx.row_mut(d as usize).iter_mut().zip(&grow).zip(&srow)
                        {
                            *x += g * a;
                        }
                    }
                    EdgeOp::ElemAdd => {
                        for (x, &g) in dx.row_mut(s as usize).iter_mut().zip(&grow) {
                            *x += g;
                        }
                        for (x, &g) in dx.row_mut(d as usize).iter_mut().zip(&grow) {
                            *x += g;
                        }
                    }
                    EdgeOp::Dot => {
                        let gsum: f32 = grow.iter().sum();
                        let srow: Vec<f32> = features.row(s as usize).to_vec();
                        let drow: Vec<f32> = features.row(d as usize).to_vec();
                        for (x, &b) in dx.row_mut(s as usize).iter_mut().zip(&drow) {
                            *x += gsum * b;
                        }
                        for (x, &a) in dx.row_mut(d as usize).iter_mut().zip(&srow) {
                            *x += gsum * a;
                        }
                    }
                }
            }
        }
        dx
    }

    /// Device work charged by this kernel.
    pub fn stats(&self, feat_dim: usize, num_sms: usize) -> KernelStats {
        let layer = &self.layer;
        let row_bytes = (feat_dim * 4) as u64;
        let cache = feature_wise_cache(layer, row_bytes, num_sms);
        let edges = layer.csr.num_edges() as u64;
        KernelStats {
            flops: edges * feat_dim as u64,
            global_read_bytes: cache.loaded_bytes() + layer.csr.storage_bytes(),
            global_write_bytes: edges * row_bytes,
            cache_loaded_bytes: cache.loaded_bytes(),
            launches: 1,
            ..Default::default()
        }
    }
}

impl Op for NeighborApply {
    fn name(&self) -> &str {
        "neighbor_apply"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        let out = self.compute(inputs[0]);
        let stats = self.stats(inputs[0].cols(), ctx.sim.device().num_sms);
        ctx.sim.record_gpu(Phase::EdgeWeighting, stats);
        out
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        let dx = self.compute_backward(inputs[0], grad);
        // g' applies to both dst and src (Fig 3c): same traversal cost.
        let mut stats = self.stats(inputs[0].cols(), ctx.sim.device().num_sms);
        stats.global_write_bytes = dx.bytes();
        ctx.sim.record_gpu(Phase::EdgeWeighting, stats);
        vec![Some(dx)]
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], _params: &ParamStore) -> (usize, usize) {
        (self.layer.csr.num_edges(), in_shapes[0].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::convert::{coo_to_csc, coo_to_csr};
    use gt_graph::{Coo, Csr};
    use gt_tensor::sparse;

    fn layer() -> Arc<LayerGraph> {
        // dst 0 ← {1, 2}; dst 1 ← {0, 1}; 3 srcs; dst space 2.
        let coo = Coo::from_edges(3, &[(1, 0), (2, 0), (0, 1), (1, 1)]);
        let (csr_full, _) = coo_to_csr(&coo);
        let csr = Csr::new(csr_full.indptr[..=2].to_vec(), csr_full.srcs.clone());
        let (csc, _) = coo_to_csc(&coo);
        Arc::new(LayerGraph {
            csr,
            csc,
            num_dst: 2,
            num_src: 3,
        })
    }

    fn feats() -> Matrix {
        Matrix::from_vec(3, 2, vec![1., 10., 2., 20., 3., 30.])
    }

    #[test]
    fn matches_sddmm_oracle() {
        let l = layer();
        for g in [EdgeOp::ElemMul, EdgeOp::ElemAdd, EdgeOp::Dot] {
            let na = NeighborApply::new(Arc::clone(&l), g);
            let got = na.compute(&feats());
            let oracle = sparse::sddmm(&l.csr, &feats(), g);
            assert!(got.max_abs_diff(&oracle) < 1e-6, "g={g:?}");
        }
    }

    #[test]
    fn backward_finite_difference() {
        let l = layer();
        for g in [EdgeOp::ElemMul, EdgeOp::ElemAdd, EdgeOp::Dot] {
            let na = NeighborApply::new(Arc::clone(&l), g);
            let x0 = feats();
            let loss = |x: &Matrix| na.compute(x).data().iter().sum::<f32>();
            let ones = Matrix::from_vec(l.csr.num_edges(), 2, vec![1.0; l.csr.num_edges() * 2]);
            let dx = na.compute_backward(&x0, &ones);
            let eps = 1e-2f32;
            for i in 0..x0.len() {
                let mut p = x0.clone();
                p.data_mut()[i] += eps;
                let mut m = x0.clone();
                m.data_mut()[i] -= eps;
                let num = (loss(&p) - loss(&m)) / (2.0 * eps);
                assert!(
                    (num - dx.data()[i]).abs() < 0.05,
                    "g={g:?} dx[{i}]: {num} vs {}",
                    dx.data()[i]
                );
            }
        }
    }

    #[test]
    fn no_sparse_to_dense_allocation() {
        let l = layer();
        let na = NeighborApply::new(l, EdgeOp::ElemMul);
        let s = na.stats(2, 4);
        assert_eq!(s.alloc_bytes, 0);
        assert!(s.cache_loaded_bytes > 0);
    }

    #[test]
    fn out_shape_is_edges_by_feat() {
        let l = layer();
        let na = NeighborApply::new(l, EdgeOp::ElemMul);
        let p = ParamStore::new();
        assert_eq!(na.out_shape(&[(3, 5)], &p), (4, 5));
    }
}
