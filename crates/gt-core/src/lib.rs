//! GraphTensor core: the paper's three contributions.
//!
//! * [`napa`] — the <u>N</u>eighborApply–<u>P</u>ull–<u>A</u>pply programming
//!   model (§IV): pure vertex-centric, destination-centric, feature-wise GNN
//!   kernels over CSR-only per-layer subgraphs. No sparse→dense conversion
//!   (no memory bloat), no COO format translation, no edge-wise cache bloat.
//! * [`orchestrator`] — the GNN kernel orchestrator (§V-A): Dynamic Kernel
//!   Placement rewrites Pull→MatMul pairs in the dataflow graph into a
//!   Cost-DKP node that picks aggregation-first or combination-first at
//!   runtime from a least-squares-fitted cost model (Table I).
//! * [`scheduler`] — the service-wide tensor scheduler (§V-B): splits
//!   preprocessing into per-layer S/R/K/T subtasks, overlaps them across
//!   host cores / PCIe / GPU, relaxes hash-table lock contention (Fig 14),
//!   and pipelines lookup chunks into transfers.
//!
//! [`trainer::GraphTensor`] ties them together behind the [`framework::Framework`]
//! trait that `gt-baselines` also implements, so every evaluation figure
//! compares like with like.

pub mod cache;
pub mod cluster;
pub mod config;
pub mod data;
pub mod error;
pub mod framework;
pub mod full_graph;
pub mod journal;
pub mod napa;
pub mod orchestrator;
pub mod overload;
pub mod prepro;
pub mod scheduler;
pub mod serve;
pub mod tracing;
pub mod trainer;

pub use cache::{CacheConfig, CacheLookup, CacheStats, ServingCaches};
pub use cluster::{ClusterConfig, ClusterSummary, ClusterSupervisor, Partition, WorkerStats};
pub use config::{EdgeWeighting, ModelConfig};
pub use data::GraphData;
pub use error::GtError;
pub use framework::{
    BatchOutcome, BatchReport, DegradeAction, FailReason, Framework, FrameworkTraits, ShedCause,
};
pub use overload::{Completion, Gateway, OverloadConfig, TenancyConfig, TenantQuota};
pub use scheduler::{build_prepro_sim, schedule_prepro_with_faults, PreproStrategy};
pub use serve::{DurabilityConfig, QuarantineRecord, RecoveryReport, ServeConfig, Supervisor};
pub use tracing::{FlightDump, RequestTracer, TracerConfig};
pub use trainer::{GraphTensor, GtVariant};
