//! Deadline watchdog and overload shedding in front of the supervisor.
//!
//! The [`Supervisor`](crate::serve::Supervisor) keeps individual batches
//! alive through faults; this module keeps the *service* alive through
//! load. A [`Gateway`] owns a bounded admission queue driven by a virtual
//! clock (the same simulated-µs timeline the DES prices batches in) and
//! applies a shed/degrade ladder ordered by queue pressure:
//!
//! 1. **Deadline watchdog** — a queued request whose wait exceeds
//!    [`OverloadConfig::deadline_us`] at the moment it would start is shed
//!    ([`ShedCause::DeadlineExpired`]): serving it would burn capacity on
//!    an answer nobody is waiting for, which is how overload spirals.
//! 2. **Reduced fanout** — at queue depth ≥
//!    [`OverloadConfig::degrade_watermark`], batches are sampled with
//!    [`OverloadConfig::reduced_fanout`] instead of the configured fanout,
//!    shrinking per-batch preprocessing and GPU work while the queue
//!    drains ([`DegradeAction::ReducedFanout`]).
//! 3. **Halved batch** — at depth ≥ [`OverloadConfig::halve_watermark`],
//!    batches are additionally cut in half ([`DegradeAction::HalvedBatch`]).
//! 4. **Reject newest** — when the queue is full, the arriving request is
//!    refused outright ([`ShedCause::QueueFull`]); the queue can never
//!    grow past [`OverloadConfig::queue_capacity`].
//!
//! Every resolution — served, degraded, or shed — produces exactly one
//! [`Completion`] and one structured telemetry event on the `gateway`
//! track, so an exported trace reconciles 1:1 against the outcomes the
//! caller saw.
//!
//! Service time for a batch is its overlapped end-to-end latency
//! ([`BatchReport::e2e_us`]) plus any injected
//! [`gt_sim::FaultKind::ServeDelay`] stall and any retry backoff the
//! supervisor paid — so a fault plan with a sustained stall window is
//! exactly how tests (and capacity planners) push the gateway into
//! overload, deterministically.

use crate::data::GraphData;
use crate::framework::{BatchOutcome, BatchReport, DegradeAction, ShedCause};
use crate::serve::Supervisor;
use gt_graph::VId;
use std::collections::VecDeque;

/// Admission-control policy of the gateway.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Hard bound on queued requests; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// A request that has waited longer than this when it reaches the head
    /// of the queue is shed instead of served (∞ = no deadline).
    pub deadline_us: f64,
    /// Queue depth at which batches are served with reduced fanout.
    pub degrade_watermark: usize,
    /// Queue depth at which batches are additionally halved.
    pub halve_watermark: usize,
    /// Fanout used while degraded (clamped to the configured fanout).
    pub reduced_fanout: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_capacity: 8,
            deadline_us: f64::INFINITY,
            degrade_watermark: 4,
            halve_watermark: 6,
            reduced_fanout: 2,
        }
    }
}

/// One admitted request waiting for service.
#[derive(Debug)]
struct Pending {
    request_index: usize,
    arrival_us: f64,
    batch: Vec<VId>,
}

/// How one submitted request resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Submission index of the request (0-based, in arrival order).
    pub request_index: usize,
    /// The resolution: a served outcome, or [`BatchOutcome::Shed`].
    pub outcome: BatchOutcome,
    /// Virtual µs the request waited in the admission queue.
    pub queued_us: f64,
    /// Virtual µs of service (0 for shed requests).
    pub service_us: f64,
    /// Virtual timestamp at which the request left the system.
    pub done_us: f64,
}

/// Bounded admission queue + deadline watchdog + shed/degrade ladder in
/// front of a [`Supervisor`]. See the module docs for the ladder.
pub struct Gateway {
    /// The supervised trainer behind the queue.
    pub supervisor: Supervisor,
    /// Admission-control policy.
    pub config: OverloadConfig,
    queue: VecDeque<Pending>,
    busy_until_us: f64,
    last_arrival_us: f64,
    submitted: usize,
}

impl Gateway {
    /// Put `supervisor` behind an admission queue with `config`.
    pub fn new(supervisor: Supervisor, config: OverloadConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        Gateway {
            supervisor,
            config,
            queue: VecDeque::new(),
            busy_until_us: 0.0,
            last_arrival_us: 0.0,
            submitted: 0,
        }
    }

    /// Requests currently waiting (never exceeds the configured capacity).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Submit a request arriving at `arrival_us` (arrivals must be
    /// monotone). The virtual clock advances to the arrival: every queued
    /// request whose service completes by then is processed first, and the
    /// resulting completions — plus this request's own immediate shed, if
    /// the queue is full — are returned in resolution order.
    pub fn submit(&mut self, data: &GraphData, arrival_us: f64, batch: &[VId]) -> Vec<Completion> {
        assert!(
            arrival_us >= self.last_arrival_us,
            "arrivals must be monotone: {arrival_us} < {}",
            self.last_arrival_us
        );
        self.last_arrival_us = arrival_us;
        let request_index = self.submitted;
        self.submitted += 1;

        let mut done = self.pump(data, arrival_us);
        let telemetry = self.supervisor.trainer.telemetry.clone();
        if self.queue.len() >= self.config.queue_capacity {
            let cause = ShedCause::QueueFull;
            telemetry
                .counter("gt_gateway_shed_total", "Requests shed by the gateway")
                .inc();
            telemetry.event(
                "gateway",
                "shed",
                &[
                    ("request", &request_index),
                    ("cause", &cause.label()),
                    ("queue_depth", &self.queue.len()),
                ],
            );
            let outcome = BatchOutcome::Shed { cause };
            if let Some(tracer) = self.supervisor.tracer.as_mut() {
                tracer.record_shed(request_index, &outcome, arrival_us, arrival_us);
            }
            done.push(Completion {
                request_index,
                outcome,
                queued_us: 0.0,
                service_us: 0.0,
                done_us: arrival_us,
            });
        } else {
            self.queue.push_back(Pending {
                request_index,
                arrival_us,
                batch: batch.to_vec(),
            });
        }
        telemetry
            .gauge("gt_gateway_queue_depth", "Admission-queue occupancy")
            .set(self.queue.len() as f64);
        done
    }

    /// Run the virtual clock forward until the queue is empty and return
    /// the remaining completions.
    pub fn drain(&mut self, data: &GraphData) -> Vec<Completion> {
        let done = self.pump(data, f64::INFINITY);
        self.supervisor
            .trainer
            .telemetry
            .gauge("gt_gateway_queue_depth", "Admission-queue occupancy")
            .set(0.0);
        done
    }

    /// Process queued requests whose service starts by `now_us`.
    fn pump(&mut self, data: &GraphData, now_us: f64) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(front) = self.queue.front() {
            let start_us = self.busy_until_us.max(front.arrival_us);
            if start_us > now_us {
                break;
            }
            let p = self.queue.pop_front().expect("front checked");
            let queued_us = start_us - p.arrival_us;
            let telemetry = self.supervisor.trainer.telemetry.clone();
            telemetry
                .histogram_us("gt_gateway_queue_wait_us", "Admission-queue wait, µs")
                .observe(queued_us);
            if queued_us > self.config.deadline_us {
                // Deadline watchdog: the answer is already too late.
                let cause = ShedCause::DeadlineExpired;
                telemetry
                    .counter("gt_gateway_shed_total", "Requests shed by the gateway")
                    .inc();
                telemetry.event(
                    "gateway",
                    "shed",
                    &[
                        ("request", &p.request_index),
                        ("cause", &cause.label()),
                        ("queued_us", &format!("{queued_us:.0}")),
                    ],
                );
                let outcome = BatchOutcome::Shed { cause };
                if let Some(tracer) = self.supervisor.tracer.as_mut() {
                    tracer.record_shed(p.request_index, &outcome, p.arrival_us, start_us);
                }
                out.push(Completion {
                    request_index: p.request_index,
                    outcome,
                    queued_us,
                    service_us: 0.0,
                    done_us: start_us,
                });
                continue; // the server was never occupied
            }
            let depth = self.queue.len();
            let (outcome, service_us) = self.serve_one(data, &p, depth, start_us);
            self.busy_until_us = start_us + service_us;
            telemetry.event(
                "gateway",
                "served",
                &[
                    ("request", &p.request_index),
                    ("outcome", &outcome.label()),
                    ("queue_depth", &depth),
                ],
            );
            out.push(Completion {
                request_index: p.request_index,
                outcome,
                queued_us,
                service_us,
                done_us: start_us + service_us,
            });
        }
        out
    }

    /// Serve one admitted request, applying the degrade ladder for the
    /// current queue `depth`, and price its service time. `start_us` is
    /// when service begins on the virtual clock (≥ arrival).
    fn serve_one(
        &mut self,
        data: &GraphData,
        p: &Pending,
        depth: usize,
        start_us: f64,
    ) -> (BatchOutcome, f64) {
        let telemetry = self.supervisor.trainer.telemetry.clone();
        let batch_index = self.supervisor.batches_served();
        // Injected serving stalls stretch the virtual service time; they
        // never reach the trainer (see ActiveFaults::des_relevant), so the
        // numerics stay on the fault-free path.
        let stall_us = if self.supervisor.plan.is_empty() {
            0.0
        } else {
            self.supervisor
                .plan
                .active(batch_index, 0)
                .serve_delay_us()
                .unwrap_or(0.0)
        };

        let mut batch: Vec<VId> = p.batch.clone();
        let mut action: Option<DegradeAction> = None;
        if depth >= self.config.halve_watermark && batch.len() > 1 {
            let from = batch.len();
            let to = (from / 2).max(1);
            batch.truncate(to);
            action = Some(DegradeAction::HalvedBatch { from, to });
        }
        let mut restore_fanout: Option<usize> = None;
        if depth >= self.config.degrade_watermark {
            let from = self.supervisor.trainer.sampler.fanout;
            let to = self.config.reduced_fanout.min(from);
            if to < from {
                self.supervisor.trainer.sampler.fanout = to;
                restore_fanout = Some(from);
                if action.is_none() {
                    action = Some(DegradeAction::ReducedFanout { from, to });
                }
            }
        }
        if let Some(a) = &action {
            telemetry
                .counter(
                    "gt_gateway_degraded_total",
                    "Requests served degraded under load",
                )
                .inc();
            telemetry.event(
                "gateway",
                "degrade",
                &[
                    ("request", &p.request_index),
                    ("queue_depth", &depth),
                    (
                        "action",
                        &match a {
                            DegradeAction::HalvedBatch { .. } => "halved-batch",
                            DegradeAction::ReducedFanout { .. } => "reduced-fanout",
                            DegradeAction::SerializedPrepro => "serialized-prepro",
                        },
                    ),
                ],
            );
        }

        if let Some(tracer) = self.supervisor.tracer.as_mut() {
            tracer.begin_request(p.request_index, p.arrival_us, start_us);
        }
        let backoff_before = self.supervisor.backoff_paid_us;
        // A durable supervisor journals through the gateway too, so flight
        // dumps reconcile against the write-ahead outcome stream. Crash
        // faults are not routed through the gateway (drive `serve_durable`
        // directly to exercise them); an injected crash here is a test
        // configuration error, not a servable state.
        let report: BatchReport = if self.supervisor.is_durable() {
            self.supervisor
                .serve_durable(data, &batch)
                .expect("crash faults must not be injected behind the gateway")
        } else {
            self.supervisor.serve_batch(data, &batch)
        };
        if let Some(fanout) = restore_fanout {
            self.supervisor.trainer.sampler.fanout = fanout;
        }
        let backoff_us = self.supervisor.backoff_paid_us - backoff_before;
        let service_us = report.e2e_us(true) + stall_us + backoff_us;

        // A gateway degradation outranks a clean supervisor outcome in the
        // report (the caller got less than it asked for); a supervisor
        // degradation or quarantine is more severe and wins.
        let outcome = match (report.outcome, action) {
            (BatchOutcome::Succeeded, Some(a)) => BatchOutcome::Degraded {
                action: a,
                retries: 0,
            },
            (BatchOutcome::Recovered { retries }, Some(a)) => {
                BatchOutcome::Degraded { action: a, retries }
            }
            (o, _) => o,
        };
        (outcome, service_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::serve::Supervisor;
    use crate::trainer::{GraphTensor, GtVariant};
    use gt_sample::SamplerConfig;
    use gt_sim::{FaultPlan, SystemSpec};

    fn data() -> GraphData {
        GraphData::synthetic(300, 3000, 16, 4, 3)
    }

    fn supervisor(plan: FaultPlan) -> Supervisor {
        let mut t = GraphTensor::new(
            GtVariant::Dynamic,
            ModelConfig::gcn(2, 16, 4),
            SystemSpec::tiny(),
        );
        t.sampler = SamplerConfig {
            fanout: 4,
            layers: 2,
            seed: 11,
            ..Default::default()
        };
        t.telemetry = gt_telemetry::Telemetry::recording();
        Supervisor::new(t, plan)
    }

    fn batches(n: usize) -> Vec<Vec<VId>> {
        (0..n)
            .map(|i| {
                ((i * 8) as VId..(i * 8 + 8) as VId)
                    .map(|v| v % 300)
                    .collect()
            })
            .collect()
    }

    /// With arrivals far slower than service, the gateway is a pass-through:
    /// everything succeeds, nothing is shed or degraded.
    #[test]
    fn underload_is_a_passthrough() {
        let mut g = Gateway::new(supervisor(FaultPlan::new(0)), OverloadConfig::default());
        let d = data();
        let mut all = Vec::new();
        for (i, b) in batches(6).iter().enumerate() {
            all.extend(g.submit(&d, i as f64 * 1e9, b));
        }
        all.extend(g.drain(&d));
        assert_eq!(all.len(), 6);
        assert!(all.iter().all(|c| c.outcome == BatchOutcome::Succeeded));
        assert!(all.iter().all(|c| c.queued_us == 0.0));
    }

    /// A sustained injected stall makes service far slower than arrivals:
    /// the queue must stay bounded by shedding, the ladder must degrade,
    /// and each completion must have exactly one matching gateway event.
    #[test]
    fn overload_sheds_and_degrades_with_bounded_queue() {
        let plan = FaultPlan::new(7).with_serve_delay_window(50_000.0, 0, None);
        let cfg = OverloadConfig {
            queue_capacity: 4,
            deadline_us: f64::INFINITY,
            degrade_watermark: 2,
            halve_watermark: 3,
            reduced_fanout: 2,
        };
        let mut g = Gateway::new(supervisor(plan), cfg);
        let d = data();
        let mut all = Vec::new();
        for (i, b) in batches(24).iter().enumerate() {
            // Arrivals every 1 000 µs vs ≥50 000 µs of service: hard overload.
            all.extend(g.submit(&d, i as f64 * 1000.0, b));
            assert!(g.queue_depth() <= 4, "queue overflowed");
        }
        all.extend(g.drain(&d));
        assert_eq!(all.len(), 24, "every request must resolve exactly once");
        let shed = all
            .iter()
            .filter(|c| matches!(c.outcome, BatchOutcome::Shed { .. }))
            .count();
        let degraded = all
            .iter()
            .filter(|c| matches!(c.outcome, BatchOutcome::Degraded { .. }))
            .count();
        assert!(shed > 0, "hard overload must shed");
        assert!(degraded > 0, "ladder must degrade under pressure");

        // Telemetry ↔ outcome reconciliation: one gateway event per
        // completion, with matching cause/outcome labels.
        let events = g.supervisor.trainer.telemetry.events();
        let resolution_events: Vec<_> = events
            .iter()
            .filter(|e| e.track == "gateway" && (e.name == "shed" || e.name == "served"))
            .collect();
        assert_eq!(resolution_events.len(), all.len());
        for c in &all {
            let idx = c.request_index.to_string();
            let ev = resolution_events
                .iter()
                .find(|e| e.args.iter().any(|(k, v)| k == "request" && *v == idx))
                .unwrap_or_else(|| panic!("no event for request {idx}"));
            match c.outcome {
                BatchOutcome::Shed { cause } => {
                    assert_eq!(ev.name, "shed");
                    assert!(ev
                        .args
                        .iter()
                        .any(|(k, v)| k == "cause" && v == cause.label()));
                }
                o => {
                    assert_eq!(ev.name, "served");
                    assert!(ev
                        .args
                        .iter()
                        .any(|(k, v)| k == "outcome" && v == o.label()));
                }
            }
        }
    }

    /// The watchdog sheds requests whose queue wait blows the deadline.
    #[test]
    fn deadline_watchdog_sheds_stale_requests() {
        let plan = FaultPlan::new(3).with_serve_delay_window(100_000.0, 0, None);
        let cfg = OverloadConfig {
            queue_capacity: 16,
            deadline_us: 150_000.0,
            degrade_watermark: usize::MAX,
            halve_watermark: usize::MAX,
            reduced_fanout: 2,
        };
        let mut g = Gateway::new(supervisor(plan), cfg);
        let d = data();
        let mut all = Vec::new();
        for (i, b) in batches(8).iter().enumerate() {
            all.extend(g.submit(&d, i as f64 * 10.0, b));
        }
        all.extend(g.drain(&d));
        assert_eq!(all.len(), 8);
        let expired = all
            .iter()
            .filter(|c| {
                c.outcome
                    == BatchOutcome::Shed {
                        cause: ShedCause::DeadlineExpired,
                    }
            })
            .count();
        assert!(expired > 0, "no deadline sheds under a 100ms/batch stall");
        // Early requests (short waits) are still served.
        assert!(all.iter().any(|c| c.outcome.trained()));
        // Shed-by-deadline requests never occupied the server.
        for c in &all {
            if matches!(c.outcome, BatchOutcome::Shed { .. }) {
                assert_eq!(c.service_us, 0.0);
            }
        }
    }

    /// Identical plans and arrival sequences resolve identically — the
    /// gateway inherits the stack's determinism contract.
    #[test]
    fn gateway_is_deterministic() {
        let run = || {
            let plan = FaultPlan::new(9)
                .with_serve_delay_window(30_000.0, 0, None)
                .with_transfer_failure(0.2);
            let mut g = Gateway::new(
                supervisor(plan),
                OverloadConfig {
                    queue_capacity: 3,
                    deadline_us: 200_000.0,
                    degrade_watermark: 1,
                    halve_watermark: 2,
                    reduced_fanout: 2,
                },
            );
            let d = data();
            let mut all = Vec::new();
            for (i, b) in batches(12).iter().enumerate() {
                all.extend(g.submit(&d, i as f64 * 2000.0, b));
            }
            all.extend(g.drain(&d));
            all
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_arrivals_are_rejected() {
        let mut g = Gateway::new(supervisor(FaultPlan::new(0)), OverloadConfig::default());
        let d = data();
        g.submit(&d, 100.0, &[0, 1]);
        g.submit(&d, 50.0, &[2, 3]);
    }
}
